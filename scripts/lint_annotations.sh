#!/usr/bin/env bash
# Render simlint findings as one-line `file:line:col: CODE message`
# annotations — the format CI annotators and editor quickfix lists eat.
#
#   scripts/lint_annotations.sh [extra simlint args...]
#
# Runs simlint with `--format json` against the committed baseline and
# reformats the output. Extra arguments are passed through, e.g.
#   scripts/lint_annotations.sh --changed-since origin/main
# Exit code is simlint's own: 0 clean, 1 violations, 2 error.
set -uo pipefail
cd "$(dirname "$0")/.."

json=$(cargo run -q -p massf-simlint -- --workspace \
    --baseline simlint-baseline.txt --format json "$@" 2>/dev/null)
status=$?
if [ "$status" -eq 2 ]; then
    echo "lint_annotations: simlint failed (run it directly for details)" >&2
    exit 2
fi

if command -v jq >/dev/null 2>&1; then
    printf '%s\n' "$json" |
        jq -r '.[] | "\(.path):\(.line):\(.col): \(.code) \(.message)"'
else
    # Fallback without jq: the JSON is one object per line by design
    # (see crates/simlint/src/report.rs), so sed can carve out the four
    # fields. Handles every field value simlint actually emits; a real
    # JSON parser is only needed for exotic escapes.
    printf '%s\n' "$json" | sed -n \
        's/^{"rule":"[^"]*","code":"\([^"]*\)","path":"\([^"]*\)","line":\([0-9]*\),"col":\([0-9]*\),"severity":"[^"]*","message":"\(.*\)","snippet":.*$/\2:\3:\4: \1 \5/p'
fi

exit "$status"
