#!/usr/bin/env bash
# Workspace gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (routing + faults: deny unwrap) =="
cargo clippy -p massf-routing -p massf-faults --all-targets -- \
    -D warnings -D clippy::unwrap_used

echo "== cargo test =="
cargo test -q

echo "== fault_flap_study --smoke =="
cargo run --release -q -p massf-bench --bin fault_flap_study -- --smoke

echo "All checks passed."
