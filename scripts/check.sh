#!/usr/bin/env bash
# Workspace gate: formatting, lints, static analysis, and the test suite.
# Run from anywhere; operates on the repository containing this script.
#
#   scripts/check.sh          full gate (including the release-mode
#                             fault_flap_study, route_resolution,
#                             engine_hotpath, engine_throughput,
#                             partitioner, mem_footprint,
#                             checkpoint_study, fluid_scaling and
#                             rebalance_study smoke runs)
#   scripts/check.sh --fast   skip the release-mode smoke runs
#
# Each stage is wall-clock timed; a summary table prints at the end.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
    case "$arg" in
        --fast) FAST=1 ;;
        *)
            echo "usage: $0 [--fast]" >&2
            exit 2
            ;;
    esac
done

STAGE_NAMES=()
STAGE_SECS=()

# stage <name> <cmd...>: run a gate stage, recording its wall-clock time.
stage() {
    local name="$1"
    shift
    echo "== $name =="
    local start end
    start=$(date +%s)
    "$@"
    end=$(date +%s)
    STAGE_NAMES+=("$name")
    STAGE_SECS+=($((end - start)))
}

stage "cargo fmt --check" \
    cargo fmt --all -- --check

# simlint runs before clippy: it needs no compilation, so determinism
# violations surface in under a second instead of after a full
# workspace build.
stage "simlint (determinism & safety static analysis)" \
    cargo run -q -p massf-simlint -- --workspace --baseline simlint-baseline.txt

stage "cargo clippy (deny warnings + unwrap_used, whole workspace)" \
    cargo clippy --workspace --all-targets -- -D warnings -D clippy::unwrap_used

stage "cargo test" \
    cargo test -q

if [ "$FAST" -eq 0 ]; then
    stage "fault_flap_study --smoke" \
        cargo run --release -q -p massf-bench --bin fault_flap_study -- --smoke
    stage "route_resolution --smoke" \
        cargo bench -q -p massf-bench --bench route_resolution -- --smoke
    stage "engine_hotpath --smoke" \
        cargo bench -q -p massf-bench --bench engine_hotpath -- --smoke
    stage "engine_throughput --smoke" \
        cargo bench -q -p massf-bench --bench engine_throughput -- --smoke
    stage "partitioner --smoke" \
        cargo bench -q -p massf-bench --bench partitioner -- --smoke
    stage "mem_footprint --smoke" \
        cargo run --release -q -p massf-bench --features alloc-count --bin mem_footprint -- --smoke
    stage "checkpoint_study --smoke" \
        cargo run --release -q -p massf-bench --bin checkpoint_study -- --smoke
    stage "fluid_scaling --smoke" \
        cargo run --release -q -p massf-bench --bin fluid_scaling -- --smoke
    stage "rebalance_study --smoke" \
        cargo run --release -q -p massf-bench --bin rebalance_study -- --smoke
else
    echo "== release-mode smoke runs skipped (--fast) =="
fi

echo
echo "== stage timings =="
total=0
for i in "${!STAGE_NAMES[@]}"; do
    printf '%4ds  %s\n' "${STAGE_SECS[$i]}" "${STAGE_NAMES[$i]}"
    total=$((total + STAGE_SECS[i]))
done
printf '%4ds  total\n' "$total"

echo "All checks passed."
