#!/usr/bin/env bash
# Workspace gate: formatting, lints, static analysis, and the test suite.
# Run from anywhere; operates on the repository containing this script.
#
#   scripts/check.sh          full gate (including the release-mode
#                             fault_flap_study, route_resolution,
#                             engine_hotpath, mem_footprint and
#                             checkpoint_study smoke runs)
#   scripts/check.sh --fast   skip the release-mode smoke runs
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
    case "$arg" in
        --fast) FAST=1 ;;
        *)
            echo "usage: $0 [--fast]" >&2
            exit 2
            ;;
    esac
done

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings + unwrap_used, whole workspace) =="
cargo clippy --workspace --all-targets -- -D warnings -D clippy::unwrap_used

echo "== simlint (determinism & safety static analysis) =="
cargo run -q -p massf-simlint -- --workspace --baseline simlint-baseline.txt

echo "== cargo test =="
cargo test -q

if [ "$FAST" -eq 0 ]; then
    echo "== fault_flap_study --smoke =="
    cargo run --release -q -p massf-bench --bin fault_flap_study -- --smoke
    echo "== route_resolution --smoke =="
    cargo bench -q -p massf-bench --bench route_resolution -- --smoke
    echo "== engine_hotpath --smoke =="
    cargo bench -q -p massf-bench --bench engine_hotpath -- --smoke
    echo "== mem_footprint --smoke =="
    cargo run --release -q -p massf-bench --features alloc-count --bin mem_footprint -- --smoke
    echo "== checkpoint_study --smoke =="
    cargo run --release -q -p massf-bench --bin checkpoint_study -- --smoke
else
    echo "== release-mode smoke runs skipped (--fast) =="
fi

echo "All checks passed."
