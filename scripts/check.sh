#!/usr/bin/env bash
# Workspace gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "All checks passed."
