//! Cross-crate integration tests for `massf-rs` live in `tests/`; this
//! library only hosts shared helpers.

#![forbid(unsafe_code)]

use massf_core::prelude::*;

/// A deterministic tiny single-AS scenario for integration tests.
pub fn tiny_single_as(seed: u64) -> Scenario {
    Scenario::build(
        ScenarioKind::SingleAs,
        Scale::Tiny,
        WorkloadKind::ScaLapack,
        seed,
    )
}

/// A deterministic tiny multi-AS scenario for integration tests.
pub fn tiny_multi_as(seed: u64) -> Scenario {
    Scenario::build(
        ScenarioKind::MultiAs,
        Scale::Tiny,
        WorkloadKind::GridNpb,
        seed,
    )
}

/// A mapping configuration sized for tiny scenarios.
pub fn tiny_mapping_config(engines: usize) -> MappingConfig {
    let mut cfg = MappingConfig::new(engines);
    cfg.sync = SyncCostModel::new(20.0, 30.0);
    cfg
}
