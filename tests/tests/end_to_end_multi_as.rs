//! End-to-end tests on the multi-AS world (paper Section 5): BGP policy
//! routing under real packet traffic, and the load-balance pipeline.

use massf_core::prelude::*;
use massf_integration::{tiny_mapping_config, tiny_multi_as};
use massf_routing::{BgpRib, CostMetric, MultiAsResolver, PathResolver};
use massf_topology::generate_multi_as_network;

#[test]
fn pipeline_completes_on_bgp_routed_network() {
    let scenario = tiny_multi_as(17);
    let cfg = tiny_mapping_config(4);
    let out = run_mapping_experiment(
        &scenario,
        MappingApproach::Hprof,
        &cfg,
        &ClusterModel::default(),
        SimTime::from_secs(2),
    );
    assert!(out.run_stats.total_events > 500);
    assert!(out.run_profile.completed_flows > 0);
    assert!(out.metrics.parallel_efficiency > 0.0);
}

#[test]
fn traffic_crosses_as_boundaries() {
    let scenario = tiny_multi_as(17);
    let profile = run_profiling(&scenario, SimTime::from_secs(2));
    // Inter-AS links must carry traffic: workflow hosts and HTTP pairs
    // land on different stub ASes.
    let inter_packets: u64 = scenario
        .net
        .links
        .iter()
        .filter(|l| l.inter_as)
        .map(|l| profile.link_packets[l.id.index()])
        .sum();
    assert!(inter_packets > 100, "inter-AS packets: {inter_packets}");
}

#[test]
fn generated_bgp_gives_full_reachability_but_policy_paths() {
    // Tiny AS graphs are nearly star-shaped and show little policy
    // effect; use a realistically sized AS-level graph for this claim.
    let g = massf_topology::AsGraph::generate(60, 2, 0.08, 9);
    let rib = BgpRib::compute(&g);
    assert_eq!(rib.reachability_fraction(), 1.0);
    // Policy inflation: some selected path is longer than the
    // unconstrained shortest AS path (valley-free routing forbids the
    // shortcut).
    let mut inflated = 0;
    for s in 0..g.n {
        let mut dist = vec![usize::MAX; g.n];
        let mut queue = std::collections::VecDeque::new();
        dist[s] = 0;
        queue.push_back(s);
        while let Some(x) = queue.pop_front() {
            for (y, _) in g.neighbors(x) {
                if dist[y] == usize::MAX {
                    dist[y] = dist[x] + 1;
                    queue.push_back(y);
                }
            }
        }
        for (d, &bfs) in dist.iter().enumerate().take(g.n) {
            if s != d {
                if let Some(p) = rib.as_path(s, d) {
                    assert!(p.len() >= bfs, "BGP path shorter than BFS?");
                    if p.len() > bfs {
                        inflated += 1;
                    }
                }
            }
        }
    }
    assert!(inflated > 0, "no policy inflation on a 60-AS graph");
}

#[test]
fn multi_as_routing_agrees_with_packet_delivery() {
    // Every flow the resolver can route must actually deliver packets:
    // run a burst of injections between random host pairs and check the
    // completed-flow count matches the routable count.
    use massf_netsim::{Agent, NetSimBuilder, NoApp};
    use std::sync::Arc;

    let cfg = Scale::Tiny.multi_as_config(13);
    let m = generate_multi_as_network(&cfg);
    let resolver = Arc::new(MultiAsResolver::new(&m, CostMetric::Latency, &cfg));
    let hosts = m.network.host_ids();

    let mut agent = Agent::new();
    let mut expected = 0;
    for i in 0..20 {
        let (a, b) = (hosts[i], hosts[hosts.len() - 1 - i]);
        if a != b && resolver.route(a, b).is_some() {
            expected += 1;
        }
        agent.inject_tcp(SimTime::from_ms(i as u64 * 10), a, b, 30_000);
    }
    let mut builder = NetSimBuilder::new(m.network.clone(), resolver);
    builder.add_agent(agent);
    let out = builder.run_sequential(NoApp, SimTime::from_secs(30));
    assert_eq!(out.profile.completed_flows, expected);
}

#[test]
fn imbalance_multi_as_exceeds_single_as_for_topology_mapper() {
    // Paper Section 5.2.2: "the load imbalance for this multi-AS network
    // is much larger than the single-AS network due to the use of BGP
    // routing". Compare TOP2 imbalance across worlds at the same scale
    // and seed.
    let cfg = tiny_mapping_config(4);
    let model = ClusterModel::default();
    let duration = SimTime::from_secs(2);

    let single = massf_integration::tiny_single_as(77);
    let multi = tiny_multi_as(77);
    let s_out = run_mapping_experiment(&single, MappingApproach::Top2, &cfg, &model, duration);
    let m_out = run_mapping_experiment(&multi, MappingApproach::Top2, &cfg, &model, duration);
    assert!(
        m_out.metrics.load_imbalance > s_out.metrics.load_imbalance * 0.8,
        "multi-AS imbalance {} should not be far below single-AS {}",
        m_out.metrics.load_imbalance,
        s_out.metrics.load_imbalance
    );
}
