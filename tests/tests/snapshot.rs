//! Checkpoint/restore acceptance tests (ISSUE 7):
//!
//! 1. A session run in checkpointed segments — including through full
//!    serialize/deserialize round trips and sequential ↔ parallel
//!    executor switches — is bit-identical to one straight-through run.
//! 2. Snapshot files are untrusted: truncation, bit flips, and version
//!    skew yield structured errors (never panics) on load.
//! 3. Crash recovery resumes from the newest *valid* snapshot in a
//!    directory, recording why damaged ones were skipped.
//! 4. `branch()` forks what-if continuations off a shared prefix that
//!    match full replays of the divergent scenario exactly.

use massf_engine::{LpId, SimTime};
use massf_netsim::{
    Agent, FaultKind, FaultScript, FaultState, NetEvent, NetSimBuilder, NoApp, SharedNet,
    SimOutput, DEFAULT_ROUTE_CACHE_CAPACITY, MAX_RETRIES,
};
use massf_routing::CostMetric;
use massf_snapshot::{recover_latest, scenario_fingerprint, ExecMode, Session};
use massf_topology::{
    generate_flat_network, AsId, FlatTopologyConfig, LinkId, MassfError, Network, NodeId, NodeKind,
    Point,
};
use proptest::prelude::*;

/// A small generated network with fault flaps and scripted TCP traffic.
/// Returns the builder (for reference runs) plus the session inputs.
fn flap_scenario(seed: u64, flaps: usize, flows: usize) -> NetSimBuilder {
    let mut cfg = FlatTopologyConfig::tiny();
    cfg.routers = 40;
    cfg.hosts = 16;
    cfg.metro_count = 2;
    cfg.seed = seed;
    let net = generate_flat_network(&cfg);
    let hosts = net.host_ids();
    let mut script = FaultScript::new();
    if flaps > 0 {
        script = FaultScript::random_link_flaps(
            &net,
            flaps,
            SimTime::from_ms(300),
            SimTime::from_ms(100),
            SimTime::from_ms(900),
            seed ^ 0xF00D,
        )
        .expect("tiny nets have router-router links to flap");
    }
    let faults = FaultState::flat(&net, CostMetric::Latency, script).expect("script validates");
    let mut builder = NetSimBuilder::new_with_faults(net, faults);
    let mut agent = Agent::new();
    for i in 0..flows {
        let src = hosts[i % hosts.len()];
        let dst = hosts[(i * 7 + 3) % hosts.len()];
        if src != dst {
            agent.inject_tcp(
                SimTime::from_ms(15 * i as u64),
                src,
                dst,
                30_000 + 9_000 * i as u64,
            );
        }
    }
    builder.add_agent(agent);
    builder
}

fn session_for(builder: &NetSimBuilder) -> Session {
    Session::new(
        builder.shared(),
        builder.initial_events(),
        DEFAULT_ROUTE_CACHE_CAPACITY,
        MAX_RETRIES,
    )
}

fn fingerprint_for(builder: &NetSimBuilder) -> u64 {
    scenario_fingerprint(
        &builder.shared(),
        &builder.initial_events(),
        DEFAULT_ROUTE_CACHE_CAPACITY,
        MAX_RETRIES,
    )
}

/// Parity-cut assignment and its safe barrier window (the cut MLL).
fn parity_cut(shared: &SharedNet, parts: u32) -> (Vec<u32>, SimTime) {
    let n = shared.lp_count();
    // simlint: allow(cast-lossy) -- partition index over a tiny test net
    let assignment: Vec<u32> = (0..n).map(|i| (i as u32) % parts).collect();
    let mut mll = f64::INFINITY;
    for link in &shared.net.links {
        if assignment[link.a.index()] != assignment[link.b.index()] {
            mll = mll.min(link.latency_ms);
        }
    }
    let window = SimTime::from_ms_f64(mll);
    assert!(window > SimTime::ZERO, "parity cut must sever some link");
    (assignment, window)
}

fn assert_matches_reference(session: &Session, reference: &SimOutput<NoApp>) {
    assert_eq!(session.total_events(), reference.stats.total_events);
    assert_eq!(session.lp_events(), &reference.stats.lp_events[..]);
    assert_eq!(session.profile(), &reference.profile);
}

#[test]
fn segmented_checkpoints_reproduce_the_straight_run() {
    let builder = flap_scenario(11, 2, 10);
    let end = SimTime::from_secs(2);
    let reference = builder.run_sequential(NoApp, end);

    let mut session = session_for(&builder);
    for k in 1..=4u64 {
        session
            .run_until(SimTime::from_ms(500 * k), &ExecMode::Sequential)
            .expect("segment runs");
    }
    assert_eq!(session.now(), end);
    assert_matches_reference(&session, &reference);
}

#[test]
fn serialize_deserialize_mid_run_is_invisible() {
    let builder = flap_scenario(23, 1, 8);
    let end = SimTime::from_secs(2);
    let reference = builder.run_sequential(NoApp, end);

    let mut session = session_for(&builder);
    session
        .run_until(SimTime::from_ms(700), &ExecMode::Sequential)
        .expect("prefix runs");
    let bytes = session.encode();
    let mut revived = Session::decode(builder.shared(), fingerprint_for(&builder), &bytes)
        .expect("own snapshot loads");
    // Snapshot → restore → snapshot is idempotent.
    assert_eq!(revived.encode(), bytes);

    revived
        .run_until(end, &ExecMode::Sequential)
        .expect("suffix runs");
    assert_matches_reference(&revived, &reference);

    // The original, un-serialized session agrees too.
    session
        .run_until(end, &ExecMode::Sequential)
        .expect("suffix runs");
    assert_matches_reference(&session, &reference);
}

#[test]
fn executor_switches_at_checkpoints_are_invisible() {
    let builder = flap_scenario(31, 2, 10);
    let end = SimTime::from_secs(2);
    let reference = builder.run_sequential(NoApp, end);
    let (assignment, window) = parity_cut(&builder.shared(), 2);
    let parallel = ExecMode::Parallel { assignment, window };

    let mut session = session_for(&builder);
    session
        .run_until(SimTime::from_ms(600), &parallel)
        .expect("parallel prefix");
    session
        .run_until(SimTime::from_ms(1300), &ExecMode::Sequential)
        .expect("sequential middle");
    session.run_until(end, &parallel).expect("parallel suffix");
    assert_matches_reference(&session, &reference);
}

#[test]
fn fingerprint_mismatch_is_refused() {
    let builder = flap_scenario(41, 1, 6);
    let mut session = session_for(&builder);
    session
        .run_until(SimTime::from_ms(300), &ExecMode::Sequential)
        .expect("prefix runs");
    let bytes = session.encode();
    let err = Session::decode(builder.shared(), fingerprint_for(&builder) ^ 1, &bytes)
        .expect_err("wrong scenario must be refused");
    assert!(matches!(err, MassfError::InvalidConfig(_)), "{err}");
}

#[test]
fn corrupted_snapshots_are_structured_errors_never_panics() {
    let builder = flap_scenario(47, 1, 6);
    let fingerprint = fingerprint_for(&builder);
    let mut session = session_for(&builder);
    session
        .run_until(SimTime::from_ms(400), &ExecMode::Sequential)
        .expect("prefix runs");
    let bytes = session.encode();

    // Every truncation fails with a structured error.
    for cut in (0..bytes.len()).step_by(7) {
        let err = Session::decode(builder.shared(), fingerprint, &bytes[..cut])
            .expect_err("truncated snapshot must fail");
        assert!(
            matches!(err, MassfError::SnapshotCorrupt { .. }),
            "cut {cut}: {err}"
        );
    }

    // Every bit flip is either detected or (impossible for CRC-covered
    // bytes) decodes to the identical session.
    for byte in (0..bytes.len()).step_by(5) {
        for bit in [0u8, 3, 7] {
            let mut evil = bytes.clone();
            evil[byte] ^= 1 << bit;
            if let Ok(s) = Session::decode(builder.shared(), fingerprint, &evil) {
                assert_eq!(
                    s.encode(),
                    bytes,
                    "byte {byte} bit {bit}: silent corruption"
                );
            }
        }
    }

    // A bumped format version is the dedicated mismatch error.
    let mut evil = bytes.clone();
    evil[8..12].copy_from_slice(&7u32.to_le_bytes());
    let err = Session::decode(builder.shared(), fingerprint, &evil)
        .expect_err("future version must be refused");
    match err {
        MassfError::SnapshotVersionMismatch { found, expected } => {
            assert_eq!(found, 7);
            assert_eq!(expected, massf_snapshot::FORMAT_VERSION);
        }
        other => panic!("expected SnapshotVersionMismatch, got {other}"),
    }
}

#[test]
fn recovery_resumes_from_newest_valid_snapshot() {
    let builder = flap_scenario(53, 1, 8);
    let fingerprint = fingerprint_for(&builder);
    let end = SimTime::from_secs(2);
    let reference = builder.run_sequential(NoApp, end);

    let dir = std::env::temp_dir().join(format!("massf-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");

    // Checkpoints at 400 ms and 800 ms; the newer one gets corrupted
    // (simulated torn write), and a decoy non-snapshot rides along.
    let mut session = session_for(&builder);
    session
        .run_until(SimTime::from_ms(400), &ExecMode::Sequential)
        .expect("first segment");
    session.save(&dir.join("epoch-0400.snap")).expect("save");
    session
        .run_until(SimTime::from_ms(800), &ExecMode::Sequential)
        .expect("second segment");
    session.save(&dir.join("epoch-0800.snap")).expect("save");

    let torn = {
        let full = std::fs::read(dir.join("epoch-0800.snap")).expect("read back");
        full[..full.len() - 9].to_vec()
    };
    std::fs::write(dir.join("epoch-0800.snap"), torn).expect("tear the newest");
    std::fs::write(dir.join("garbage.snap"), b"not a snapshot").expect("decoy");
    std::fs::write(dir.join("notes.txt"), b"ignored: wrong extension").expect("decoy");

    let report =
        recover_latest(&dir, &builder.shared(), fingerprint).expect("one valid snapshot remains");
    assert_eq!(report.path, dir.join("epoch-0400.snap"));
    assert_eq!(report.session.now(), SimTime::from_ms(400));
    assert_eq!(report.skipped.len(), 2, "torn + garbage recorded");
    for (path, err) in &report.skipped {
        assert!(
            matches!(err, MassfError::SnapshotCorrupt { .. }),
            "{}: {err}",
            path.display()
        );
    }

    // Resuming from the survivor still reproduces the straight run.
    let mut resumed = report.session;
    resumed
        .run_until(end, &ExecMode::Sequential)
        .expect("resume to end");
    assert_matches_reference(&resumed, &reference);

    // With every snapshot damaged, recovery fails loudly.
    std::fs::remove_file(dir.join("epoch-0400.snap")).expect("remove survivor");
    let err =
        recover_latest(&dir, &builder.shared(), fingerprint).expect_err("no valid snapshot left");
    assert!(matches!(err, MassfError::SnapshotIo { .. }), "{err}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// ha — r0 — r1 — hb with a 3 ms detour through r2; the 1 ms r0–r1 hop
/// is primary until a branch kills it.
fn diamond() -> (Network, [NodeId; 5], LinkId) {
    let mut net = Network::new();
    let ha = net.add_node(NodeKind::Host, Point::new(0.0, 0.0), AsId(0));
    let r0 = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
    let r1 = net.add_node(NodeKind::Router, Point::new(2.0, 0.0), AsId(0));
    let r2 = net.add_node(NodeKind::Router, Point::new(1.5, 1.0), AsId(0));
    let hb = net.add_node(NodeKind::Host, Point::new(3.0, 0.0), AsId(0));
    let bw = 1e7; // 10 Mbit/s: a 2 MB flow runs for ~1.6 s
    net.add_link(ha, r0, bw, 0.1);
    let primary = net.add_link(r0, r1, bw, 1.0);
    net.add_link(r0, r2, bw, 3.0);
    net.add_link(r2, r1, bw, 3.0);
    net.add_link(r1, hb, bw, 0.1);
    (net, [ha, r0, r1, r2, hb], primary)
}

#[test]
fn branches_fork_a_shared_prefix_and_match_full_replays() {
    let (net, [ha, _, _, r2, hb], primary) = diamond();
    let end = SimTime::from_secs(8);
    let branch_at = SimTime::from_ms(500);
    let fault_at = SimTime::from_ms(700);

    // Base scenario: fault machinery enabled, empty script.
    let base_faults =
        FaultState::flat(&net, CostMetric::Latency, FaultScript::new()).expect("empty script");
    let mut base = NetSimBuilder::new_with_faults(net.clone(), base_faults);
    base.add_initial(
        SimTime::ZERO,
        LpId(ha.0),
        NetEvent::StartFlow {
            dst: hb,
            bytes: 2_000_000,
        },
    );
    let base_reference = base.run_sequential(NoApp, end);

    // Shared prefix, computed once.
    let mut trunk = session_for(&base);
    trunk
        .run_until(branch_at, &ExecMode::Sequential)
        .expect("prefix runs");
    let prefix_events = trunk.total_events();
    assert!(prefix_events > 0, "the flow must be mid-flight at the fork");

    // Branch A: no divergence — replays the base timeline.
    let mut branch_a = trunk
        .branch(trunk.shared(), Vec::new())
        .expect("identity branch");
    branch_a
        .run_until(end, &ExecMode::Sequential)
        .expect("branch A runs");
    assert_matches_reference(&branch_a, &base_reference);

    // Branch B: the primary link dies mid-flow. Its reference is a full
    // replay under the extended script.
    let mut what_if = FaultScript::new();
    what_if.link_down(fault_at, primary);
    let branch_faults =
        FaultState::flat(&net, CostMetric::Latency, what_if).expect("script validates");
    let branch_shared = SharedNet::with_faults(net.clone(), branch_faults.clone());
    let suffix = vec![(
        fault_at,
        LpId(net.links[primary.index()].a.0),
        NetEvent::Fault {
            kind: FaultKind::LinkDown(primary),
        },
    )];
    let mut branch_b = trunk.branch(branch_shared, suffix).expect("fault branch");
    branch_b
        .run_until(end, &ExecMode::Sequential)
        .expect("branch B runs");

    let mut replay = NetSimBuilder::new_with_faults(net.clone(), branch_faults);
    replay.add_initial(
        SimTime::ZERO,
        LpId(ha.0),
        NetEvent::StartFlow {
            dst: hb,
            bytes: 2_000_000,
        },
    );
    let replay_reference = replay.run_sequential(NoApp, end);
    assert_matches_reference(&branch_b, &replay_reference);

    // The what-if genuinely diverged: the fault fired and traffic took
    // the detour router that the base timeline never touches.
    assert_eq!(branch_b.profile().fault_events, 1);
    assert_eq!(base_reference.profile.fault_events, 0);
    assert!(branch_b.profile().node_packets[r2.index()] > 0);
    assert_eq!(base_reference.profile.node_packets[r2.index()], 0);

    // Branch C: extra injected traffic — tags continue past the initial
    // events, matching a full replay with the suffix appended.
    let extra_at = SimTime::from_ms(900);
    let suffix_c = vec![(
        extra_at,
        LpId(hb.0),
        NetEvent::StartFlow {
            dst: ha,
            bytes: 300_000,
        },
    )];
    let mut branch_c = trunk
        .branch(trunk.shared(), suffix_c.clone())
        .expect("traffic branch");
    branch_c
        .run_until(end, &ExecMode::Sequential)
        .expect("branch C runs");

    let mut replay_c = NetSimBuilder::new_with_faults(
        net.clone(),
        FaultState::flat(&net, CostMetric::Latency, FaultScript::new()).expect("empty script"),
    );
    replay_c.add_initial(
        SimTime::ZERO,
        LpId(ha.0),
        NetEvent::StartFlow {
            dst: hb,
            bytes: 2_000_000,
        },
    );
    replay_c.add_initial_events(suffix_c);
    let replay_c_reference = replay_c.run_sequential(NoApp, end);
    assert_matches_reference(&branch_c, &replay_c_reference);
    assert_eq!(branch_c.profile().completed_flows, 2);

    // Branch rejection: events before the fork are refused.
    let stale = vec![(
        SimTime::from_ms(100),
        LpId(ha.0),
        NetEvent::StartFlow { dst: hb, bytes: 1 },
    )];
    assert!(matches!(
        trunk.branch(trunk.shared(), stale),
        Err(MassfError::InvalidConfig(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole property: for random topologies, fault scripts,
    /// checkpoint cadences, and thread counts — with a serialization
    /// round trip at every checkpoint — segmented execution is
    /// bit-identical to the straight-through sequential run.
    #[test]
    fn random_cadences_and_thread_counts_are_bit_identical(
        seed in 0u64..1_000,
        flaps in 0usize..3,
        segments in 1u64..4,
        parts in 1u32..3,
    ) {
        let builder = flap_scenario(seed, flaps, 8);
        let end = SimTime::from_ms(1_500);
        let reference = builder.run_sequential(NoApp, end);
        let fingerprint = fingerprint_for(&builder);

        let mode = if parts == 1 {
            ExecMode::Sequential
        } else {
            let (assignment, window) = parity_cut(&builder.shared(), parts);
            ExecMode::Parallel { assignment, window }
        };

        let mut session = session_for(&builder);
        for k in 1..=segments {
            session
                .run_until(SimTime::from_ms(k * 1_500 / segments), &mode)
                .expect("segment runs");
            // Round-trip through bytes at every checkpoint.
            session = Session::decode(builder.shared(), fingerprint, &session.encode())
                .expect("own snapshot loads");
        }
        prop_assert_eq!(session.now(), end);
        prop_assert_eq!(session.total_events(), reference.stats.total_events);
        prop_assert_eq!(session.lp_events(), &reference.stats.lp_events[..]);
        prop_assert_eq!(session.profile(), &reference.profile);
    }
}
