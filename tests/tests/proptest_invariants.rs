//! Property-based invariants across the workspace, on randomly
//! generated graphs, topologies, and event workloads.

use massf_core::hier::{reduce_graph, SweepReducer};
use massf_core::prelude::*;
use massf_core::{EdgeWeighting, VertexWeighting};
use massf_engine::{run_parallel, run_sequential, Emitter, LpId, Model};
use massf_partition::{greedy_kcluster, UnionFind};
use massf_routing::bgp::{is_valley_free, BgpRib};
use massf_topology::AsGraph;
use proptest::prelude::*;

/// Strategy: a connected weighted graph as (vertex weights, extra edges).
/// A random spanning path guarantees connectivity.
fn connected_graph() -> impl Strategy<Value = WeightedGraph> {
    (
        2usize..60,
        proptest::collection::vec((0u32..60, 0u32..60, 1u64..100), 0..120),
    )
        .prop_map(|(n, extra)| {
            let mut edges: Vec<(u32, u32, u64)> = (1..n as u32).map(|i| (i - 1, i, 1)).collect();
            for (a, b, w) in extra {
                let (a, b) = (a % n as u32, b % n as u32);
                if a != b {
                    edges.push((a, b, w));
                }
            }
            WeightedGraph::from_edges(vec![1; n], &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn metis_partitions_are_always_valid(g in connected_graph(), k in 1usize..8) {
        let p = metis_kway(&g, k, &KwayConfig::default());
        prop_assert_eq!(p.len(), g.vertex_count());
        prop_assert!(p.assignment.iter().all(|&x| (x as usize) < k));
        prop_assert_eq!(p.used_parts(), k.min(g.vertex_count()));
        // Weight conservation.
        let total: u64 = p.part_weights(&g).iter().sum();
        prop_assert_eq!(total, g.total_vertex_weight());
    }

    #[test]
    fn kcluster_partitions_are_always_valid(g in connected_graph(), k in 1usize..6) {
        let p = greedy_kcluster(&g, k, 5);
        prop_assert_eq!(p.len(), g.vertex_count());
        prop_assert_eq!(p.used_parts(), k.min(g.vertex_count()));
    }

    #[test]
    fn union_find_respects_equivalence_laws(
        n in 1usize..50,
        unions in proptest::collection::vec((0usize..50, 0usize..50), 0..80),
    ) {
        let mut uf = UnionFind::new(n);
        let mut naive: Vec<usize> = (0..n).collect();
        for (a, b) in unions {
            let (a, b) = (a % n, b % n);
            uf.union(a, b);
            // Naive: relabel everything in b's class to a's class.
            let (la, lb) = (naive[a], naive[b]);
            for l in naive.iter_mut() {
                if *l == lb {
                    *l = la;
                }
            }
        }
        for x in 0..n {
            for y in 0..n {
                prop_assert_eq!(uf.connected(x, y), naive[x] == naive[y]);
            }
        }
    }

    #[test]
    fn bgp_paths_are_valley_free_and_loop_free(
        n in 4usize..25,
        m in 1usize..3,
        seed in 0u64..1000,
    ) {
        let g = AsGraph::generate(n, m, 0.12, seed);
        let rib = BgpRib::compute(&g);
        for s in 0..n {
            for d in 0..n {
                if let Some(path) = rib.as_path(s, d) {
                    let mut full = vec![s];
                    full.extend(path.iter().map(|&x| x as usize));
                    prop_assert!(is_valley_free(&g, &full), "{:?}", full);
                    let unique: std::collections::HashSet<_> = full.iter().collect();
                    prop_assert_eq!(unique.len(), full.len(), "loop in {:?}", full);
                }
            }
        }
        // maBrite's provider-connectivity guarantee ⇒ full reachability.
        prop_assert_eq!(rib.reachability_fraction(), 1.0);
    }

    #[test]
    fn reduction_never_cuts_sub_threshold_links(
        routers in 40usize..120,
        seed in 0u64..500,
        tmll_tenths in 1u32..40,
    ) {
        let tmll = tmll_tenths as f64 / 10.0;
        let net = generate_flat_network(&FlatTopologyConfig {
            routers,
            hosts: 10,
            metro_count: 6,
            seed,
            ..FlatTopologyConfig::default()
        });
        let graph = massf_core::build_weighted_graph(
            &net, VertexWeighting::Bandwidth, EdgeWeighting::Standard, None,
        );
        let (reduced, labels) = reduce_graph(&net, &graph, tmll);
        prop_assert_eq!(reduced.total_vertex_weight(), graph.total_vertex_weight());
        // Partition the reduced graph arbitrarily; projected through the
        // labels, no cut link may be faster than tmll.
        let rp = metis_kway(&reduced, 4.min(reduced.vertex_count()), &KwayConfig::default());
        let assignment: Vec<u32> =
            labels.iter().map(|&c| rp.assignment[c as usize]).collect();
        for link in &net.links {
            if assignment[link.a.index()] != assignment[link.b.index()] {
                prop_assert!(
                    link.latency_ms >= tmll,
                    "cut link latency {} < {}",
                    link.latency_ms,
                    tmll
                );
            }
        }
    }

    /// Coarsening Tmll_k from Tmll_{k-1}'s reduced graph (the
    /// incremental `SweepReducer` path) must be bit-identical to
    /// reducing the full graph from scratch at every threshold of an
    /// ascending sweep, at any worker-thread count.
    #[test]
    fn incremental_reduction_equals_from_scratch(
        routers in 40usize..120,
        seed in 0u64..500,
        step_tenths in 1u32..8,
        threads in 1usize..5,
    ) {
        let step = step_tenths as f64 / 10.0;
        let net = generate_flat_network(&FlatTopologyConfig {
            routers,
            hosts: 10,
            metro_count: 6,
            seed,
            ..FlatTopologyConfig::default()
        });
        let graph = massf_core::build_weighted_graph(
            &net, VertexWeighting::Bandwidth, EdgeWeighting::Standard, None,
        );
        massf_parutil::with_threads(threads, || {
            let mut reducer = SweepReducer::new(&net, &graph);
            for k in 0..12 {
                let tmll = k as f64 * step;
                reducer.advance(tmll);
                let (scratch, scratch_labels) = reduce_graph(&net, &graph, tmll);
                assert_eq!(
                    reducer.reduced(),
                    &scratch,
                    "graph diverged at Tmll {tmll} (threads {threads})"
                );
                assert_eq!(reducer.labels(), &scratch_labels[..]);
            }
        });
    }
}

/// A model whose LPs mix state deterministically: each event carries a
/// value folded into the LP's hash and forwarded to `(lp*7+3) % n` with
/// a latency ≥ the lookahead.
struct Mixer {
    n: u32,
    hash: Vec<u64>,
}

impl Model for Mixer {
    type Event = u64;
    fn handle(
        &mut self,
        target: LpId,
        now: massf_engine::SimTime,
        v: u64,
        out: &mut Emitter<'_, u64>,
    ) {
        let h = &mut self.hash[target.index()];
        *h = h.wrapping_mul(0x100000001B3).wrapping_add(v ^ now.as_ns());
        let next = (target.0.wrapping_mul(7).wrapping_add(3)) % self.n;
        if !v.is_multiple_of(97) {
            out.emit(
                massf_engine::SimTime::from_ms(1 + (v % 5)),
                LpId(next),
                v.wrapping_add(*h),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engine_parallel_equals_sequential_on_random_workloads(
        n in 2u32..12,
        parts in 1usize..4,
        seeds in proptest::collection::vec((0u64..30u64, any::<u64>()), 1..10),
    ) {
        let n = n.max(parts as u32);
        let initial: Vec<_> = seeds
            .iter()
            .map(|&(t, v)| {
                (
                    massf_engine::SimTime::from_ms(t),
                    LpId((v % n as u64) as u32),
                    v,
                )
            })
            .collect();
        let end = massf_engine::SimTime::from_ms(200);
        let window = massf_engine::SimTime::from_ms(1); // = min hop latency

        let mut seq = Mixer { n, hash: vec![0; n as usize] };
        let seq_stats = run_sequential(&mut seq, n as usize, initial.clone(), end);

        let assignment: Vec<u32> = (0..n).map(|i| i % parts as u32).collect();
        let shards: Vec<Mixer> = (0..parts)
            .map(|_| Mixer { n, hash: vec![0; n as usize] })
            .collect();
        let (shards, par_stats) =
            run_parallel(shards, n as usize, &assignment, initial, end, window);

        prop_assert_eq!(seq_stats.total_events, par_stats.total_events);
        prop_assert_eq!(&seq_stats.lp_events, &par_stats.lp_events);
        // Merge shard hashes: each LP's state lives in exactly one shard
        // (all others kept the zero initial value).
        for lp in 0..n as usize {
            let merged: u64 = shards
                .iter()
                .map(|s| s.hash[lp])
                .fold(0, |acc, h| acc ^ h);
            prop_assert_eq!(merged, seq.hash[lp], "LP {} state diverged", lp);
        }
    }
}
