//! End-to-end fault-injection acceptance tests (ISSUE 2):
//!
//! 1. A scripted mid-run link failure triggers OSPF reconvergence and
//!    subsequent traffic reroutes — the pre-fault and post-fault paths
//!    differ and no packets are lost after the reconvergence window.
//! 2. A failure under an in-flight flow drops packets mid-flight, and
//!    TCP retransmission fails over to the reconverged path.
//! 3. A crashed router with no alternative path makes flows abort with
//!    a structured reason within the retry budget instead of hanging.

use massf_engine::SimTime;
use massf_netsim::{
    AbortReason, AppLogic, FaultScript, FaultState, FlowId, NetEvent, NetSimBuilder, NoApp, SimApi,
};
use massf_routing::CostMetric;
use massf_topology::{AsId, LinkId, Network, NodeId, NodeKind, Point};
use std::sync::Arc;

/// ha — r0 — r1 — hb with a detour r0 — r2 — r1. The primary r0–r1 hop
/// is cheap (1 ms); the detour legs cost 3 ms each, so OSPF only uses
/// them once the primary is gone.
fn diamond(bw: f64) -> (Network, [NodeId; 5]) {
    let mut net = Network::new();
    let ha = net.add_node(NodeKind::Host, Point::new(0.0, 0.0), AsId(0));
    let r0 = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
    let r1 = net.add_node(NodeKind::Router, Point::new(2.0, 0.0), AsId(0));
    let r2 = net.add_node(NodeKind::Router, Point::new(1.5, 1.0), AsId(0));
    let hb = net.add_node(NodeKind::Host, Point::new(3.0, 0.0), AsId(0));
    net.add_link(ha, r0, bw, 0.1);
    net.add_link(r0, r1, bw, 1.0);
    net.add_link(r0, r2, bw, 3.0);
    net.add_link(r2, r1, bw, 3.0);
    net.add_link(r1, hb, bw, 0.1);
    (net, [ha, r0, r1, r2, hb])
}

fn link_between(net: &Network, a: NodeId, b: NodeId) -> LinkId {
    net.links
        .iter()
        .find(|l| (l.a, l.b) == (a, b) || (l.a, l.b) == (b, a))
        .expect("link exists")
        .id
}

#[test]
fn link_failure_reconverges_and_reroutes_without_loss() {
    // Fast links: a pre-fault flow finishes well before the fault, a
    // post-fault flow starts well after it.
    let (net, [ha, r0, r1, r2, hb]) = diamond(1e9);
    let primary = link_between(&net, r0, r1);
    let mut script = FaultScript::new();
    script.link_down(SimTime::from_ms(500), primary);
    let faults = FaultState::flat(&net, CostMetric::Latency, script).expect("script validates");

    // The routing view: pre-fault path differs from post-fault path.
    let pre = faults
        .resolver_at(SimTime::ZERO)
        .route(ha, hb)
        .expect("reachable before the fault");
    let post = faults
        .resolver_at(SimTime::from_ms(500))
        .route(ha, hb)
        .expect("reachable after reconvergence");
    assert_eq!(pre, vec![ha, r0, r1, hb]);
    assert_eq!(post, vec![ha, r0, r2, r1, hb]);
    assert_ne!(pre, post, "fault must change the routed path");

    // The packet view: one flow entirely before, one entirely after.
    let mut builder = NetSimBuilder::new_with_faults(net.clone(), faults.clone());
    builder.add_initial(
        SimTime::ZERO,
        massf_engine::LpId(ha.0),
        NetEvent::StartFlow {
            dst: hb,
            bytes: 50_000,
        },
    );
    builder.add_initial(
        SimTime::from_secs(1),
        massf_engine::LpId(ha.0),
        NetEvent::StartFlow {
            dst: hb,
            bytes: 50_000,
        },
    );
    let out = builder.run_sequential(NoApp, SimTime::from_secs(30));

    assert_eq!(out.profile.completed_flows, 2, "both flows must complete");
    assert_eq!(out.profile.aborted_flows, 0);
    assert_eq!(
        out.profile.fault_drops, 0,
        "zero lost packets outside the fault window: flow 1 precedes the \
         fault, flow 2 starts after reconvergence"
    );
    assert_eq!(out.profile.fault_events, 1);
    assert!(faults.reconvergence_count() >= 1, "OSPF must reconverge");
    assert!(
        out.profile.node_packets[r2.index()] > 0,
        "post-fault flow must traverse the detour router"
    );

    // Clean reference: the detour router is never touched.
    let mut clean = NetSimBuilder::new(
        net.clone(),
        Arc::new(massf_routing::FlatResolver::new(&net, CostMetric::Latency)),
    );
    clean.add_initial(
        SimTime::ZERO,
        massf_engine::LpId(ha.0),
        NetEvent::StartFlow {
            dst: hb,
            bytes: 50_000,
        },
    );
    let clean_out = clean.run_sequential(NoApp, SimTime::from_secs(30));
    assert_eq!(clean_out.profile.node_packets[r2.index()], 0);
    assert_eq!(clean_out.profile.fault_events, 0);
}

#[test]
fn in_flight_flow_survives_failure_via_retransmission() {
    // Slow links so a 200 kB flow is still in flight when the primary
    // dies at 300 ms; in-flight packets are lost, the RTO re-resolves
    // onto the detour, and the flow still completes.
    let (net, [ha, r0, r1, _r2, hb]) = diamond(1e6);
    let primary = link_between(&net, r0, r1);
    let mut script = FaultScript::new();
    script.link_down(SimTime::from_ms(300), primary);
    let faults = FaultState::flat(&net, CostMetric::Latency, script).expect("script validates");

    let mut builder = NetSimBuilder::new_with_faults(net, faults);
    builder.add_initial(
        SimTime::ZERO,
        massf_engine::LpId(ha.0),
        NetEvent::StartFlow {
            dst: hb,
            bytes: 200_000,
        },
    );
    let out = builder.run_sequential(NoApp, SimTime::from_secs(120));

    assert!(
        out.profile.fault_drops > 0,
        "packets crossing the dying link must be lost mid-flight"
    );
    assert_eq!(
        out.profile.completed_flows, 1,
        "TCP must recover over the reconverged path"
    );
    assert_eq!(out.profile.aborted_flows, 0);
}

/// Captures abort callbacks for inspection.
#[derive(Clone, Default)]
struct AbortProbe {
    aborts: Vec<(NodeId, FlowId, AbortReason, SimTime)>,
}

impl AppLogic for AbortProbe {
    fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
    fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi<'_, '_>) {}
    fn on_flow_aborted(
        &mut self,
        host: NodeId,
        flow: FlowId,
        reason: AbortReason,
        api: &mut SimApi<'_, '_>,
    ) {
        self.aborts.push((host, flow, reason, api.now()));
    }
}

#[test]
fn crashed_router_without_alternative_aborts_within_budget() {
    // ha — r — hb: the only router crashes under an in-flight flow.
    let mut net = Network::new();
    let ha = net.add_node(NodeKind::Host, Point::new(0.0, 0.0), AsId(0));
    let r = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
    let hb = net.add_node(NodeKind::Host, Point::new(2.0, 0.0), AsId(0));
    net.add_link(ha, r, 1e6, 1.0);
    net.add_link(r, hb, 1e6, 1.0);

    let mut script = FaultScript::new();
    script.router_crash(SimTime::from_ms(200), r);
    let faults = FaultState::flat(&net, CostMetric::Latency, script).expect("script validates");
    assert!(
        faults
            .resolver_at(SimTime::from_ms(200))
            .route(ha, hb)
            .is_none(),
        "no alternative path exists after the crash"
    );

    let mut builder = NetSimBuilder::new_with_faults(net, faults);
    builder.add_initial(
        SimTime::ZERO,
        massf_engine::LpId(ha.0),
        NetEvent::StartFlow {
            dst: hb,
            bytes: 500_000,
        },
    );
    let out = builder.run_sequential(AbortProbe::default(), SimTime::from_secs(90));

    assert_eq!(out.profile.completed_flows, 0);
    assert_eq!(out.profile.aborted_flows, 1, "the flow must give up");
    let probe = &out.apps[0];
    assert_eq!(probe.aborts.len(), 1);
    let (host, flow, reason, at) = probe.aborts[0];
    assert_eq!(host, ha);
    assert_eq!(flow.source(), ha);
    assert_eq!(
        reason,
        AbortReason::Unroutable,
        "failover found no route, so the abort is structured as unroutable"
    );
    assert!(
        at <= SimTime::from_secs(60),
        "abort must land within the retry budget (~47 s worst case), got {:?}",
        at
    );
    assert!(out.profile.fault_drops > 0, "retransmissions were dropped");
}

#[test]
fn fault_free_script_changes_nothing() {
    // Fault machinery with an empty script must reproduce the plain
    // resolver's run exactly (guards the fault-free hot path).
    let (net, [ha, _, _, _, hb]) = diamond(1e9);
    let faults = FaultState::flat(&net, CostMetric::Latency, FaultScript::new())
        .expect("empty script validates");
    let start = (
        SimTime::ZERO,
        massf_engine::LpId(ha.0),
        NetEvent::StartFlow {
            dst: hb,
            bytes: 100_000,
        },
    );

    let mut plain = NetSimBuilder::new(
        net.clone(),
        Arc::new(massf_routing::FlatResolver::new(&net, CostMetric::Latency)),
    );
    plain.add_initial(start.0, start.1, start.2.clone());
    let a = plain.run_sequential(NoApp, SimTime::from_secs(10));

    let mut faulted = NetSimBuilder::new_with_faults(net, faults.clone());
    faulted.add_initial(start.0, start.1, start.2);
    let b = faulted.run_sequential(NoApp, SimTime::from_secs(10));

    assert_eq!(a.profile, b.profile);
    assert_eq!(a.stats.total_events, b.stats.total_events);
    assert_eq!(faults.reconvergence_count(), 0);
}
