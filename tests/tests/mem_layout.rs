//! Memory-layout determinism: the SoA flow slabs (PR 6) recycle slot
//! indices through a free list, so a flow's dense index depends on the
//! complete/start interleaving. These tests pin that free/reuse keeps
//! the flow-id → state mapping bit-identical across thread and
//! partition counts: randomized overlapping flow schedules — sized so
//! many flows *complete* mid-run and their slots are reused by later
//! flows — must produce identical profiles under the sequential engine
//! and the parallel engine at every partition count.

use massf_engine::SimTime;
use massf_netsim::{Agent, NetSimBuilder, NoApp};
use massf_parutil::with_threads;
use massf_routing::{CostMetric, FlatResolver};
use massf_topology::{generate_flat_network, FlatTopologyConfig, Network};
use proptest::prelude::*;
use std::sync::Arc;

/// Run a flow schedule at a given thread / partition count and return
/// everything observable: the full profile (per-node and per-link
/// packet counts included) plus the engine event total.
fn run_schedule(
    net: &Network,
    flows: &[(u64, usize, usize, u64)],
    threads: usize,
    partitions: usize,
) -> (massf_netsim::ProfileData, u64) {
    let hosts = net.host_ids();
    with_threads(threads, || {
        let resolver = Arc::new(FlatResolver::new(net, CostMetric::Latency));
        let mut builder = NetSimBuilder::new(net.clone(), resolver);
        let mut agent = Agent::new();
        for &(start_ms, src, dst, bytes) in flows {
            // Concentrate sources on four hosts so the same per-node
            // slab recycles slots many times within one run.
            let a = hosts[src % 4];
            let b = hosts[dst % hosts.len()];
            if a != b {
                agent.inject_tcp(SimTime::from_ms(start_ms), a, b, bytes);
            }
        }
        builder.add_agent(agent);
        let duration = SimTime::from_secs(2);
        let out = if partitions == 1 {
            builder.run_sequential(NoApp, duration)
        } else {
            let assignment: Vec<u32> = (0..net.node_count())
                .map(|i| (i % partitions) as u32)
                .collect();
            let mut window = f64::INFINITY;
            for link in &net.links {
                if assignment[link.a.index()] != assignment[link.b.index()] {
                    window = window.min(link.latency_ms);
                }
            }
            builder.run_parallel(
                NoApp,
                duration,
                SimTime::from_ms_f64(window),
                &assignment,
                partitions,
            )
        };
        (out.profile, out.stats.total_events)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn slab_recycling_is_bit_identical_across_thread_counts(
        flows in proptest::collection::vec(
            // (start ms, src pick, dst pick, bytes): small transfers so
            // most flows finish inside the run and free their slots.
            (0u64..600, 0usize..16, 0usize..64, 1_000u64..40_000),
            10..50,
        ),
    ) {
        let net = generate_flat_network(&FlatTopologyConfig::tiny());
        let reference = run_schedule(&net, &flows, 1, 1);
        prop_assert!(
            reference.0.completed_flows > 0,
            "schedule must complete flows so slots actually recycle"
        );
        for (threads, partitions) in [(1, 2), (2, 2), (4, 4)] {
            let par = run_schedule(&net, &flows, threads, partitions);
            prop_assert_eq!(
                &reference.0, &par.0,
                "profile diverged at threads {} partitions {}",
                threads, partitions
            );
            prop_assert_eq!(reference.1, par.1);
        }
    }
}
