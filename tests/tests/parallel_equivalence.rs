//! The strongest engine-correctness property: running the full packet
//! workload on the real multi-threaded conservative executor, with a
//! partition produced by the actual mappers and a window equal to the
//! achieved MLL, gives results bit-identical to sequential execution.

use massf_core::prelude::*;
use massf_integration::{tiny_mapping_config, tiny_single_as};
use massf_netsim::NetSimBuilder;

fn mll_window(scenario: &Scenario, assignment: &[u32]) -> SimTime {
    let mll = achieved_mll_ms(&scenario.net, assignment).expect("some link is cut");
    SimTime::from_ms_f64(mll)
}

#[test]
fn parallel_run_matches_sequential_under_hprof_mapping() {
    let scenario = tiny_single_as(41);
    let cfg = tiny_mapping_config(3);
    let profile = run_profiling(&scenario, SimTime::from_secs(1));
    let mapping = map_network(&scenario.net, Some(&profile), MappingApproach::Hprof, &cfg);
    let window = mll_window(&scenario, &mapping.partition.assignment);
    assert!(window > SimTime::ZERO);

    let end = SimTime::from_secs(3);
    let (app, events) = scenario.make_app();
    let mut builder = NetSimBuilder::new(scenario.net.clone(), scenario.resolver.clone());
    builder.add_initial_events(events);

    let seq = builder.run_sequential(app.clone(), end);
    let par = builder.run_parallel(app, end, window, &mapping.partition.assignment, 3);

    assert_eq!(seq.stats.total_events, par.stats.total_events);
    assert_eq!(seq.stats.lp_events, par.stats.lp_events);
    assert_eq!(
        seq.profile, par.profile,
        "traffic counters must be identical"
    );
}

#[test]
fn parallel_run_matches_sequential_on_multi_as_bgp_network() {
    let scenario = massf_integration::tiny_multi_as(43);
    let cfg = tiny_mapping_config(2);
    let mapping = map_network(&scenario.net, None, MappingApproach::Htop, &cfg);
    let window = mll_window(&scenario, &mapping.partition.assignment);

    let end = SimTime::from_secs(2);
    let (app, events) = scenario.make_app();
    let mut builder = NetSimBuilder::new(scenario.net.clone(), scenario.resolver.clone());
    builder.add_initial_events(events);

    let seq = builder.run_sequential(app.clone(), end);
    let par = builder.run_parallel(app, end, window, &mapping.partition.assignment, 2);

    assert_eq!(seq.stats.total_events, par.stats.total_events);
    assert_eq!(seq.stats.lp_events, par.stats.lp_events);
    assert_eq!(seq.profile, par.profile);
}

#[test]
fn windowed_sequential_matches_plain_sequential_on_full_workload() {
    let scenario = tiny_single_as(47);
    let cfg = tiny_mapping_config(4);
    let mapping = map_network(&scenario.net, None, MappingApproach::Top2, &cfg);
    let window = mll_window(&scenario, &mapping.partition.assignment);

    let end = SimTime::from_secs(3);
    let (app, events) = scenario.make_app();
    let mut builder = NetSimBuilder::new(scenario.net.clone(), scenario.resolver.clone());
    builder.add_initial_events(events);

    let plain = builder.run_sequential(app.clone(), end);
    let windowed =
        builder.run_sequential_windowed(app, end, window, &mapping.partition.assignment, 4);

    assert_eq!(plain.stats.total_events, windowed.stats.total_events);
    assert_eq!(plain.profile, windowed.profile);
    // Windowed bookkeeping is consistent.
    let by_window: u64 = windowed.stats.bucket_totals.iter().sum();
    let by_partition: u64 = windowed.stats.partition_totals.iter().sum();
    assert_eq!(by_window, windowed.stats.total_events);
    assert_eq!(by_partition, windowed.stats.total_events);
    assert!(windowed.stats.critical_path_events() <= windowed.stats.total_events);
    assert!(
        windowed.stats.critical_path_events() * 4 >= windowed.stats.total_events,
        "critical path cannot beat perfect 4-way speedup"
    );
}
