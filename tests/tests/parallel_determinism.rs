//! Determinism regression tests for the shared worker-pool layer:
//! every parallelized phase — the HPROF threshold sweep, OSPF table
//! warming, and multi-AS resolver construction — must produce results
//! bit-identical to its sequential execution, at any thread count.
//!
//! These pin the ISSUE's acceptance criterion that figure output is
//! byte-identical across `--threads` settings: all figure numbers
//! derive from the values compared here.

use massf_core::prelude::*;
use massf_integration::{tiny_mapping_config, tiny_multi_as, tiny_single_as};
use massf_netsim::{Agent, FaultScript, FaultState, NetSimBuilder, NoApp};
use massf_parutil::with_threads;
use massf_routing::{CostMetric, MultiAsResolver, OspfDomain};
use massf_topology::{
    generate_flat_network, generate_multi_as_network, FlatTopologyConfig, MultiAsTopologyConfig,
};

/// HPROF over a scenario at a given worker-thread count, returning
/// everything a figure would print.
fn hprof_at(scenario: &Scenario, threads: usize) -> (Vec<u32>, u64, u64, Option<u64>) {
    with_threads(threads, || {
        let profile = run_profiling(scenario, SimTime::from_secs(1));
        let cfg = tiny_mapping_config(4);
        let mapping = map_network(&scenario.net, Some(&profile), MappingApproach::Hprof, &cfg);
        (
            mapping.partition.assignment.clone(),
            mapping.achieved_mll_ms.to_bits(),
            mapping.evaluation.e.to_bits(),
            mapping.tmll_ms.map(f64::to_bits),
        )
    })
}

#[test]
fn hprof_winner_identical_across_thread_counts_single_as() {
    let scenario = tiny_single_as(11);
    let seq = hprof_at(&scenario, 1);
    for threads in [2, 4, 8] {
        assert_eq!(seq, hprof_at(&scenario, threads), "threads = {threads}");
    }
}

#[test]
fn hprof_winner_identical_across_thread_counts_multi_as() {
    let scenario = tiny_multi_as(23);
    let seq = hprof_at(&scenario, 1);
    for threads in [2, 4] {
        assert_eq!(seq, hprof_at(&scenario, threads), "threads = {threads}");
    }
}

#[test]
fn full_suite_rows_identical_across_thread_counts() {
    let scenario = tiny_single_as(7);
    let cfg = tiny_mapping_config(4);
    let model = ClusterModel::default();
    let approaches = [
        MappingApproach::Top2,
        MappingApproach::Prof2,
        MappingApproach::Htop,
        MappingApproach::Hprof,
    ];
    let run = |threads| {
        with_threads(threads, || {
            run_approaches(&scenario, &approaches, &cfg, &model, SimTime::from_secs(1))
                .into_iter()
                .map(|o| {
                    (
                        o.approach,
                        o.mapping.partition.assignment,
                        o.run_stats.total_events,
                        o.metrics.simulation_time_secs.to_bits(),
                        o.metrics.parallel_efficiency.to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        })
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn ospf_full_table_identical_across_thread_counts() {
    let scenario = tiny_single_as(3);
    let net = &scenario.net;
    let members: Vec<_> = net.nodes.iter().map(|n| n.id).collect();
    let table_at = |threads: usize| {
        with_threads(threads, || {
            let d = OspfDomain::new(net, members.clone(), CostMetric::Latency);
            d.warm_full_table();
            let mut table = Vec::new();
            for &s in &members {
                for &t in members.iter().step_by(7) {
                    table.push((d.next_hop(s, t), d.distance(s, t)));
                }
            }
            table
        })
    };
    let seq = table_at(1);
    for threads in [2, 4] {
        assert_eq!(seq, table_at(threads), "threads = {threads}");
    }
}

/// A fault-injected network run must be bit-identical between the
/// sequential engine and the parallel engine at any partition / worker
/// count. The script deliberately places one fault at *exactly* the
/// same timestamp as a traffic injection: fault events carry engine
/// tags like any other external event, so colliding timestamps sort
/// deterministically regardless of which LP processes them first.
#[test]
fn fault_injected_run_identical_across_thread_counts() {
    let net = generate_flat_network(&FlatTopologyConfig::tiny());
    let hosts = net.host_ids();
    let collision = SimTime::from_ms(50);

    // Fresh per run: epoch resolvers are built lazily (and, with PR 1's
    // pool, in parallel), so each run must reconverge at its own thread
    // count rather than inherit tables warmed by a previous run.
    let make_faults = || {
        let mut script = FaultScript::new();
        script.link_down(collision, net.links[0].id);
        script.link_up(SimTime::from_ms(400), net.links[0].id);
        script.link_down(SimTime::from_ms(200), net.links[7].id);
        script.link_up(SimTime::from_ms(600), net.links[7].id);
        FaultState::flat(&net, CostMetric::Latency, script).expect("script validates")
    };

    let traffic = || {
        let mut agent = Agent::new();
        for (i, pair) in hosts.chunks(2).take(24).enumerate() {
            if let [a, b] = pair {
                agent.inject_tcp(
                    SimTime::from_ms(10 * i as u64),
                    *a,
                    *b,
                    20_000 + 1_000 * i as u64,
                );
            }
        }
        // This flow starts at the first fault's exact timestamp.
        agent.inject_tcp(collision, hosts[0], hosts[hosts.len() - 1], 30_000);
        agent
    };

    let duration = SimTime::from_secs(2);
    let fingerprint = |threads: usize, partitions: usize| {
        with_threads(threads, || {
            let faults = make_faults();
            let mut builder = NetSimBuilder::new_with_faults(net.clone(), faults.clone());
            builder.add_agent(traffic());
            let out = if partitions == 1 {
                builder.run_sequential(NoApp, duration)
            } else {
                let assignment: Vec<u32> = (0..net.node_count())
                    .map(|i| (i % partitions) as u32)
                    .collect();
                let mut window = f64::INFINITY;
                for link in &net.links {
                    if assignment[link.a.index()] != assignment[link.b.index()] {
                        window = window.min(link.latency_ms);
                    }
                }
                builder.run_parallel(
                    NoApp,
                    duration,
                    SimTime::from_ms_f64(window),
                    &assignment,
                    partitions,
                )
            };
            (
                out.stats.total_events,
                out.profile,
                faults.reconvergence_count(),
            )
        })
    };

    let reference = fingerprint(1, 1);
    assert!(reference.1.fault_events > 0, "faults must actually fire");
    assert!(reference.2 > 0, "faults must trigger reconvergence");
    for (threads, partitions) in [(1, 2), (2, 2), (4, 4), (4, 2)] {
        assert_eq!(
            reference,
            fingerprint(threads, partitions),
            "threads = {threads}, partitions = {partitions}"
        );
    }
}

/// The route cache must be (1) transparent — identical simulation
/// results at every capacity, including disabled and eviction-thrashing
/// capacity 1 — and (2) deterministic — cache-enabled parallel runs
/// bit-identical to sequential, *including* the hit/miss/evict
/// counters, at any thread count. Both hold because the cache is
/// sharded by source node and routes are only resolved from the source
/// LP's event handler.
#[test]
fn route_cache_transparent_and_identical_across_thread_counts() {
    let net = generate_flat_network(&FlatTopologyConfig::tiny());
    let hosts = net.host_ids();
    let traffic = || {
        let mut agent = Agent::new();
        // Repeated pairs (so the cache actually hits) plus spread pairs
        // (so capacity 1 actually evicts).
        for i in 0..24 {
            let a = hosts[i % 4];
            let b = hosts[hosts.len() - 1 - (i % 6)];
            if a != b {
                agent.inject_tcp(SimTime::from_ms(5 * i as u64), a, b, 15_000);
            }
        }
        agent
    };
    let duration = SimTime::from_secs(2);

    let run = |capacity: usize, threads: usize, partitions: usize| {
        with_threads(threads, || {
            let resolver =
                std::sync::Arc::new(massf_routing::FlatResolver::new(&net, CostMetric::Latency));
            let mut builder = NetSimBuilder::new(net.clone(), resolver);
            builder.route_cache_capacity(capacity);
            builder.add_agent(traffic());
            if partitions == 1 {
                builder.run_sequential(NoApp, duration)
            } else {
                let assignment: Vec<u32> = (0..net.node_count())
                    .map(|i| (i % partitions) as u32)
                    .collect();
                let mut window = f64::INFINITY;
                for link in &net.links {
                    if assignment[link.a.index()] != assignment[link.b.index()] {
                        window = window.min(link.latency_ms);
                    }
                }
                builder.run_parallel(
                    NoApp,
                    duration,
                    SimTime::from_ms_f64(window),
                    &assignment,
                    partitions,
                )
            }
        })
    };

    let reference = run(128, 1, 1);
    assert!(
        reference.profile.route_cache.hits > 0,
        "repeated pairs must hit the cache"
    );
    for capacity in [0usize, 1, 128] {
        let seq = run(capacity, 1, 1);
        // Transparency: everything except the cache counters matches
        // the reference run regardless of capacity.
        let mut masked = seq.profile.clone();
        masked.route_cache = reference.profile.route_cache;
        assert_eq!(
            masked, reference.profile,
            "capacity {capacity} changed simulation results"
        );
        assert_eq!(seq.stats.total_events, reference.stats.total_events);
        if capacity == 0 {
            assert_eq!(
                seq.profile.route_cache,
                Default::default(),
                "disabled cache must not move counters"
            );
        }
        if capacity == 1 {
            assert!(
                seq.profile.route_cache.evictions > 0,
                "capacity 1 must thrash"
            );
        }
        // Determinism: parallel runs match sequential bit-for-bit,
        // counters included.
        for (threads, partitions) in [(1, 2), (2, 2), (4, 2)] {
            let par = run(capacity, threads, partitions);
            assert_eq!(
                par.profile, seq.profile,
                "capacity {capacity}, threads {threads}, partitions {partitions}"
            );
            assert_eq!(par.stats.total_events, seq.stats.total_events);
        }
    }
}

#[test]
fn multi_as_resolver_identical_across_thread_counts() {
    let cfg = MultiAsTopologyConfig::tiny();
    let m = generate_multi_as_network(&cfg);
    let hosts = m.network.host_ids();
    let routes_at = |threads: usize| {
        with_threads(threads, || {
            let r = MultiAsResolver::new(&m, CostMetric::Latency, &cfg);
            let mut routes = Vec::new();
            for &a in &hosts {
                for &b in hosts.iter().step_by(5) {
                    routes.push(massf_routing::PathResolver::route(&r, a, b));
                }
            }
            routes
        })
    };
    let seq = routes_at(1);
    for threads in [2, 4] {
        assert_eq!(seq, routes_at(threads), "threads = {threads}");
    }
}
