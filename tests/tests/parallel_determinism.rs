//! Determinism regression tests for the shared worker-pool layer:
//! every parallelized phase — the HPROF threshold sweep, OSPF table
//! warming, and multi-AS resolver construction — must produce results
//! bit-identical to its sequential execution, at any thread count.
//!
//! These pin the ISSUE's acceptance criterion that figure output is
//! byte-identical across `--threads` settings: all figure numbers
//! derive from the values compared here.

use massf_core::prelude::*;
use massf_integration::{tiny_mapping_config, tiny_multi_as, tiny_single_as};
use massf_parutil::with_threads;
use massf_routing::{CostMetric, MultiAsResolver, OspfDomain};
use massf_topology::{generate_multi_as_network, MultiAsTopologyConfig};

/// HPROF over a scenario at a given worker-thread count, returning
/// everything a figure would print.
fn hprof_at(scenario: &Scenario, threads: usize) -> (Vec<u32>, u64, u64, Option<u64>) {
    with_threads(threads, || {
        let profile = run_profiling(scenario, SimTime::from_secs(1));
        let cfg = tiny_mapping_config(4);
        let mapping = map_network(&scenario.net, Some(&profile), MappingApproach::Hprof, &cfg);
        (
            mapping.partition.assignment.clone(),
            mapping.achieved_mll_ms.to_bits(),
            mapping.evaluation.e.to_bits(),
            mapping.tmll_ms.map(f64::to_bits),
        )
    })
}

#[test]
fn hprof_winner_identical_across_thread_counts_single_as() {
    let scenario = tiny_single_as(11);
    let seq = hprof_at(&scenario, 1);
    for threads in [2, 4, 8] {
        assert_eq!(seq, hprof_at(&scenario, threads), "threads = {threads}");
    }
}

#[test]
fn hprof_winner_identical_across_thread_counts_multi_as() {
    let scenario = tiny_multi_as(23);
    let seq = hprof_at(&scenario, 1);
    for threads in [2, 4] {
        assert_eq!(seq, hprof_at(&scenario, threads), "threads = {threads}");
    }
}

#[test]
fn full_suite_rows_identical_across_thread_counts() {
    let scenario = tiny_single_as(7);
    let cfg = tiny_mapping_config(4);
    let model = ClusterModel::default();
    let approaches = [
        MappingApproach::Top2,
        MappingApproach::Prof2,
        MappingApproach::Htop,
        MappingApproach::Hprof,
    ];
    let run = |threads| {
        with_threads(threads, || {
            run_approaches(&scenario, &approaches, &cfg, &model, SimTime::from_secs(1))
                .into_iter()
                .map(|o| {
                    (
                        o.approach,
                        o.mapping.partition.assignment,
                        o.run_stats.total_events,
                        o.metrics.simulation_time_secs.to_bits(),
                        o.metrics.parallel_efficiency.to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        })
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn ospf_full_table_identical_across_thread_counts() {
    let scenario = tiny_single_as(3);
    let net = &scenario.net;
    let members: Vec<_> = net.nodes.iter().map(|n| n.id).collect();
    let table_at = |threads: usize| {
        with_threads(threads, || {
            let d = OspfDomain::new(net, members.clone(), CostMetric::Latency);
            d.warm_full_table();
            let mut table = Vec::new();
            for &s in &members {
                for &t in members.iter().step_by(7) {
                    table.push((d.next_hop(s, t), d.distance(s, t)));
                }
            }
            table
        })
    };
    let seq = table_at(1);
    for threads in [2, 4] {
        assert_eq!(seq, table_at(threads), "threads = {threads}");
    }
}

#[test]
fn multi_as_resolver_identical_across_thread_counts() {
    let cfg = MultiAsTopologyConfig::tiny();
    let m = generate_multi_as_network(&cfg);
    let hosts = m.network.host_ids();
    let routes_at = |threads: usize| {
        with_threads(threads, || {
            let r = MultiAsResolver::new(&m, CostMetric::Latency, &cfg);
            let mut routes = Vec::new();
            for &a in &hosts {
                for &b in hosts.iter().step_by(5) {
                    routes.push(massf_routing::PathResolver::route(&r, a, b));
                }
            }
            routes
        })
    };
    let seq = routes_at(1);
    for threads in [2, 4] {
        assert_eq!(seq, routes_at(threads), "threads = {threads}");
    }
}
