//! Property-based equivalence of cached and uncached route resolution:
//! over random topologies, random query sequences, random fault
//! scripts, and every cache-capacity regime (disabled, eviction-
//! thrashing capacity 1, and plenty), the deterministic route cache
//! must be a pure memoizer — same answers as the resolver it fronts,
//! query by query.

use massf_engine::SimTime;
use massf_netsim::{FaultScript, FaultState};
use massf_routing::{
    CachedResolver, CostMetric, FlatResolver, MultiAsResolver, PathResolver, RouteCache,
    RouteCacheStats,
};
use massf_topology::{
    generate_flat_network, generate_multi_as_network, FlatTopologyConfig, MultiAsTopologyConfig,
};
use proptest::prelude::*;

/// Capacity regimes: disabled, thrashing, small, comfortable.
fn capacity() -> impl Strategy<Value = usize> {
    (0usize..5).prop_map(|i| [0usize, 1, 2, 8, 128][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn cached_matches_uncached_on_random_flat_topologies(
        routers in 30usize..80,
        seed in 0u64..500,
        cap in capacity(),
        queries in proptest::collection::vec((0usize..64, 0usize..64), 1..120),
    ) {
        let net = generate_flat_network(&FlatTopologyConfig {
            routers,
            hosts: 12,
            metro_count: 5,
            seed,
            ..FlatTopologyConfig::default()
        });
        let hosts = net.host_ids();
        let uncached = FlatResolver::new(&net, CostMetric::Latency);
        let cached = CachedResolver::new(
            FlatResolver::new(&net, CostMetric::Latency),
            net.node_count(),
            cap,
        );
        for (i, j) in queries {
            let (s, d) = (hosts[i % hosts.len()], hosts[j % hosts.len()]);
            let want = uncached.route(s, d);
            prop_assert_eq!(
                want.clone(),
                cached.route_arc(s, d).map(|p| p.to_vec()),
                "cap {} diverged for {:?}→{:?}", cap, s, d
            );
            prop_assert_eq!(want, cached.route(s, d));
        }
        if cap == 0 {
            prop_assert_eq!(cached.stats(), RouteCacheStats::default());
        }
    }

    #[test]
    fn cached_matches_uncached_on_random_multi_as(
        as_count in 4usize..10,
        seed in 0u64..200,
        cap in capacity(),
        queries in proptest::collection::vec((0usize..64, 0usize..64), 1..80),
    ) {
        let cfg = MultiAsTopologyConfig {
            as_count,
            routers_per_as: 5,
            hosts: 20,
            seed,
            ..MultiAsTopologyConfig::default()
        };
        let m = generate_multi_as_network(&cfg);
        let hosts = m.network.host_ids();
        let uncached = MultiAsResolver::new(&m, CostMetric::Latency, &cfg);
        let cached = CachedResolver::new(
            MultiAsResolver::new(&m, CostMetric::Latency, &cfg),
            m.network.node_count(),
            cap,
        );
        for (i, j) in queries {
            let (s, d) = (hosts[i % hosts.len()], hosts[j % hosts.len()]);
            prop_assert_eq!(
                uncached.route(s, d),
                cached.route_arc(s, d).map(|p| p.to_vec()),
                "cap {} diverged for {:?}→{:?}", cap, s, d
            );
        }
    }

    /// Epoch-keyed caching across a random link-flap script: every
    /// `(epoch, src, dst)` answer must equal the epoch's own resolver,
    /// no matter how queries interleave across epochs or how small the
    /// cache is.
    #[test]
    fn cached_matches_uncached_across_fault_epochs(
        routers in 30usize..70,
        seed in 0u64..200,
        flaps in 1usize..5,
        cap in capacity(),
        queries in proptest::collection::vec((0usize..64, 0usize..64, 0usize..16), 1..100),
    ) {
        let net = generate_flat_network(&FlatTopologyConfig {
            routers,
            hosts: 12,
            metro_count: 5,
            seed,
            ..FlatTopologyConfig::default()
        });
        let hosts = net.host_ids();
        let script = FaultScript::random_link_flaps(
            &net,
            flaps,
            SimTime::from_secs(1),
            SimTime::from_secs(5),
            SimTime::from_secs(30),
            seed,
        ).expect("flap script over a generated network validates");
        let faults = FaultState::flat(&net, CostMetric::Latency, script)
            .expect("random_link_flaps scripts validate");
        let epochs = faults.epoch_count();
        let mut cache = RouteCache::new(net.node_count(), cap);
        let mut stats = RouteCacheStats::default();
        for (i, j, e) in queries {
            let (s, d) = (hosts[i % hosts.len()], hosts[j % hosts.len()]);
            let e = e % epochs;
            let r = faults.resolver_for_epoch(e);
            let got = cache.get_or_insert_with(
                &mut stats,
                u32::try_from(e).expect("epoch count is tiny"),
                s,
                d,
                || r.route_arc(s, d),
            );
            prop_assert_eq!(
                r.route(s, d),
                got.map(|p| p.to_vec()),
                "cap {} epoch {} diverged for {:?}→{:?}", cap, e, s, d
            );
        }
        if cap == 0 {
            prop_assert_eq!(stats, RouteCacheStats::default());
        } else {
            prop_assert_eq!(stats.hits + stats.misses > 0, true);
        }
    }
}
