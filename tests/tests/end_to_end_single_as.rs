//! End-to-end pipeline tests on the single-AS world (paper Section 4).

use massf_core::prelude::*;
use massf_integration::{tiny_mapping_config, tiny_single_as};

#[test]
fn every_mapping_approach_completes_the_pipeline() {
    let scenario = tiny_single_as(11);
    let cfg = tiny_mapping_config(4);
    let model = ClusterModel::default();
    let duration = SimTime::from_secs(2);
    let profile = run_profiling(&scenario, duration);

    for approach in [
        MappingApproach::Top,
        MappingApproach::Top2,
        MappingApproach::Prof,
        MappingApproach::Prof2,
        MappingApproach::Htop,
        MappingApproach::Hprof,
        MappingApproach::Random,
        MappingApproach::GreedyKCluster,
    ] {
        let out = run_mapping_experiment_with_profile(
            &scenario,
            approach,
            &cfg,
            &model,
            duration,
            approach.needs_profile().then(|| profile.clone()),
        );
        assert_eq!(
            out.mapping.partition.len(),
            scenario.net.node_count(),
            "{approach:?}"
        );
        assert_eq!(out.mapping.partition.used_parts(), 4, "{approach:?}");
        assert!(out.metrics.achieved_mll_ms > 0.0, "{approach:?}");
        assert!(out.metrics.simulation_time_secs > 0.0, "{approach:?}");
        assert!(
            out.metrics.parallel_efficiency > 0.0 && out.metrics.parallel_efficiency <= 1.0,
            "{approach:?}: PE {}",
            out.metrics.parallel_efficiency
        );
        assert!(out.run_stats.total_events > 500, "{approach:?}");
        // Traffic actually flowed.
        assert!(out.run_profile.completed_flows > 0, "{approach:?}");
    }
}

#[test]
fn hierarchical_mll_guarantee_holds_end_to_end() {
    let scenario = tiny_single_as(5);
    let cfg = tiny_mapping_config(4);
    let model = ClusterModel::default();
    let out = run_mapping_experiment(
        &scenario,
        MappingApproach::Htop,
        &cfg,
        &model,
        SimTime::from_secs(2),
    );
    let tmll = out.mapping.tmll_ms.expect("hierarchical approach");
    assert!(
        out.metrics.achieved_mll_ms >= tmll,
        "MLL {} < winning Tmll {}",
        out.metrics.achieved_mll_ms,
        tmll
    );
    // And no cross-partition link violates it, checked against the raw
    // topology.
    let assignment = &out.mapping.partition.assignment;
    for link in &scenario.net.links {
        if assignment[link.a.index()] != assignment[link.b.index()] {
            assert!(
                link.latency_ms >= tmll,
                "cut link with latency {} < Tmll {}",
                link.latency_ms,
                tmll
            );
        }
    }
}

#[test]
fn experiment_is_deterministic() {
    let run = || {
        let scenario = tiny_single_as(23);
        let cfg = tiny_mapping_config(3);
        let out = run_mapping_experiment(
            &scenario,
            MappingApproach::Hprof,
            &cfg,
            &ClusterModel::default(),
            SimTime::from_secs(2),
        );
        (
            out.mapping.partition.assignment.clone(),
            out.run_stats.total_events,
            out.metrics.load_imbalance.to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn profiled_weights_reflect_actual_traffic() {
    let scenario = tiny_single_as(31);
    let profile = run_profiling(&scenario, SimTime::from_secs(2));
    // Total node packets must be positive and concentrated: the busiest
    // node should be well above the median (heavy-tailed network load).
    let mut counts = profile.node_packets.clone();
    counts.sort_unstable();
    let median = counts[counts.len() / 2];
    let max = *counts.last().expect("profile covers some nodes");
    assert!(max > 0);
    assert!(
        max >= median.max(1) * 5,
        "expected skewed load: median {median}, max {max}"
    );
}

#[test]
fn single_partition_run_has_no_cut_and_full_efficiency_denominator() {
    let scenario = tiny_single_as(3);
    let cfg = tiny_mapping_config(1);
    let out = run_mapping_experiment(
        &scenario,
        MappingApproach::Top,
        &cfg,
        &ClusterModel::default(),
        SimTime::from_secs(1),
    );
    assert!(out.metrics.achieved_mll_ms.is_infinite());
    assert_eq!(out.mapping.partition.used_parts(), 1);
}
