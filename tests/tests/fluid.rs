//! Fluid background-traffic acceptance tests (ISSUE 9):
//!
//! 1. Mixed packet + fluid workloads run on the real multi-threaded
//!    conservative executor bit-identically to sequential execution
//!    (the window capped at `FLUID_CONTROL_DELAY`).
//! 2. The solver's max-min fairness invariants hold at arbitrary stop
//!    times under randomized demands.
//! 3. Faults interact with both fidelities: a flap on a shared
//!    bottleneck reroutes fluid flows and packet TCP together, and a
//!    severed path terminates fluid flows through the app callback.
//! 4. Snapshots taken with fluid flows live restore bit-identically —
//!    which also proves slab-slot recycling cannot affect results,
//!    since restore re-canonicalizes slot assignment while the
//!    uninterrupted run keeps its own recycling history.

use massf_engine::{run_sequential, SimTime};
use massf_netsim::{
    Agent, AppLogic, FaultScript, FaultState, FlowId, NetSimBuilder, NetWorld, NoApp, SharedNet,
    SimApi, SimOutput, DEFAULT_ROUTE_CACHE_CAPACITY, FLUID_CONTROL_DELAY, MAX_RETRIES,
};
use massf_routing::CostMetric;
use massf_snapshot::{scenario_fingerprint, ExecMode, Session};
use massf_topology::{
    generate_flat_network, AsId, FlatTopologyConfig, Network, NodeId, NodeKind, Point,
};
use proptest::prelude::*;

/// A small generated network carrying scripted TCP foreground traffic,
/// fluid background flows, and optional link flaps.
fn mixed_scenario(seed: u64, flaps: usize, tcp_flows: usize, fluid_flows: usize) -> NetSimBuilder {
    let mut cfg = FlatTopologyConfig::tiny();
    cfg.routers = 40;
    cfg.hosts = 16;
    cfg.metro_count = 2;
    cfg.seed = seed;
    let net = generate_flat_network(&cfg);
    let hosts = net.host_ids();
    let mut script = FaultScript::new();
    if flaps > 0 {
        script = FaultScript::random_link_flaps(
            &net,
            flaps,
            SimTime::from_ms(300),
            SimTime::from_ms(100),
            SimTime::from_ms(900),
            seed ^ 0xF00D,
        )
        .expect("tiny nets have router-router links to flap");
    }
    let faults = FaultState::flat(&net, CostMetric::Latency, script).expect("script validates");
    let mut builder = NetSimBuilder::new_with_faults(net, faults);
    let mut agent = Agent::new();
    for i in 0..tcp_flows {
        let src = hosts[i % hosts.len()];
        let dst = hosts[(i * 7 + 3) % hosts.len()];
        if src != dst {
            agent.inject_tcp(
                SimTime::from_ms(15 * i as u64),
                src,
                dst,
                30_000 + 9_000 * i as u64,
            );
        }
    }
    for i in 0..fluid_flows {
        let src = hosts[(i * 3 + 1) % hosts.len()];
        let dst = hosts[(i * 5 + 9) % hosts.len()];
        if src != dst {
            if i % 3 == 0 {
                // A third of the background is demand-capped.
                agent.inject_fluid_capped(
                    SimTime::from_ms(10 * i as u64),
                    src,
                    dst,
                    200_000 + 70_000 * i as u64,
                    2_000_000 + 500_000 * i as u64,
                );
            } else {
                agent.inject_fluid(
                    SimTime::from_ms(10 * i as u64),
                    src,
                    dst,
                    200_000 + 70_000 * i as u64,
                );
            }
        }
    }
    builder.add_agent(agent);
    builder
}

/// Parity-cut assignment and a barrier window safe for fluid traffic:
/// the cut MLL capped at [`FLUID_CONTROL_DELAY`] (fluid control events
/// promise exactly that much cross-LP lookahead).
fn fluid_parity_cut(shared: &SharedNet, parts: u32) -> (Vec<u32>, SimTime) {
    let n = shared.lp_count();
    // simlint: allow(cast-lossy) -- partition index over a tiny test net
    let assignment: Vec<u32> = (0..n).map(|i| (i as u32) % parts).collect();
    let mut mll = f64::INFINITY;
    for link in &shared.net.links {
        if assignment[link.a.index()] != assignment[link.b.index()] {
            mll = mll.min(link.latency_ms);
        }
    }
    let window = SimTime::from_ms_f64(mll).min(FLUID_CONTROL_DELAY);
    assert!(window > SimTime::ZERO, "parity cut must sever some link");
    (assignment, window)
}

fn session_for(builder: &NetSimBuilder) -> Session {
    Session::new(
        builder.shared(),
        builder.initial_events(),
        DEFAULT_ROUTE_CACHE_CAPACITY,
        MAX_RETRIES,
    )
}

fn fingerprint_for(builder: &NetSimBuilder) -> u64 {
    scenario_fingerprint(
        &builder.shared(),
        &builder.initial_events(),
        DEFAULT_ROUTE_CACHE_CAPACITY,
        MAX_RETRIES,
    )
}

fn assert_matches_reference(session: &Session, reference: &SimOutput<NoApp>) {
    assert_eq!(session.total_events(), reference.stats.total_events);
    assert_eq!(session.lp_events(), &reference.stats.lp_events[..]);
    assert_eq!(session.profile(), &reference.profile);
}

#[test]
fn mixed_fidelity_parallel_matches_sequential_bit_identically() {
    let builder = mixed_scenario(7, 2, 8, 12);
    let end = SimTime::from_secs(2);
    let seq = builder.run_sequential(NoApp, end);
    assert!(seq.profile.fluid.started > 0, "fluid traffic must flow");
    assert!(seq.profile.completed_flows > 0, "TCP traffic must flow");

    let (assignment, window) = fluid_parity_cut(&builder.shared(), 4);
    let par = builder.run_parallel(NoApp, end, window, &assignment, 4);
    assert_eq!(seq.stats.total_events, par.stats.total_events);
    assert_eq!(seq.stats.lp_events, par.stats.lp_events);
    assert_eq!(seq.profile, par.profile, "all counters, fluid included");
}

#[test]
fn fairness_invariants_hold_at_arbitrary_stop_times() {
    let builder = mixed_scenario(13, 0, 4, 10);
    let shared = builder.shared();
    let events = builder.initial_events();
    for end_ms in [40u64, 170, 600, 2_000] {
        let n = shared.lp_count();
        let mut world = NetWorld::new(shared.clone(), NoApp);
        run_sequential(&mut world, n, events.clone(), SimTime::from_ms(end_ms));
        world
            .check_fluid_invariants()
            .unwrap_or_else(|e| panic!("stop at {end_ms} ms: {e}"));
    }
}

/// ha — r0 — r1 — hb with a slower detour through r2; the 1 ms r0–r1
/// hop carries both fidelities until the flap kills it.
fn diamond() -> (Network, [NodeId; 5]) {
    let mut net = Network::new();
    let ha = net.add_node(NodeKind::Host, Point::new(0.0, 0.0), AsId(0));
    let r0 = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
    let r1 = net.add_node(NodeKind::Router, Point::new(2.0, 0.0), AsId(0));
    let r2 = net.add_node(NodeKind::Router, Point::new(1.5, 1.0), AsId(0));
    let hb = net.add_node(NodeKind::Host, Point::new(3.0, 0.0), AsId(0));
    let bw = 1e7; // 10 Mbit/s bottleneck
    net.add_link(ha, r0, bw, 0.1);
    net.add_link(r0, r1, bw, 1.0);
    net.add_link(r0, r2, bw, 3.0);
    net.add_link(r2, r1, bw, 3.0);
    net.add_link(r1, hb, bw, 0.1);
    (net, [ha, r0, r1, r2, hb])
}

#[test]
fn flap_on_shared_bottleneck_reroutes_both_fidelities() {
    let (net, [ha, _r0, _r1, r2, hb]) = diamond();
    let primary = net
        .links
        .iter()
        .find(|l| l.latency_ms == 1.0)
        .expect("primary hop")
        .id;
    let mut script = FaultScript::new();
    script.link_down(SimTime::from_ms(700), primary);
    script.link_up(SimTime::from_ms(1_500), primary);
    let faults = FaultState::flat(&net, CostMetric::Latency, script).expect("script validates");
    let mut builder = NetSimBuilder::new_with_faults(net, faults);
    let mut agent = Agent::new();
    // Foreground packet TCP and background fluid share the bottleneck.
    agent.inject_tcp(SimTime::ZERO, ha, hb, 500_000);
    agent.inject_fluid(SimTime::ZERO, ha, hb, 3_000_000);
    builder.add_agent(agent);

    let end = SimTime::from_secs(20);
    let out = builder.run_sequential(NoApp, end);
    assert_eq!(out.profile.fluid.started, 1);
    assert_eq!(out.profile.fluid.rerouted, 1, "flap must reroute the flow");
    assert_eq!(out.profile.fluid.aborted, 0, "the detour survives");
    assert_eq!(out.profile.fluid.completed, 1);
    assert_eq!(out.profile.completed_flows, 1, "TCP must also recover");
    // Both fidelities genuinely took the detour router.
    assert!(out.profile.node_packets[r2.index()] > 0);
    // The mixed run stays bit-identical in parallel through the flap.
    let (assignment, window) = fluid_parity_cut(&builder.shared(), 3);
    let par = builder.run_parallel(NoApp, end, window, &assignment, 3);
    assert_eq!(out.stats.total_events, par.stats.total_events);
    assert_eq!(out.profile, par.profile);
}

#[test]
fn severed_path_terminates_fluid_flows_through_the_callback() {
    // ha — r0 — r1 — hb chain: no detour exists once r0–r1 dies.
    let mut net = Network::new();
    let ha = net.add_node(NodeKind::Host, Point::new(0.0, 0.0), AsId(0));
    let r0 = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
    let r1 = net.add_node(NodeKind::Router, Point::new(2.0, 0.0), AsId(0));
    let hb = net.add_node(NodeKind::Host, Point::new(3.0, 0.0), AsId(0));
    net.add_link(ha, r0, 1e7, 0.1);
    let middle = net.add_link(r0, r1, 1e7, 1.0);
    net.add_link(r1, hb, 1e7, 0.1);
    let mut script = FaultScript::new();
    script.link_down(SimTime::from_ms(500), middle);
    let faults = FaultState::flat(&net, CostMetric::Latency, script).expect("script validates");
    let mut builder = NetSimBuilder::new_with_faults(net, faults);
    let mut agent = Agent::new();
    // Big enough that neither flow can finish before the cut.
    agent.inject_fluid(SimTime::ZERO, ha, hb, 100_000_000);
    agent.inject_fluid(SimTime::from_ms(100), hb, ha, 100_000_000);
    builder.add_agent(agent);

    #[derive(Clone, Default)]
    struct AbortSink(Vec<(NodeId, FlowId, NodeId)>);
    impl AppLogic for AbortSink {
        fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
        fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi<'_, '_>) {}
        fn on_fluid_aborted(
            &mut self,
            src: NodeId,
            flow: FlowId,
            dst: NodeId,
            _: &mut SimApi<'_, '_>,
        ) {
            self.0.push((src, flow, dst));
        }
    }

    let out = builder.run_sequential(AbortSink::default(), SimTime::from_secs(5));
    assert_eq!(out.profile.fluid.started, 2);
    assert_eq!(out.profile.fluid.aborted, 2, "no surviving path");
    assert_eq!(out.profile.fluid.completed, 0);
    let aborts = &out.apps[0].0;
    assert_eq!(aborts.len(), 2);
    let mut endpoints: Vec<(NodeId, NodeId)> = aborts.iter().map(|&(s, _, d)| (s, d)).collect();
    endpoints.sort();
    assert_eq!(endpoints, vec![(ha, hb), (hb, ha)]);
}

#[test]
fn snapshot_with_live_fluid_restores_bit_identically() {
    let builder = mixed_scenario(29, 1, 6, 10);
    let end = SimTime::from_secs(2);
    let reference = builder.run_sequential(NoApp, end);
    assert!(reference.profile.fluid.completed > 0);

    let mut session = session_for(&builder);
    session
        .run_until(SimTime::from_ms(700), &ExecMode::Sequential)
        .expect("prefix runs");
    assert!(
        !session.world_state().fluid.flows.is_empty(),
        "fluid flows must be live at the checkpoint for this test to bite"
    );
    let bytes = session.encode();
    let mut revived = Session::decode(builder.shared(), fingerprint_for(&builder), &bytes)
        .expect("own snapshot loads");
    // Snapshot → restore → snapshot is idempotent with fluid state
    // aboard (restore canonicalizes slab slot order; export must not
    // notice).
    assert_eq!(revived.encode(), bytes);
    revived
        .run_until(end, &ExecMode::Sequential)
        .expect("suffix runs");
    assert_matches_reference(&revived, &reference);
}

#[test]
fn executor_switches_with_fluid_are_invisible() {
    let builder = mixed_scenario(37, 2, 6, 8);
    let end = SimTime::from_secs(2);
    let reference = builder.run_sequential(NoApp, end);
    let (assignment, window) = fluid_parity_cut(&builder.shared(), 2);
    let parallel = ExecMode::Parallel { assignment, window };

    let mut session = session_for(&builder);
    session
        .run_until(SimTime::from_ms(600), &parallel)
        .expect("parallel prefix");
    session
        .run_until(SimTime::from_ms(1_300), &ExecMode::Sequential)
        .expect("sequential middle");
    session.run_until(end, &parallel).expect("parallel suffix");
    assert_matches_reference(&session, &reference);
}

#[test]
fn restores_do_not_disturb_live_fluid_flows() {
    // A LinkUp restore while fluid flows are mid-transfer is a no-op
    // for them (they keep valid paths), mirroring packet TCP, which
    // fails over only on loss.
    let (net, [ha, _, _, _, hb]) = diamond();
    let spare = net
        .links
        .iter()
        .find(|l| l.latency_ms == 3.0)
        .expect("detour hop")
        .id;
    let mut script = FaultScript::new();
    script.link_down(SimTime::from_ms(100), spare);
    script.link_up(SimTime::from_ms(400), spare);
    let faults = FaultState::flat(&net, CostMetric::Latency, script).expect("script validates");
    let mut builder = NetSimBuilder::new_with_faults(net, faults);
    let mut agent = Agent::new();
    agent.inject_fluid(SimTime::ZERO, ha, hb, 2_000_000);
    builder.add_agent(agent);
    let out = builder.run_sequential(NoApp, SimTime::from_secs(10));
    assert_eq!(out.profile.fluid.started, 1);
    assert_eq!(out.profile.fluid.rerouted, 0, "primary path never died");
    assert_eq!(out.profile.fluid.aborted, 0);
    assert_eq!(out.profile.fluid.completed, 1);
    assert_eq!(out.profile.fault_events, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random mixed workloads, flap counts, and thread counts: parallel
    /// execution of fluid + packet traffic is bit-identical to
    /// sequential, and the solver invariants hold at the end.
    #[test]
    fn random_mixed_workloads_are_bit_identical_and_fair(
        seed in 0u64..500,
        flaps in 0usize..3,
        fluids in 1usize..14,
        parts in 2u32..5,
    ) {
        let builder = mixed_scenario(seed, flaps, 5, fluids);
        let end = SimTime::from_ms(1_500);
        let seq = builder.run_sequential(NoApp, end);

        let (assignment, window) = fluid_parity_cut(&builder.shared(), parts);
        let par = builder.run_parallel(NoApp, end, window, &assignment, parts as usize);
        prop_assert_eq!(seq.stats.total_events, par.stats.total_events);
        prop_assert_eq!(&seq.stats.lp_events, &par.stats.lp_events);
        prop_assert_eq!(&seq.profile, &par.profile);

        // Fairness invariants on the sequential world at the stop time.
        let shared = builder.shared();
        let n = shared.lp_count();
        let mut world = NetWorld::new(shared, NoApp);
        run_sequential(&mut world, n, builder.initial_events(), end);
        prop_assert!(world.check_fluid_invariants().is_ok());
    }
}
