//! Hot-path correctness of the overhauled parallel executor: property
//! tests for bit-identity against the sequential reference over random
//! window sizes (divisors and non-divisors of the horizon), sparse and
//! bursty schedules, and random LP→partition assignments; plus the
//! empty-window fast-forward guarantees and the bounded-memory
//! regression for tiny-window/long-horizon runs.

use massf_engine::{
    run_parallel, run_sequential, run_sequential_windowed, Emitter, ExecutionStats, LpId, Model,
    SimTime, TRACE_BUCKETS,
};
use proptest::prelude::*;

/// Ring model keeping a full per-LP visit log — the strongest identity
/// witness: any difference in event order, timing, or payload at any LP
/// shows up. A token travels `burst` hops of `hop` each, then sleeps
/// `idle` before the next burst (`idle == ZERO` keeps the ring dense).
#[derive(Debug, Clone)]
struct LogRing {
    n: u32,
    hop: SimTime,
    idle: SimTime,
    burst: u32,
    log: Vec<Vec<(u64, u32)>>,
}

impl LogRing {
    fn new(n: u32, hop: SimTime, idle: SimTime, burst: u32) -> Self {
        LogRing {
            n,
            hop,
            idle,
            burst,
            log: vec![Vec::new(); n as usize],
        }
    }
}

impl Model for LogRing {
    type Event = u32; // hops left in the current burst

    fn handle(&mut self, target: LpId, now: SimTime, left: u32, out: &mut Emitter<'_, u32>) {
        self.log[target.index()].push((now.as_ns(), left));
        let next = LpId((target.0 + 1) % self.n);
        if left > 0 {
            out.emit(self.hop, next, left - 1);
        } else if self.idle > SimTime::ZERO {
            out.emit(self.idle, next, self.burst);
        } else {
            out.emit(self.hop, next, self.burst);
        }
    }
}

/// Merge shard logs: every LP is handled only on its home shard, so for
/// each LP exactly one shard may have entries.
fn merged_log(shards: &[LogRing]) -> Vec<Vec<(u64, u32)>> {
    let n = shards[0].log.len();
    (0..n)
        .map(|lp| {
            let mut owners = shards.iter().filter(|s| !s.log[lp].is_empty());
            let log = owners.next().map(|s| s.log[lp].clone()).unwrap_or_default();
            assert!(
                owners.next().is_none(),
                "LP {lp} was handled on more than one shard"
            );
            log
        })
        .collect()
}

/// Stats fields that must be bit-identical between the windowed
/// sequential reference and the parallel executor (everything except
/// `barrier_rounds` / `barrier_wait_us`, which are executor-specific).
fn assert_windowed_stats_match(seq: &ExecutionStats, par: &ExecutionStats) {
    assert_eq!(seq.total_events, par.total_events);
    assert_eq!(seq.lp_events, par.lp_events);
    assert_eq!(seq.bucket_critical, par.bucket_critical);
    assert_eq!(seq.bucket_totals, par.bucket_totals);
    assert_eq!(seq.partition_totals, par.partition_totals);
    assert_eq!(seq.coarse_trace, par.coarse_trace);
    assert_eq!(seq.windows_executed, par.windows_executed);
    assert_eq!(seq.windows_skipped, par.windows_skipped);
    assert_eq!(seq.window_count(), par.window_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The overhauled executor is bit-identical to `run_sequential`
    /// (visit logs) and to `run_sequential_windowed` (window/partition
    /// accounting) for any window ≤ the 1 ms hop lookahead — including
    /// windows that do not divide the horizon — any burst/idle shape,
    /// and any assignment of LPs to 1..=4 partitions.
    #[test]
    fn parallel_is_bit_identical_over_random_windows_and_schedules(
        n in 2u32..24,
        parts in 1usize..5,
        // 1 ns ..= 1 ms: anything above 1 ms would violate the hop
        // lookahead; 1 ms itself (the 0 case below) divides the 200 ms
        // horizon exactly, most smaller values do not.
        window_ns in 0u64..=1_000_000,
        idle_ms in 0u64..50,
        burst in 0u32..12,
        tokens in proptest::collection::vec((0u64..50, any::<u32>()), 1..6),
        assign_seed in any::<u64>(),
    ) {
        let hop = SimTime::from_ms(1);
        let idle = SimTime::from_ms(idle_ms);
        let end = SimTime::from_ms(200);
        let window = SimTime::from_ns(if window_ns == 0 { 1_000_000 } else { window_ns });
        let initial: Vec<(SimTime, LpId, u32)> = tokens
            .iter()
            .map(|&(t, v)| (SimTime::from_ms(t), LpId(v % n), v % (burst + 1)))
            .collect();
        // Random (not block) assignment; some partitions may own no LPs.
        let assignment: Vec<u32> = (0..n as u64)
            .map(|i| {
                let x = assign_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i.wrapping_mul(1442695040888963407));
                (x >> 33) as u32 % parts as u32
            })
            .collect();

        let mut seq = LogRing::new(n, hop, idle, burst);
        run_sequential(&mut seq, n as usize, initial.clone(), end);

        let mut seqw = LogRing::new(n, hop, idle, burst);
        let seqw_stats = run_sequential_windowed(
            &mut seqw, n as usize, initial.clone(), end, window, &assignment, parts,
        );
        prop_assert_eq!(&seqw.log, &seq.log);

        let shards: Vec<LogRing> = (0..parts)
            .map(|_| LogRing::new(n, hop, idle, burst))
            .collect();
        let (shards, par_stats) =
            run_parallel(shards, n as usize, &assignment, initial, end, window);

        prop_assert_eq!(&merged_log(&shards), &seq.log);
        assert_windowed_stats_match(&seqw_stats, &par_stats);
        prop_assert_eq!(par_stats.barrier_rounds, 1 + 2 * par_stats.windows_executed);
    }

    /// Fast-forward property: the executed barrier rounds track only the
    /// non-empty windows, so on any schedule the new executor performs
    /// `1 + 2·windows_executed` rounds where the pre-overhaul design
    /// paid `2·window_count()` — and skipping never perturbs the logs.
    #[test]
    fn fast_forward_shrinks_barrier_count_without_touching_logs(
        n in 2u32..16,
        parts in 2usize..5,
        idle_ms in 20u64..200,
        burst in 1u32..8,
    ) {
        let hop = SimTime::from_ms(1);
        let idle = SimTime::from_ms(idle_ms);
        let end = SimTime::from_secs(2);
        let window = hop;
        let initial = vec![(SimTime::ZERO, LpId(0), burst)];

        let mut seq = LogRing::new(n, hop, idle, burst);
        run_sequential(&mut seq, n as usize, initial.clone(), end);

        let assignment: Vec<u32> = (0..n).map(|i| i % parts as u32).collect();
        let shards: Vec<LogRing> = (0..parts)
            .map(|_| LogRing::new(n, hop, idle, burst))
            .collect();
        let (shards, stats) =
            run_parallel(shards, n as usize, &assignment, initial, end, window);

        prop_assert_eq!(&merged_log(&shards), &seq.log);
        prop_assert_eq!(stats.barrier_rounds, 1 + 2 * stats.windows_executed);
        prop_assert!(stats.windows_skipped > 0, "idle gaps must produce empty windows");
        let old_rounds = 2 * stats.window_count() as u64;
        prop_assert!(
            stats.barrier_rounds < old_rounds,
            "fast-forward must beat the fixed-stride barrier count ({} vs {})",
            stats.barrier_rounds,
            old_rounds
        );
    }
}

/// Regression for the O(n_windows) memory blowup: a 1 µs window over a
/// 100 s horizon means 10^8 nominal windows. The executor must neither
/// allocate per-window arrays nor iterate empty windows — the run holds
/// three events and finishes instantly with all stats vectors bounded by
/// `TRACE_BUCKETS`.
#[test]
fn tiny_window_long_horizon_stays_bounded() {
    let n = 4u32;
    let hop = SimTime::from_secs(30); // three hops inside the horizon
    let model = || LogRing::new(n, hop, SimTime::ZERO, 0);
    let end = SimTime::from_secs(100);
    let window = SimTime::from_us(1);
    let n_windows = 100_000_000usize;
    let initial = vec![(SimTime::ZERO, LpId(0), 0u32)];
    let assignment: Vec<u32> = (0..n).map(|i| i % 2).collect();

    let mut seq = model();
    let seq_stats = run_sequential_windowed(
        &mut seq,
        n as usize,
        initial.clone(),
        end,
        window,
        &assignment,
        2,
    );

    let (shards, stats) = run_parallel(
        vec![model(), model()],
        n as usize,
        &assignment,
        initial,
        end,
        window,
    );

    for s in [&seq_stats, &stats] {
        assert_eq!(s.window_count(), n_windows);
        assert_eq!(s.total_events, 4);
        assert_eq!(s.windows_executed, 4);
        assert_eq!(s.windows_skipped, n_windows as u64 - 4);
        assert!(s.bucket_critical.len() <= TRACE_BUCKETS);
        assert!(s.bucket_totals.len() <= TRACE_BUCKETS);
        assert!(s.coarse_trace.len() <= TRACE_BUCKETS);
    }
    assert_eq!(merged_log(&shards), seq.log);
    // 4 executed windows ⇒ 9 barrier rounds instead of 2·10^8.
    assert_eq!(stats.barrier_rounds, 9);
}
