//! Online dynamic re-partitioning acceptance tests (ISSUE 10):
//!
//! 1. A rebalancing session — epoch-cadenced imbalance checks, bounded
//!    LP migrations, barrier-window recomputation — is bit-identical to
//!    one sequential straight-through run, at any cadence, threshold,
//!    or partition count (proptest-pinned).
//! 2. A checkpoint taken mid-epoch captures the live (migrated)
//!    assignment and the partial epoch's load accumulator; restoring it
//!    replays the same decision trajectory.
//! 3. Skewed traffic actually triggers migrations (the machinery is
//!    exercised, not just bypassed), and plain `run_until` is refused
//!    on rebalancing sessions.

use massf_engine::{RebalanceConfig, SimTime};
use massf_netsim::{
    Agent, FaultScript, FaultState, NetSimBuilder, NoApp, SimOutput, DEFAULT_ROUTE_CACHE_CAPACITY,
    MAX_RETRIES,
};
use massf_routing::CostMetric;
use massf_snapshot::{rebalancing_fingerprint, RebalancePolicy, Session};
use massf_topology::{generate_flat_network, FlatTopologyConfig, MassfError};
use proptest::prelude::*;

/// A small generated network with optional fault flaps and TCP traffic
/// concentrated on the first `hot_fraction_permille` of the host list —
/// under a contiguous-block initial assignment that concentration lands
/// in one partition, which is exactly the skew the rebalancer exists to
/// fix.
fn skewed_scenario(seed: u64, flaps: usize, flows: usize, hot_permille: u64) -> NetSimBuilder {
    let mut cfg = FlatTopologyConfig::tiny();
    cfg.routers = 36;
    cfg.hosts = 18;
    cfg.metro_count = 2;
    cfg.seed = seed;
    let net = generate_flat_network(&cfg);
    let hosts = net.host_ids();
    let mut script = FaultScript::new();
    if flaps > 0 {
        script = FaultScript::random_link_flaps(
            &net,
            flaps,
            SimTime::from_ms(300),
            SimTime::from_ms(100),
            SimTime::from_ms(900),
            seed ^ 0xF00D,
        )
        .expect("tiny nets have router-router links to flap");
    }
    let faults = FaultState::flat(&net, CostMetric::Latency, script).expect("script validates");
    let mut builder = NetSimBuilder::new_with_faults(net, faults);
    let mut agent = Agent::new();
    let hot = ((hosts.len() as u64 * hot_permille / 1000).max(2) as usize).min(hosts.len());
    for i in 0..flows {
        let src = hosts[i % hot];
        let dst = hosts[(i * 7 + 3) % hot];
        if src != dst {
            agent.inject_tcp(
                SimTime::from_ms(15 * i as u64),
                src,
                dst,
                30_000 + 9_000 * i as u64,
            );
        }
    }
    builder.add_agent(agent);
    builder
}

/// Contiguous-block LP → partition map: nodes `[0, n/k)` to part 0 and
/// so on. Deliberately load-oblivious so skewed traffic overloads one
/// block.
fn block_assignment(n: usize, parts: u32) -> Vec<u32> {
    (0..n)
        .map(|i| ((i as u64 * parts as u64) / n as u64) as u32)
        .collect()
}

fn rebalancing_session(builder: &NetSimBuilder, policy: RebalancePolicy, parts: u32) -> Session {
    let assignment = block_assignment(builder.shared().lp_count(), parts);
    Session::new_rebalancing(
        builder.shared(),
        builder.initial_events(),
        DEFAULT_ROUTE_CACHE_CAPACITY,
        MAX_RETRIES,
        policy,
        assignment,
    )
    .expect("valid policy and assignment")
}

fn session_fingerprint(builder: &NetSimBuilder, policy: &RebalancePolicy, parts: u32) -> u64 {
    let base = massf_snapshot::scenario_fingerprint(
        &builder.shared(),
        &builder.initial_events(),
        DEFAULT_ROUTE_CACHE_CAPACITY,
        MAX_RETRIES,
    );
    let assignment = block_assignment(builder.shared().lp_count(), parts);
    rebalancing_fingerprint(base, policy, &assignment)
}

fn assert_matches_reference(session: &Session, reference: &SimOutput<NoApp>) {
    assert_eq!(session.total_events(), reference.stats.total_events);
    assert_eq!(session.lp_events(), &reference.stats.lp_events[..]);
    assert_eq!(session.profile(), &reference.profile);
}

fn policy(epoch_ms: u64, threshold: u64) -> RebalancePolicy {
    RebalancePolicy {
        cfg: RebalanceConfig {
            epoch: SimTime::from_ms(epoch_ms),
            threshold_permille: threshold,
            max_moves: 24,
        },
        ..RebalancePolicy::default()
    }
}

#[test]
fn rebalancing_run_is_bit_identical_and_actually_migrates() {
    let builder = skewed_scenario(5, 0, 14, 300);
    let end = SimTime::from_secs(2);
    let reference = builder.run_sequential(NoApp, end);

    let mut session = rebalancing_session(&builder, policy(250, 1050), 2);
    let outcome = session.run_rebalancing(end).expect("rebalancing run");
    assert_matches_reference(&session, &reference);
    assert!(
        outcome.rebalances > 0,
        "skewed traffic never triggered a migration: {outcome:?}"
    );
    let state = session.rebalance_state().expect("rebalancing session");
    assert_ne!(
        state.assignment,
        block_assignment(builder.shared().lp_count(), 2),
        "assignment unchanged despite {} migrations",
        outcome.migrations
    );
    assert_eq!(state.counters.migrations, outcome.migrations);
}

#[test]
fn mid_epoch_checkpoint_restores_the_migrated_assignment() {
    let builder = skewed_scenario(9, 1, 14, 300);
    let end = SimTime::from_secs(2);
    let reference = builder.run_sequential(NoApp, end);
    let pol = policy(250, 1050);

    let mut session = rebalancing_session(&builder, pol, 2);
    // 430 ms is strictly inside epoch [250, 500), while the injected
    // flows are still transferring: the snapshot must carry a nonzero
    // partial epoch-load accumulator.
    let mid = SimTime::from_ms(430);
    let prefix = session.run_rebalancing(mid).expect("prefix runs");
    assert!(prefix.rebalances > 0, "prefix saw no migration: {prefix:?}");

    let bytes = session.encode();
    let fp = session_fingerprint(&builder, &pol, 2);
    let mut revived = Session::decode(builder.shared(), fp, &bytes).expect("own snapshot loads");
    // The migrated assignment and the partial epoch's loads survive the
    // round trip exactly.
    assert_eq!(revived.rebalance_state(), session.rebalance_state());
    assert!(
        revived
            .rebalance_state()
            .expect("rebalancing snapshot")
            .epoch_loads
            .iter()
            .any(|&l| l > 0),
        "mid-epoch checkpoint lost the partial epoch accumulator"
    );
    assert_eq!(revived.encode(), bytes);

    revived.run_rebalancing(end).expect("suffix runs");
    assert_matches_reference(&revived, &reference);
    session.run_rebalancing(end).expect("suffix runs");
    assert_matches_reference(&session, &reference);
    assert_eq!(revived.encode(), session.encode());
}

#[test]
fn run_until_is_refused_on_rebalancing_sessions() {
    let builder = skewed_scenario(3, 0, 4, 1000);
    let mut session = rebalancing_session(&builder, policy(500, 1200), 2);
    let err = session
        .run_until(SimTime::from_ms(100), &massf_snapshot::ExecMode::Sequential)
        .expect_err("rebalancing sessions must advance via run_rebalancing");
    assert!(matches!(err, MassfError::InvalidConfig(_)), "{err}");
    // And the reverse: plain sessions refuse run_rebalancing.
    let mut plain = Session::new(
        builder.shared(),
        builder.initial_events(),
        DEFAULT_ROUTE_CACHE_CAPACITY,
        MAX_RETRIES,
    );
    let err = plain
        .run_rebalancing(SimTime::from_ms(100))
        .expect_err("plain sessions have no rebalance policy");
    assert!(matches!(err, MassfError::InvalidConfig(_)), "{err}");
}

#[test]
fn wrong_rebalance_knobs_change_the_fingerprint() {
    let builder = skewed_scenario(7, 0, 6, 500);
    let pol = policy(250, 1050);
    let mut session = rebalancing_session(&builder, pol, 2);
    session
        .run_rebalancing(SimTime::from_ms(400))
        .expect("prefix runs");
    let bytes = session.encode();
    // A session with a different threshold is a different scenario.
    let other = policy(250, 2000);
    let err = Session::decode(
        builder.shared(),
        session_fingerprint(&builder, &other, 2),
        &bytes,
    )
    .expect_err("different policy must be refused");
    assert!(matches!(err, MassfError::InvalidConfig(_)), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random topologies × flap scripts × cadences/thresholds × 1↔N
    /// partitions: the rebalancing trajectory — straight through or
    /// segmented at an arbitrary mid-run point with a snapshot
    /// round-trip — reproduces the sequential run bit for bit, and the
    /// checkpoint restores with the live assignment intact.
    #[test]
    fn rebalancing_bit_identity(
        seed in 0u64..1_000,
        flaps in 0usize..3,
        flows in 6usize..16,
        hot_idx in 0usize..3,
        epoch_idx in 0usize..3,
        threshold_idx in 0usize..3,
        parts in 1u32..4,
        split_ms in 300u64..1_700,
    ) {
        let hot = [250u64, 500, 1000][hot_idx];
        let epoch_ms = [170u64, 300, 700][epoch_idx];
        let threshold = [1000u64, 1150, 1600][threshold_idx];
        let builder = skewed_scenario(seed, flaps, flows, hot);
        let end = SimTime::from_secs(2);
        let reference = builder.run_sequential(NoApp, end);
        let pol = policy(epoch_ms, threshold);

        // Straight through.
        let mut straight = rebalancing_session(&builder, pol, parts);
        straight.run_rebalancing(end).expect("straight run");
        assert_matches_reference(&straight, &reference);

        // Segmented at an arbitrary point, through serialized bytes.
        let mut session = rebalancing_session(&builder, pol, parts);
        session.run_rebalancing(SimTime::from_ms(split_ms)).expect("prefix runs");
        let bytes = session.encode();
        let fp = session_fingerprint(&builder, &pol, parts);
        let mut revived = Session::decode(builder.shared(), fp, &bytes).expect("snapshot loads");
        prop_assert_eq!(revived.rebalance_state(), session.rebalance_state());
        revived.run_rebalancing(end).expect("suffix runs");
        assert_matches_reference(&revived, &reference);

        // All three trajectories left identical rebalancer state.
        prop_assert_eq!(revived.rebalance_state(), straight.rebalance_state());
        prop_assert_eq!(revived.encode(), straight.encode());
    }
}
