//! Cross-checks between independently computed quantities: the metrics
//! pipeline, the cluster model, and raw engine statistics must agree
//! with each other on the same run.

use massf_core::prelude::*;
use massf_integration::{tiny_mapping_config, tiny_single_as};

fn experiment() -> (MappingConfig, ExperimentOutput) {
    let scenario = tiny_single_as(61);
    let cfg = tiny_mapping_config(4);
    let out = run_mapping_experiment(
        &scenario,
        MappingApproach::Htop,
        &cfg,
        &ClusterModel::default(),
        SimTime::from_secs(2),
    );
    (cfg, out)
}

#[test]
fn engine_lp_counts_and_partition_totals_agree() {
    let (_, out) = experiment();
    let stats = &out.run_stats;
    // Summing LP events by partition must equal the windowed
    // partition totals — two independent accounting paths.
    let mut by_partition = vec![0u64; out.mapping.partition.k];
    for (lp, &c) in stats.lp_events.iter().enumerate() {
        by_partition[out.mapping.partition.assignment[lp] as usize] += c;
    }
    assert_eq!(by_partition, stats.partition_totals);
}

#[test]
fn netsim_packet_counts_bound_engine_events() {
    let (_, out) = experiment();
    // Every packet arrival is an engine event; timers and app events
    // add more, so: node_packets ≤ lp_events, per LP.
    for (lp, (&packets, &events)) in out
        .run_profile
        .node_packets
        .iter()
        .zip(&out.run_stats.lp_events)
        .enumerate()
    {
        assert!(
            packets <= events,
            "LP {lp}: {packets} packets > {events} events"
        );
    }
    // And globally packets dominate (packet-level simulation).
    assert!(out.run_profile.total_node_packets() * 2 > out.run_stats.total_events);
}

#[test]
fn predicted_time_bounds_are_sane() {
    let (cfg, out) = experiment();
    let model = ClusterModel::default();
    let stats = &out.run_stats;
    let t = model.predicted_time_secs(stats, cfg.engines);
    let tseq = model.sequential_time_secs(stats);
    // Parallel time can never beat Tseq / N, and never exceeds Tseq
    // plus total synchronization.
    let sync_total = stats.window_count() as f64 * model.sync.cost_us(cfg.engines) * 1e-6;
    assert!(t >= tseq / cfg.engines as f64 - 1e-9);
    assert!(t <= tseq + sync_total + 1e-9);
    // PE = Tseq/(N·T) in [0, 1].
    let pe = model.parallel_efficiency(stats, cfg.engines);
    assert!((0.0..=1.0 + 1e-9).contains(&pe));
}

#[test]
fn evaluation_ec_tracks_measured_imbalance_direction() {
    // The static Ec estimate and the measured load imbalance must agree
    // at the extremes: compare a good mapping against random.
    let scenario = tiny_single_as(67);
    let cfg = tiny_mapping_config(4);
    let model = ClusterModel::default();
    let good = run_mapping_experiment(
        &scenario,
        MappingApproach::Htop,
        &cfg,
        &model,
        SimTime::from_secs(2),
    );
    let bad = run_mapping_experiment(
        &scenario,
        MappingApproach::Random,
        &cfg,
        &model,
        SimTime::from_secs(2),
    );
    // Random cuts everything: far smaller MLL.
    assert!(good.metrics.achieved_mll_ms > bad.metrics.achieved_mll_ms * 3.0);
    // And the static efficiency score must rank them the same way.
    assert!(good.mapping.evaluation.e > bad.mapping.evaluation.e);
}
