//! Compressed sparse row weighted graph for partitioning.
//!
//! Vertex weights model estimated simulation load (bandwidth for TOP,
//! profiled event rate for PROF); edge weights model the reluctance to
//! cut an edge (derived from link latency and/or profiled traffic).

use crate::unionfind::UnionFind;

/// An undirected graph in CSR form with `u64` vertex and edge weights.
///
/// Parallel edges passed to [`WeightedGraph::from_edges`] are merged by
/// summing their weights; self-loops are dropped (they cannot be cut).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    /// CSR row offsets, length `n + 1`.
    xadj: Vec<u32>,
    /// Neighbor vertex ids, length `2·m`.
    adjncy: Vec<u32>,
    /// Edge weights parallel to `adjncy`.
    adjwgt: Vec<u64>,
    /// Vertex weights, length `n`.
    vwgt: Vec<u64>,
}

impl WeightedGraph {
    /// Build from an edge list. `edges` are `(u, v, weight)` with
    /// `u, v < vertex_weights.len()`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints.
    pub fn from_edges(vertex_weights: Vec<u64>, edges: &[(u32, u32, u64)]) -> Self {
        let n = vertex_weights.len();
        // Merge duplicates via a sorted edge list keyed on (min, max).
        let mut canon: Vec<(u32, u32, u64)> = edges
            .iter()
            .filter(|&&(u, v, _)| u != v)
            .map(|&(u, v, w)| {
                assert!(
                    (u as usize) < n && (v as usize) < n,
                    "edge endpoint out of range"
                );
                (u.min(v), u.max(v), w)
            })
            .collect();
        canon.sort_unstable_by_key(|&(u, v, _)| (u, v));
        canon.dedup_by(|next, acc| {
            if next.0 == acc.0 && next.1 == acc.1 {
                acc.2 += next.2;
                true
            } else {
                false
            }
        });

        let mut degree = vec![0u32; n];
        for &(u, v, _) in &canon {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = vec![0u32; n + 1];
        for i in 0..n {
            xadj[i + 1] = xadj[i] + degree[i];
        }
        let m2 = xadj[n] as usize;
        let mut adjncy = vec![0u32; m2];
        let mut adjwgt = vec![0u64; m2];
        let mut cursor = xadj[..n].to_vec();
        for &(u, v, w) in &canon {
            let cu = cursor[u as usize];
            adjncy[cu as usize] = v;
            adjwgt[cu as usize] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize];
            adjncy[cv as usize] = u;
            adjwgt[cv as usize] = w;
            cursor[v as usize] += 1;
        }
        WeightedGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt: vertex_weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: usize) -> u64 {
        self.vwgt[v]
    }

    /// All vertex weights.
    #[inline]
    pub fn vertex_weights(&self) -> &[u64] {
        &self.vwgt
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Neighbors of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
        let lo = self.xadj[v] as usize;
        let hi = self.xadj[v + 1] as usize;
        self.adjncy[lo..hi]
            .iter()
            .zip(&self.adjwgt[lo..hi])
            .map(|(&n, &w)| (n as usize, w))
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.xadj[v + 1] - self.xadj[v]) as usize
    }

    /// Sum of weights of edges incident to `v`.
    pub fn incident_weight(&self, v: usize) -> u64 {
        let lo = self.xadj[v] as usize;
        let hi = self.xadj[v + 1] as usize;
        self.adjwgt[lo..hi].iter().sum()
    }

    /// Total weight of edges cut by `assignment` (vertex → part).
    pub fn edge_cut(&self, assignment: &[u32]) -> u64 {
        debug_assert_eq!(assignment.len(), self.vertex_count());
        let mut cut = 0u64;
        for v in 0..self.vertex_count() {
            for (u, w) in self.neighbors(v) {
                if u > v && assignment[u] != assignment[v] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Is the graph connected? Empty graphs count as connected.
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n == 0 {
            return true;
        }
        let mut uf = UnionFind::new(n);
        for v in 0..n {
            for (u, _) in self.neighbors(v) {
                uf.union(v, u);
            }
        }
        uf.component_count() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-cycle with unit weights plus a heavy chord 0-2.
    fn square_with_chord() -> WeightedGraph {
        WeightedGraph::from_edges(
            vec![1, 1, 1, 1],
            &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 10)],
        )
    }

    #[test]
    fn counts_and_degrees() {
        let g = square_with_chord();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 2);
    }

    #[test]
    fn neighbors_symmetric() {
        let g = square_with_chord();
        for v in 0..g.vertex_count() {
            for (u, w) in g.neighbors(v) {
                assert!(
                    g.neighbors(u).any(|(x, wx)| x == v && wx == w),
                    "asymmetric edge {v}-{u}"
                );
            }
        }
    }

    #[test]
    fn parallel_edges_merge() {
        let g = WeightedGraph::from_edges(vec![1, 1], &[(0, 1, 3), (1, 0, 4)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 7)));
    }

    #[test]
    fn self_loops_dropped() {
        let g = WeightedGraph::from_edges(vec![1, 1], &[(0, 0, 5), (0, 1, 2)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn edge_cut_counts_cross_edges_once() {
        let g = square_with_chord();
        // Parts {0,1} vs {2,3}: cut edges 1-2 (1), 3-0 (1), 0-2 (10) = 12.
        assert_eq!(g.edge_cut(&[0, 0, 1, 1]), 12);
        // Parts {0,2} vs {1,3}: cut 0-1,1-2,2-3,3-0 = 4.
        assert_eq!(g.edge_cut(&[0, 1, 0, 1]), 4);
        // Single part: no cut.
        assert_eq!(g.edge_cut(&[0, 0, 0, 0]), 0);
    }

    #[test]
    fn incident_weight_sums() {
        let g = square_with_chord();
        assert_eq!(g.incident_weight(0), 1 + 1 + 10);
        assert_eq!(g.incident_weight(3), 2);
    }

    #[test]
    fn connectivity() {
        assert!(square_with_chord().is_connected());
        let g = WeightedGraph::from_edges(vec![1, 1, 1], &[(0, 1, 1)]);
        assert!(!g.is_connected());
        let empty = WeightedGraph::from_edges(vec![], &[]);
        assert!(empty.is_connected());
    }

    #[test]
    fn total_vertex_weight() {
        let g = WeightedGraph::from_edges(vec![2, 3, 5], &[(0, 1, 1), (1, 2, 1)]);
        assert_eq!(g.total_vertex_weight(), 10);
    }
}
