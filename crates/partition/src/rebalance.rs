//! Incremental, deterministic re-partitioning of an existing assignment.
//!
//! Unlike [`crate::refine`], which minimizes edge-cut under a balance
//! *constraint* during multilevel partitioning, this module perturbs a
//! **live** assignment against a single global cost function combining
//! measured per-vertex load with the cut already modeled by the graph's
//! edge weights (Kurve-style local moves iterated greedily). It is
//! RNG-free and integer-only: the same graph, loads, and parameters
//! always produce the same move list, so an online rebalancer built on
//! it stays a pure function of simulated state.
//!
//! Cost model, all integer arithmetic (`i128` intermediates):
//!
//! ```text
//! cost = load_weight · Σ_p L_p²  +  cut_weight · unit · cut
//! ```
//!
//! where `L_p` is the measured load of part `p` and
//! `unit = max(1, 2·total_load/k)` scales one cut-weight unit to the
//! magnitude of a squared-load delta, making the two terms
//! commensurate. Moving vertex `v` (load `l_v`) from part `s` to `t`
//! changes the terms by
//!
//! ```text
//! Δ(ΣL²) = 2·l_v·(l_v + L_t − L_s)
//! Δcut   = conn(v, s) − conn(v, t)
//! ```
//!
//! Each iteration scans every vertex × candidate part, applies the
//! single best strictly-improving move (ties: lowest vertex, then
//! lowest target part), and stops at `max_moves` or equilibrium.
//! Strict improvement guarantees termination; bounded moves cap the
//! migration cost a caller pays per invocation.

use crate::graph::WeightedGraph;

/// Parameters for [`rebalance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceParams {
    /// Maximum number of vertex moves returned per invocation.
    pub max_moves: usize,
    /// Weight on the load-imbalance term (`Σ_p L_p²`).
    pub load_weight: u64,
    /// Weight on the edge-cut term (scaled by `unit`, see module docs).
    pub cut_weight: u64,
}

impl Default for RebalanceParams {
    fn default() -> Self {
        RebalanceParams {
            max_moves: 64,
            load_weight: 4,
            cut_weight: 1,
        }
    }
}

/// One vertex migration proposed by [`rebalance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    pub vertex: u32,
    pub from: u32,
    pub to: u32,
}

/// Compute a bounded, strictly cost-improving sequence of single-vertex
/// moves perturbing `assignment` toward balance under `loads`.
///
/// `loads[v]` is the measured load of vertex `v` (e.g. events executed
/// over the last epoch); `assignment` is the current part per vertex
/// (all `< k`). The moves are returned in application order and are
/// **not** applied; use [`apply_moves`]. A part is never emptied, and a
/// move to a part the vertex has no edge into is only considered for
/// the globally lightest part (so pure load concentration can still
/// drain even when the overloaded region is internally connected).
pub fn rebalance(
    g: &WeightedGraph,
    k: usize,
    assignment: &[u32],
    loads: &[u64],
    params: &RebalanceParams,
) -> Vec<Move> {
    let n = g.vertex_count();
    assert_eq!(assignment.len(), n, "assignment length");
    assert_eq!(loads.len(), n, "loads length");
    let mut moves = Vec::new();
    if n == 0 || k <= 1 || params.max_moves == 0 {
        return moves;
    }

    let mut part_load = vec![0u64; k];
    let mut part_count = vec![0usize; k];
    for (v, &p) in assignment.iter().enumerate() {
        part_load[p as usize] += loads[v];
        part_count[p as usize] += 1;
    }
    let total_load: u64 = part_load.iter().sum();
    let unit = (2 * total_load / k as u64).max(1) as i128;
    let lw = params.load_weight as i128;
    let cw = params.cut_weight as i128;

    let mut current: Vec<u32> = assignment.to_vec();
    // Scratch: connection weight of the scanned vertex to each part.
    let mut conn = vec![0u64; k];
    let mut touched: Vec<u32> = Vec::new();

    for _ in 0..params.max_moves {
        // Lightest part is always a candidate target, even with no edge
        // into it (lowest index on ties — deterministic).
        let lightest = part_load
            .iter()
            .enumerate()
            .min_by_key(|&(p, &l)| (l, p))
            .map(|(p, _)| p as u32)
            .unwrap_or(0);

        // (Δcost, vertex, target) — strictly negative Δcost only; ties
        // resolved by lowest vertex then lowest target via scan order.
        let mut best: Option<(i128, u32, u32)> = None;
        for v in 0..n {
            let own = current[v] as usize;
            if part_count[own] <= 1 {
                continue; // never empty a part
            }
            touched.clear();
            for (u, w) in g.neighbors(v) {
                let p = current[u] as usize;
                if conn[p] == 0 {
                    touched.push(p as u32);
                }
                conn[p] += w;
            }
            if conn[lightest as usize] == 0 && lightest as usize != own {
                touched.push(lightest);
            }
            let lv = loads[v] as i128;
            let own_conn = conn[own] as i128;
            for &t32 in &touched {
                let t = t32 as usize;
                if t == own {
                    continue;
                }
                let d_load = 2 * lv * (lv + part_load[t] as i128 - part_load[own] as i128);
                let d_cut = own_conn - conn[t] as i128;
                let d_cost = lw * d_load + cw * unit * d_cut;
                if d_cost < 0 {
                    let better = match best {
                        None => true,
                        Some((bc, bv, bt)) => {
                            d_cost < bc
                                || (d_cost == bc
                                    && ((v as u32) < bv || (v as u32 == bv && t32 < bt)))
                        }
                    };
                    if better {
                        best = Some((d_cost, v as u32, t32));
                    }
                }
            }
            for &p in &touched {
                conn[p as usize] = 0;
            }
        }

        let Some((_, v32, t32)) = best else { break };
        let v = v32 as usize;
        let own = current[v] as usize;
        let t = t32 as usize;
        current[v] = t32;
        part_load[own] -= loads[v];
        part_load[t] += loads[v];
        part_count[own] -= 1;
        part_count[t] += 1;
        moves.push(Move {
            vertex: v32,
            from: own as u32,
            to: t32,
        });
    }
    moves
}

/// Apply a move list produced by [`rebalance`] to an assignment.
pub fn apply_moves(assignment: &mut [u32], moves: &[Move]) {
    for m in moves {
        debug_assert_eq!(assignment[m.vertex as usize], m.from, "stale move list");
        assignment[m.vertex as usize] = m.to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path of `n` unit-weight vertices with unit edges.
    fn path(n: u32) -> WeightedGraph {
        let edges: Vec<(u32, u32, u64)> = (1..n).map(|i| (i - 1, i, 1)).collect();
        WeightedGraph::from_edges(vec![1; n as usize], &edges)
    }

    fn max_mean_permille(loads: &[u64], assignment: &[u32], k: usize) -> u64 {
        let mut part = vec![0u64; k];
        for (v, &p) in assignment.iter().enumerate() {
            part[p as usize] += loads[v];
        }
        let total: u64 = part.iter().sum();
        if total == 0 {
            return 1000;
        }
        part.iter().max().copied().unwrap_or(0) * 1000 * k as u64 / total
    }

    #[test]
    fn drains_a_hot_part() {
        // All load on part 0's vertices; rebalance should shed enough to
        // cut max/mean imbalance sharply.
        let g = path(12);
        let assignment = vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1];
        let loads = vec![100, 100, 100, 100, 100, 100, 1, 1, 1, 1, 1, 1];
        let before = max_mean_permille(&loads, &assignment, 2);
        let moves = rebalance(&g, 2, &assignment, &loads, &RebalanceParams::default());
        assert!(!moves.is_empty());
        let mut after = assignment.clone();
        apply_moves(&mut after, &moves);
        let imb = max_mean_permille(&loads, &after, 2);
        assert!(imb < before, "no improvement: {imb} vs {before}");
        assert!(imb <= 1300, "still skewed: {imb} ({after:?})");
    }

    #[test]
    fn respects_max_moves() {
        let g = path(12);
        let assignment = vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1];
        let loads = vec![100, 100, 100, 100, 100, 100, 1, 1, 1, 1, 1, 1];
        let params = RebalanceParams {
            max_moves: 2,
            ..RebalanceParams::default()
        };
        let moves = rebalance(&g, 2, &assignment, &loads, &params);
        assert!(moves.len() <= 2);
    }

    #[test]
    fn balanced_input_yields_no_moves() {
        let g = path(12);
        let assignment = vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1];
        let loads = vec![10; 12];
        let moves = rebalance(&g, 2, &assignment, &loads, &RebalanceParams::default());
        assert!(moves.is_empty(), "{moves:?}");
    }

    #[test]
    fn never_empties_a_part() {
        let g = path(6);
        // Part 1 holds a single idle vertex; all load in part 0. No move
        // may take vertex 5 out of part 1.
        let assignment = vec![0, 0, 0, 0, 0, 1];
        let loads = vec![50, 50, 50, 50, 50, 0];
        let moves = rebalance(&g, 2, &assignment, &loads, &RebalanceParams::default());
        let mut after = assignment.clone();
        apply_moves(&mut after, &moves);
        for k in 0..2u32 {
            assert!(after.contains(&k), "part {k} emptied: {after:?}");
        }
    }

    #[test]
    fn cut_weight_steers_target_choice() {
        // Vertex 0 is hot and sits in part 0 alongside vertex 1. It has a
        // heavy edge into part 1 and none into part 2; part 2 is slightly
        // lighter. With the cut term dominating, the rebalancer must pick
        // the adjacent part 1 over the lighter non-adjacent part 2.
        let g =
            WeightedGraph::from_edges(vec![1; 5], &[(0, 1, 1), (0, 2, 40), (2, 3, 1), (3, 4, 1)]);
        let assignment = vec![0, 0, 1, 2, 2];
        let loads = vec![40, 60, 10, 4, 4];
        let params = RebalanceParams {
            max_moves: 1,
            load_weight: 1,
            cut_weight: 8,
        };
        let moves = rebalance(&g, 3, &assignment, &loads, &params);
        assert_eq!(moves.len(), 1);
        assert_eq!(
            moves[0],
            Move {
                vertex: 0,
                from: 0,
                to: 1
            }
        );
        // And with the cut term silenced the lighter part 2 wins instead.
        let params = RebalanceParams {
            max_moves: 1,
            load_weight: 1,
            cut_weight: 0,
        };
        let moves = rebalance(&g, 3, &assignment, &loads, &params);
        assert_eq!(moves.len(), 1);
        assert_eq!(
            moves[0],
            Move {
                vertex: 0,
                from: 0,
                to: 2
            }
        );
    }

    #[test]
    fn non_adjacent_lightest_part_is_reachable() {
        // Two disconnected hot vertices assigned to part 0, an idle part 1
        // with no edges from part 0 at all. Load must still drain.
        let g = WeightedGraph::from_edges(vec![1; 4], &[(0, 1, 5), (2, 3, 5)]);
        let assignment = vec![0, 0, 1, 1];
        let loads = vec![80, 80, 1, 1];
        let moves = rebalance(&g, 2, &assignment, &loads, &RebalanceParams::default());
        assert!(!moves.is_empty(), "load never drained to non-adjacent part");
        let mut after = assignment.clone();
        apply_moves(&mut after, &moves);
        assert!(max_mean_permille(&loads, &after, 2) < 1900);
    }

    #[test]
    fn single_part_and_empty_inputs_are_noops() {
        let g = path(4);
        assert!(rebalance(
            &g,
            1,
            &[0, 0, 0, 0],
            &[9, 9, 9, 9],
            &RebalanceParams::default()
        )
        .is_empty());
        let empty = WeightedGraph::from_edges(vec![], &[]);
        assert!(rebalance(&empty, 3, &[], &[], &RebalanceParams::default()).is_empty());
    }

    #[test]
    fn deterministic_across_invocations() {
        let g = path(16);
        let assignment: Vec<u32> = (0..16).map(|v| v % 3).collect();
        let loads: Vec<u64> = (0..16u64).map(|v| v * v % 97).collect();
        let a = rebalance(&g, 3, &assignment, &loads, &RebalanceParams::default());
        let b = rebalance(&g, 3, &assignment, &loads, &RebalanceParams::default());
        assert_eq!(a, b);
    }
}
