//! Baseline partitioners from the paper's related-work comparison
//! (Section 6): random assignment and the ModelNet greedy k-cluster
//! algorithm ("for k nodes in the core set, randomly select k nodes in
//! the virtual topology and greedily select links from the current
//! connected component in a round-robin fashion").

use crate::graph::WeightedGraph;
use crate::initial::repair_empty_parts;
use crate::partition::Partition;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Uniform random assignment of vertices to parts.
pub fn random_partition(n: usize, k: usize, seed: u64) -> Partition {
    assert!(k >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let assignment = (0..n).map(|_| rng.gen_range(0..k) as u32).collect();
    Partition::new(assignment, k)
}

/// ModelNet-style greedy k-cluster: k random seed vertices; clusters take
/// turns absorbing one frontier vertex reachable from their current
/// component. Vertices unreachable from any seed (disconnected graphs)
/// are appended round-robin.
pub fn greedy_kcluster(g: &WeightedGraph, k: usize, seed: u64) -> Partition {
    let n = g.vertex_count();
    assert!(k >= 1);
    if k == 1 || n == 0 {
        return Partition::new(vec![0; n], k);
    }
    if k >= n {
        return Partition::new((0..n as u32).collect(), k);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    const FREE: u32 = u32::MAX;
    let mut assignment = vec![FREE; n];

    // Distinct random seeds.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.shuffle(&mut rng);
    seeds.truncate(k);
    let mut frontier: Vec<VecDeque<usize>> = vec![VecDeque::new(); k];
    for (p, &s) in seeds.iter().enumerate() {
        assignment[s] = p as u32;
        frontier[p].push_back(s);
    }

    // Round-robin greedy growth.
    let mut assigned = k;
    let mut active = true;
    while assigned < n && active {
        active = false;
        for (p, fr) in frontier.iter_mut().enumerate() {
            // Pop until we find a vertex with a free neighbor.
            while let Some(&v) = fr.front() {
                let next = g
                    .neighbors(v)
                    .map(|(u, _)| u)
                    .find(|&u| assignment[u] == FREE);
                match next {
                    Some(u) => {
                        assignment[u] = p as u32;
                        fr.push_back(u);
                        assigned += 1;
                        active = true;
                        break;
                    }
                    None => {
                        fr.pop_front();
                    }
                }
            }
        }
    }
    // Unreachable leftovers: round-robin.
    let mut next_part = 0u32;
    for a in assignment.iter_mut() {
        if *a == FREE {
            *a = next_part;
            next_part = (next_part + 1) % k as u32;
        }
    }
    repair_empty_parts(g, k, &mut assignment);
    Partition::new(assignment, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(nx: usize, ny: usize) -> WeightedGraph {
        let id = |x: usize, y: usize| (y * nx + x) as u32;
        let mut edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((id(x, y), id(x + 1, y), 1));
                }
                if y + 1 < ny {
                    edges.push((id(x, y), id(x, y + 1), 1));
                }
            }
        }
        WeightedGraph::from_edges(vec![1; nx * ny], &edges)
    }

    #[test]
    fn random_partition_covers_all_parts_eventually() {
        let p = random_partition(500, 8, 1);
        assert_eq!(p.used_parts(), 8);
        assert_eq!(p.len(), 500);
    }

    #[test]
    fn random_partition_deterministic() {
        assert_eq!(
            random_partition(100, 4, 9).assignment,
            random_partition(100, 4, 9).assignment
        );
    }

    #[test]
    fn kcluster_assigns_everything() {
        let g = grid(10, 10);
        let p = greedy_kcluster(&g, 5, 2);
        assert_eq!(p.len(), 100);
        assert_eq!(p.used_parts(), 5);
    }

    #[test]
    fn kcluster_clusters_are_connected_on_connected_graph() {
        let g = grid(8, 8);
        let p = greedy_kcluster(&g, 4, 11);
        // BFS within each part must reach all its members.
        for part in 0..4u32 {
            let members = p.members(part);
            let mut seen = vec![false; g.vertex_count()];
            let mut queue = VecDeque::new();
            seen[members[0]] = true;
            queue.push_back(members[0]);
            let mut reached = 1;
            while let Some(v) = queue.pop_front() {
                for (u, _) in g.neighbors(v) {
                    if p.assignment[u] == part && !seen[u] {
                        seen[u] = true;
                        reached += 1;
                        queue.push_back(u);
                    }
                }
            }
            assert_eq!(reached, members.len(), "part {part} disconnected");
        }
    }

    #[test]
    fn kcluster_counts_are_roughly_even() {
        let g = grid(12, 12);
        let p = greedy_kcluster(&g, 4, 3);
        for part in 0..4u32 {
            let c = p.members(part).len();
            assert!((18..=54).contains(&c), "part {part} has {c} vertices");
        }
    }

    #[test]
    fn kcluster_handles_disconnected_graph() {
        let g = WeightedGraph::from_edges(vec![1; 6], &[(0, 1, 1), (2, 3, 1)]);
        let p = greedy_kcluster(&g, 2, 5);
        assert_eq!(p.len(), 6);
        assert!(p.assignment.iter().all(|&a| a < 2));
    }

    #[test]
    fn kcluster_edge_cases() {
        let g = grid(3, 3);
        assert!(greedy_kcluster(&g, 1, 0).assignment.iter().all(|&p| p == 0));
        assert_eq!(greedy_kcluster(&g, 9, 0).used_parts(), 9);
    }
}
