//! # massf-partition
//!
//! Graph partitioning for the `massf-rs` reproduction of *Realistic
//! Large-Scale Online Network Simulation* (Liu & Chien, SC 2004).
//!
//! The paper maps virtual network nodes onto simulation-engine nodes by
//! partitioning a weighted graph with METIS. This crate reimplements that
//! substrate from scratch:
//!
//! * [`WeightedGraph`] — a compact CSR graph with vertex and edge weights.
//! * [`metis_kway`] — a multilevel k-way partitioner in the METIS family:
//!   heavy-edge-matching coarsening, greedy-graph-growing initial
//!   partitioning, and KL/FM boundary refinement projected back through
//!   the levels.
//! * [`recursive_bisection`] — the classic multilevel recursive-bisection
//!   alternative.
//! * [`baselines`] — the comparison partitioners from the paper's related
//!   work: random assignment and the ModelNet greedy k-cluster algorithm.
//! * [`rebalance`] — RNG-free incremental re-partitioning: bounded
//!   Kurve-style local moves that perturb an existing assignment against
//!   a combined load²+cut cost, for online load balancing mid-run.
//! * [`UnionFind`] — used here for connectivity and exported for the
//!   latency-threshold clustering of the hierarchical (HPROF) mapper.
//!
//! All partitioners are deterministic given their seed.

#![forbid(unsafe_code)]

pub mod baselines;
pub mod coarsen;
pub mod graph;
pub mod initial;
pub mod kway;
pub mod partition;
pub mod rebalance;
pub mod refine;
pub mod unionfind;

pub use baselines::{greedy_kcluster, random_partition};
pub use graph::WeightedGraph;
pub use kway::{metis_kway, recursive_bisection, KwayConfig};
pub use partition::Partition;
pub use rebalance::{apply_moves, rebalance, Move, RebalanceParams};
pub use unionfind::UnionFind;
