//! Heavy-edge-matching coarsening (the METIS "HEM" scheme).
//!
//! Each coarsening step computes a matching that prefers the heaviest
//! incident edge of every vertex, then collapses matched pairs into
//! coarse vertices. Heavy edges disappear inside coarse vertices, so the
//! edge-cut of any partition of the coarse graph equals the cut of the
//! projected fine partition — the key multilevel invariant (tested here).

use crate::graph::WeightedGraph;
use rand::prelude::*;

/// One coarsening level: the coarse graph plus the fine→coarse map.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    pub graph: WeightedGraph,
    /// `map[v]` is the coarse vertex containing fine vertex `v`.
    pub map: Vec<u32>,
}

/// Collapse `g` one level by heavy-edge matching. Vertices are visited in
/// a random order; each unmatched vertex matches its heaviest unmatched
/// neighbor (ties broken toward the smaller id for determinism).
pub fn coarsen_once(g: &WeightedGraph, rng: &mut impl Rng) -> CoarseLevel {
    let n = g.vertex_count();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    for &v in &order {
        let v = v as usize;
        if mate[v] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u64, usize)> = None;
        for (u, w) in g.neighbors(v) {
            if u != v && mate[u] == UNMATCHED {
                let better = match best {
                    None => true,
                    Some((bw, bu)) => w > bw || (w == bw && u < bu),
                };
                if better {
                    best = Some((w, u));
                }
            }
        }
        match best {
            Some((_, u)) => {
                mate[v] = u as u32;
                mate[u] = v as u32;
            }
            None => mate[v] = v as u32, // matched with itself
        }
    }

    // Assign coarse ids: the smaller endpoint of each matched pair owns it.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        let m = mate[v] as usize;
        if map[v] == u32::MAX {
            map[v] = next;
            map[m] = next; // self-matched: same index, harmless
            next += 1;
        }
    }
    let coarse_n = next as usize;

    let mut vwgt = vec![0u64; coarse_n];
    for v in 0..n {
        vwgt[map[v] as usize] += g.vertex_weight(v);
    }
    let mut edges: Vec<(u32, u32, u64)> = Vec::with_capacity(g.edge_count());
    for v in 0..n {
        for (u, w) in g.neighbors(v) {
            if u > v {
                let (cv, cu) = (map[v], map[u]);
                if cv != cu {
                    edges.push((cv, cu, w));
                }
            }
        }
    }
    CoarseLevel {
        graph: WeightedGraph::from_edges(vwgt, &edges),
        map,
    }
}

/// Coarsen repeatedly until the graph has at most `target_vertices`
/// vertices or shrinkage stalls (< 10% reduction). Returns the level
/// stack, finest first. The stack may be empty when `g` is already small.
pub fn coarsen_to(
    g: &WeightedGraph,
    target_vertices: usize,
    rng: &mut impl Rng,
) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current = g.clone();
    while current.vertex_count() > target_vertices.max(2) {
        let level = coarsen_once(&current, rng);
        let before = current.vertex_count();
        let after = level.graph.vertex_count();
        if after as f64 > before as f64 * 0.9 {
            // Matching stalled (e.g. star graphs); stop coarsening.
            if after < before {
                levels.push(level.clone());
            }
            break;
        }
        current = level.graph.clone();
        levels.push(level);
    }
    levels
}

/// Project a coarse assignment through `map` to the finer level.
pub fn project(map: &[u32], coarse_assignment: &[u32]) -> Vec<u32> {
    map.iter()
        .map(|&cv| coarse_assignment[cv as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    fn grid(nx: usize, ny: usize) -> WeightedGraph {
        let id = |x: usize, y: usize| (y * nx + x) as u32;
        let mut edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((id(x, y), id(x + 1, y), 1));
                }
                if y + 1 < ny {
                    edges.push((id(x, y), id(x, y + 1), 1));
                }
            }
        }
        WeightedGraph::from_edges(vec![1; nx * ny], &edges)
    }

    #[test]
    fn coarsening_shrinks_and_preserves_total_weight() {
        let g = grid(8, 8);
        let lvl = coarsen_once(&g, &mut rng());
        assert!(lvl.graph.vertex_count() < g.vertex_count());
        assert!(lvl.graph.vertex_count() >= g.vertex_count() / 2);
        assert_eq!(lvl.graph.total_vertex_weight(), g.total_vertex_weight());
    }

    #[test]
    fn map_is_total_and_in_range() {
        let g = grid(6, 6);
        let lvl = coarsen_once(&g, &mut rng());
        let cn = lvl.graph.vertex_count() as u32;
        assert_eq!(lvl.map.len(), g.vertex_count());
        assert!(lvl.map.iter().all(|&c| c < cn));
        // Every coarse vertex contains 1 or 2 fine vertices.
        let mut count = vec![0u32; cn as usize];
        for &c in &lvl.map {
            count[c as usize] += 1;
        }
        assert!(count.iter().all(|&c| (1..=2).contains(&c)));
    }

    #[test]
    fn projected_cut_equals_coarse_cut() {
        // Multilevel invariant: cut(coarse partition) = cut(projection).
        let g = grid(7, 5);
        let mut r = rng();
        let lvl = coarsen_once(&g, &mut r);
        let cn = lvl.graph.vertex_count();
        // Arbitrary 2-way assignment of coarse vertices.
        let coarse: Vec<u32> = (0..cn).map(|v| (v % 2) as u32).collect();
        let fine = project(&lvl.map, &coarse);
        assert_eq!(lvl.graph.edge_cut(&coarse), g.edge_cut(&fine));
    }

    #[test]
    fn heavy_edges_preferentially_collapsed() {
        // 4-clique where 0-1 and 2-3 carry weight 100 and all other edges
        // weight 1: whichever vertex is visited first, its heaviest
        // unmatched neighbor is its 100-partner, so both heavy edges
        // collapse for every visit order.
        let g = WeightedGraph::from_edges(
            vec![1, 1, 1, 1],
            &[
                (0, 1, 100),
                (2, 3, 100),
                (0, 2, 1),
                (0, 3, 1),
                (1, 2, 1),
                (1, 3, 1),
            ],
        );
        for seed in 0..20 {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            let lvl = coarsen_once(&g, &mut r);
            assert_eq!(lvl.map[0], lvl.map[1], "seed {seed}");
            assert_eq!(lvl.map[2], lvl.map[3], "seed {seed}");
        }
    }

    #[test]
    fn coarsen_to_reaches_target() {
        let g = grid(16, 16);
        let levels = coarsen_to(&g, 20, &mut rng());
        assert!(!levels.is_empty());
        let coarsest = &levels.last().expect("levels is non-empty").graph;
        assert!(
            coarsest.vertex_count() <= 40,
            "got {}",
            coarsest.vertex_count()
        );
        assert_eq!(coarsest.total_vertex_weight(), g.total_vertex_weight());
    }

    #[test]
    fn small_graph_not_coarsened() {
        let g = grid(2, 2);
        let levels = coarsen_to(&g, 10, &mut rng());
        assert!(levels.is_empty());
    }
}
