//! Initial k-way partitioning of the coarsest graph by greedy graph
//! growing (the METIS "GGGP" scheme).
//!
//! Parts are grown one at a time from a seed vertex, absorbing the
//! frontier vertex with the strongest connection to the growing region
//! until the part reaches its weight target. The last part takes the
//! remainder. A repair step guarantees no part is empty whenever
//! `k <= n`.

use crate::graph::WeightedGraph;
use rand::prelude::*;
use std::collections::BinaryHeap;

/// Grow a k-way partition. Returns `assignment[v] ∈ 0..k`.
pub fn greedy_growing(g: &WeightedGraph, k: usize, rng: &mut impl Rng) -> Vec<u32> {
    let n = g.vertex_count();
    assert!(k >= 1);
    if k == 1 || n == 0 {
        return vec![0; n];
    }
    if k >= n {
        return (0..n as u32).collect();
    }

    const FREE: u32 = u32::MAX;
    let total = g.total_vertex_weight();
    let mut assignment = vec![FREE; n];
    let mut remaining_weight = total;
    let mut unassigned = n;

    for part in 0..k - 1 {
        if unassigned == 0 {
            break;
        }
        let parts_left = (k - part) as u64;
        let target = remaining_weight.div_ceil(parts_left);

        // Seed: a random unassigned vertex, biased toward the periphery
        // (smallest incident weight) by sampling a few candidates.
        let seed = {
            let mut best: Option<(u64, usize)> = None;
            for _ in 0..8 {
                let mut v = rng.gen_range(0..n);
                // Linear probe to an unassigned vertex.
                while assignment[v] != FREE {
                    v = (v + 1) % n;
                }
                let iw = g.incident_weight(v);
                if best.is_none_or(|(bw, _)| iw < bw) {
                    best = Some((iw, v));
                }
            }
            best.expect("unassigned vertex exists").1
        };

        // Grow by max-connection frontier (lazy-deletion max-heap).
        let mut part_weight = 0u64;
        let mut gain = vec![0u64; n]; // connection weight into the region
        let mut heap: BinaryHeap<(u64, usize)> = BinaryHeap::new();
        heap.push((0, seed));
        while part_weight < target {
            let Some((gw, v)) = heap.pop() else { break };
            if assignment[v] != FREE || gw < gain[v] {
                continue; // stale entry
            }
            // Stop before overshooting badly: admit the vertex only if the
            // part stays closer to target than it is now, unless empty.
            let vw = g.vertex_weight(v);
            if part_weight > 0 && part_weight + vw > target + target / 2 {
                continue;
            }
            assignment[v] = part as u32;
            part_weight += vw;
            unassigned -= 1;
            for (u, w) in g.neighbors(v) {
                if assignment[u] == FREE {
                    gain[u] += w;
                    heap.push((gain[u], u));
                }
            }
            if unassigned == 0 {
                break;
            }
        }
        remaining_weight -= part_weight;
        // If the region got disconnected from all frontiers (graph may be
        // disconnected), the next seed selection handles it.
    }

    // Remainder goes to the last part.
    for a in assignment.iter_mut() {
        if *a == FREE {
            *a = (k - 1) as u32;
        }
    }

    repair_empty_parts(g, k, &mut assignment);
    assignment
}

/// Ensure every part in `0..k` is non-empty (requires `k <= n`): move the
/// lightest vertex out of the largest multi-vertex part into each empty
/// part.
pub fn repair_empty_parts(g: &WeightedGraph, k: usize, assignment: &mut [u32]) {
    let n = assignment.len();
    if k > n {
        return;
    }
    loop {
        let mut count = vec![0usize; k];
        for &p in assignment.iter() {
            count[p as usize] += 1;
        }
        let Some(empty) = count.iter().position(|&c| c == 0) else {
            return;
        };
        // Donor: part with the most vertices.
        let donor = count
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(p, _)| p as u32)
            .expect("k >= 1");
        // Move the donor's lightest vertex.
        let v = (0..n)
            .filter(|&v| assignment[v] == donor)
            .min_by_key(|&v| g.vertex_weight(v))
            .expect("donor non-empty");
        assignment[v] = empty as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    fn path(n: usize) -> WeightedGraph {
        let edges: Vec<(u32, u32, u64)> = (1..n).map(|i| ((i - 1) as u32, i as u32, 1)).collect();
        WeightedGraph::from_edges(vec![1; n], &edges)
    }

    #[test]
    fn all_vertices_assigned_in_range() {
        let g = path(50);
        let a = greedy_growing(&g, 5, &mut rng());
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|&p| p < 5));
    }

    #[test]
    fn no_empty_parts() {
        let g = path(40);
        for k in [2, 3, 7, 13] {
            let a = greedy_growing(&g, k, &mut rng());
            let mut seen = vec![false; k];
            for &p in &a {
                seen[p as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "k={k} has empty part");
        }
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = path(10);
        assert_eq!(greedy_growing(&g, 1, &mut rng()), vec![0; 10]);
    }

    #[test]
    fn k_at_least_n_gives_singletons() {
        let g = path(4);
        let a = greedy_growing(&g, 6, &mut rng());
        assert_eq!(a, vec![0, 1, 2, 3]);
    }

    #[test]
    fn balance_is_reasonable_on_uniform_path() {
        let g = path(100);
        let a = greedy_growing(&g, 4, &mut rng());
        let mut w = [0u64; 4];
        for (v, &p) in a.iter().enumerate() {
            w[p as usize] += g.vertex_weight(v);
        }
        let max = *w.iter().max().expect("parts exist") as f64;
        assert!(max / 25.0 <= 1.5, "weights {w:?}");
    }

    #[test]
    fn grown_parts_are_mostly_contiguous_on_path() {
        // On a path, a grown region is an interval, so the 2-way cut
        // should be tiny (1–3 edges), unlike random assignment (~n/2).
        let g = path(60);
        let a = greedy_growing(&g, 2, &mut rng());
        assert!(g.edge_cut(&a) <= 3, "cut {}", g.edge_cut(&a));
    }

    #[test]
    fn repair_fills_empty_parts() {
        let g = path(6);
        let mut a = vec![0, 0, 0, 0, 0, 0];
        repair_empty_parts(&g, 3, &mut a);
        let mut seen = [false; 3];
        for &p in &a {
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two disjoint paths.
        let mut edges: Vec<(u32, u32, u64)> = (1..10).map(|i| (i - 1, i, 1)).collect();
        edges.extend((11..20).map(|i| (i - 1, i, 1)));
        let g = WeightedGraph::from_edges(vec![1; 20], &edges);
        let a = greedy_growing(&g, 4, &mut rng());
        let mut seen = [false; 4];
        for &p in &a {
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
