//! The multilevel k-way partitioner (METIS-style) and multilevel
//! recursive bisection.
//!
//! `metis_kway` is the partitioner the paper plugs all of its mapping
//! approaches into ("The METIS graph partitioner used in MaSSF can
//! partition a graph with 10,000 vertices in about 10 seconds",
//! Section 3.4.3 — ours is considerably faster; see the `partitioner`
//! bench).

use crate::coarsen::{coarsen_to, project};
use crate::graph::WeightedGraph;
use crate::initial::{greedy_growing, repair_empty_parts};
use crate::partition::Partition;
use crate::refine::{refine, RefineParams};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Multilevel partitioner configuration.
#[derive(Debug, Clone, Copy)]
pub struct KwayConfig {
    /// Allowed maximum part weight as a multiple of ideal.
    pub balance_tolerance: f64,
    /// Refinement passes per level.
    pub refine_passes: usize,
    /// Coarsest-graph size factor: stop coarsening at `size_factor · k`
    /// vertices (bounded below by 40).
    pub size_factor: usize,
    /// Number of initial-partition attempts on the coarsest graph; the
    /// best by (feasible-balance, cut) wins.
    pub initial_tries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KwayConfig {
    fn default() -> Self {
        KwayConfig {
            balance_tolerance: 1.05,
            refine_passes: 8,
            size_factor: 30,
            initial_tries: 4,
            seed: 0xBEEF,
        }
    }
}

/// Partition `g` into `k` parts, multilevel k-way.
pub fn metis_kway(g: &WeightedGraph, k: usize, cfg: &KwayConfig) -> Partition {
    assert!(k >= 1);
    let n = g.vertex_count();
    if k == 1 || n == 0 {
        return Partition::new(vec![0; n], k);
    }
    if k >= n {
        // One vertex per part; surplus parts stay empty.
        return Partition::new((0..n as u32).collect(), k);
    }

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let params = RefineParams {
        balance_tolerance: cfg.balance_tolerance,
        max_passes: cfg.refine_passes,
    };

    // Coarsen.
    let target = (cfg.size_factor * k).max(40);
    let levels = coarsen_to(g, target, &mut rng);
    let coarsest: &WeightedGraph = levels.last().map(|l| &l.graph).unwrap_or(g);

    // Initial partition on the coarsest graph: several tries, keep best.
    let mut best: Option<(bool, u64, Vec<u32>)> = None;
    for _ in 0..cfg.initial_tries.max(1) {
        let mut a = greedy_growing(coarsest, k, &mut rng);
        refine(coarsest, k, &mut a, &params, &mut rng);
        let p = Partition::new(a.clone(), k);
        let feasible = p.balance(coarsest) <= cfg.balance_tolerance + 1e-9;
        let cut = coarsest.edge_cut(&a);
        let better = match &best {
            None => true,
            Some((bf, bc, _)) => (feasible && !bf) || (feasible == *bf && cut < *bc),
        };
        if better {
            best = Some((feasible, cut, a));
        }
    }
    let mut assignment = best.expect("at least one try").2;

    // Uncoarsen: project through the levels, refining at each.
    for level_idx in (0..levels.len()).rev() {
        assignment = project(&levels[level_idx].map, &assignment);
        let fine_graph = if level_idx == 0 {
            g
        } else {
            &levels[level_idx - 1].graph
        };
        refine(fine_graph, k, &mut assignment, &params, &mut rng);
    }
    repair_empty_parts(g, k, &mut assignment);
    Partition::new(assignment, k)
}

/// Multilevel recursive bisection: split into two ⌈k/2⌉:⌊k/2⌋-weighted
/// halves with `metis_kway(…, 2, …)` adapted targets, recurse.
pub fn recursive_bisection(g: &WeightedGraph, k: usize, cfg: &KwayConfig) -> Partition {
    assert!(k >= 1);
    let n = g.vertex_count();
    let mut assignment = vec![0u32; n];
    if k > 1 && n > 0 {
        let vertices: Vec<u32> = (0..n as u32).collect();
        bisect_rec(g, &vertices, 0, k, cfg.seed, cfg, &mut assignment);
    }
    repair_empty_parts(g, k.max(1), &mut assignment);
    Partition::new(assignment, k)
}

fn bisect_rec(
    g: &WeightedGraph,
    vertices: &[u32],
    first_part: u32,
    k: usize,
    seed: u64,
    cfg: &KwayConfig,
    out: &mut [u32],
) {
    if k <= 1 || vertices.len() <= 1 {
        for &v in vertices {
            out[v as usize] = first_part;
        }
        return;
    }
    let k_left = k / 2;
    let k_right = k - k_left;

    // Build the induced subgraph. To honor the k_left:k_right weight
    // ratio with a 2-way partitioner that targets equal halves, we scale
    // by replicating the ratio into the balance target via part weights:
    // partition into 2 with tolerance, then assign the lighter side to
    // the smaller k. For near-equal splits this is the standard approach.
    let mut index_of = vec![u32::MAX; g.vertex_count()];
    for (i, &v) in vertices.iter().enumerate() {
        index_of[v as usize] = i as u32;
    }
    let vw: Vec<u64> = vertices
        .iter()
        .map(|&v| g.vertex_weight(v as usize))
        .collect();
    let mut edges = Vec::new();
    for (i, &v) in vertices.iter().enumerate() {
        for (u, w) in g.neighbors(v as usize) {
            let iu = index_of[u];
            if iu != u32::MAX && (iu as usize) > i {
                edges.push((i as u32, iu, w));
            }
        }
    }
    let sub = WeightedGraph::from_edges(vw, &edges);
    let sub_cfg = KwayConfig {
        seed: seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(first_part as u64 + k as u64)),
        ..*cfg
    };
    let bi = metis_kway(&sub, 2, &sub_cfg);

    // Heavier side gets the larger k.
    let w = bi.part_weights(&sub);
    let (small_side, _big_side) = if w[0] <= w[1] {
        (0u32, 1u32)
    } else {
        (1u32, 0u32)
    };
    let mut left: Vec<u32> = Vec::new();
    let mut right: Vec<u32> = Vec::new();
    for (i, &v) in vertices.iter().enumerate() {
        if bi.assignment[i] == small_side {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    // left (lighter) gets k_left (smaller or equal), right gets k_right.
    bisect_rec(g, &left, first_part, k_left, seed.rotate_left(13), cfg, out);
    bisect_rec(
        g,
        &right,
        first_part + k_left as u32,
        k_right,
        seed.rotate_right(17),
        cfg,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(nx: usize, ny: usize) -> WeightedGraph {
        let id = |x: usize, y: usize| (y * nx + x) as u32;
        let mut edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((id(x, y), id(x + 1, y), 1));
                }
                if y + 1 < ny {
                    edges.push((id(x, y), id(x, y + 1), 1));
                }
            }
        }
        WeightedGraph::from_edges(vec![1; nx * ny], &edges)
    }

    #[test]
    fn partitions_are_valid_and_complete() {
        let g = grid(12, 12);
        for k in [2, 4, 7] {
            let p = metis_kway(&g, k, &KwayConfig::default());
            assert_eq!(p.len(), 144);
            assert_eq!(p.used_parts(), k, "k={k}");
        }
    }

    #[test]
    fn balance_within_tolerance_on_uniform_grid() {
        let g = grid(16, 16);
        let cfg = KwayConfig::default();
        for k in [2, 4, 8] {
            let p = metis_kway(&g, k, &cfg);
            assert!(
                p.balance(&g) <= cfg.balance_tolerance + 0.08,
                "k={k} balance {}",
                p.balance(&g)
            );
        }
    }

    #[test]
    fn cut_quality_beats_random_by_far() {
        let g = grid(20, 20);
        let p = metis_kway(&g, 4, &KwayConfig::default());
        let random = crate::baselines::random_partition(g.vertex_count(), 4, 7);
        assert!(
            p.edge_cut(&g) * 3 < random.edge_cut(&g),
            "metis cut {} vs random {}",
            p.edge_cut(&g),
            random.edge_cut(&g)
        );
    }

    #[test]
    fn grid_bisection_near_optimal() {
        // Optimal 2-cut of a 16×16 grid is 16; accept ≤ 2× optimal.
        let g = grid(16, 16);
        let p = metis_kway(&g, 2, &KwayConfig::default());
        assert!(p.edge_cut(&g) <= 32, "cut {}", p.edge_cut(&g));
    }

    #[test]
    fn k_one_and_k_ge_n_edge_cases() {
        let g = grid(3, 3);
        let p1 = metis_kway(&g, 1, &KwayConfig::default());
        assert!(p1.assignment.iter().all(|&p| p == 0));
        let p9 = metis_kway(&g, 9, &KwayConfig::default());
        assert_eq!(p9.used_parts(), 9);
        let p20 = metis_kway(&g, 20, &KwayConfig::default());
        assert_eq!(p20.used_parts(), 9); // only 9 vertices exist
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid(10, 10);
        let a = metis_kway(&g, 4, &KwayConfig::default());
        let b = metis_kway(&g, 4, &KwayConfig::default());
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn respects_vertex_weights() {
        // One mega-vertex (weight 50) and 50 unit vertices in a path;
        // k=2 should isolate the mega-vertex region rather than split by
        // count.
        let n = 51;
        let mut vw = vec![1u64; n];
        vw[0] = 50;
        let edges: Vec<(u32, u32, u64)> = (1..n as u32).map(|i| (i - 1, i, 1)).collect();
        let g = WeightedGraph::from_edges(vw, &edges);
        let p = metis_kway(&g, 2, &KwayConfig::default());
        let w = p.part_weights(&g);
        let max = *w.iter().max().expect("two parts requested");
        assert!(max <= 60, "part weights {w:?}");
    }

    #[test]
    fn recursive_bisection_valid() {
        let g = grid(12, 12);
        for k in [2, 3, 5, 8] {
            let p = recursive_bisection(&g, k, &KwayConfig::default());
            assert_eq!(p.used_parts(), k, "k={k}");
            assert!(p.balance(&g) <= 1.6, "k={k} balance {}", p.balance(&g));
        }
    }

    #[test]
    fn recursive_bisection_cut_sane() {
        let g = grid(16, 16);
        let p = recursive_bisection(&g, 4, &KwayConfig::default());
        let random = crate::baselines::random_partition(g.vertex_count(), 4, 7);
        assert!(p.edge_cut(&g) * 2 < random.edge_cut(&g));
    }
}
