//! Disjoint-set forest with path halving and union by size.
//!
//! Used internally for connectivity checks and exported for the
//! latency-threshold node merging of the hierarchical partitioners
//! (paper Section 3.4.3: "the original graph G is reduced to a dumped
//! graph Gd by collapsing nodes with link latency less than Tmll").

/// A disjoint-set (union–find) structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (path-halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Relabel sets densely: returns `(labels, count)` where `labels[x]`
    /// is a stable 0-based label (ordered by smallest member).
    pub fn dense_labels(&mut self) -> (Vec<u32>, usize) {
        let n = self.len();
        let mut label = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut out = vec![0u32; n];
        for (x, slot) in out.iter_mut().enumerate() {
            let r = self.find(x);
            if label[r] == u32::MAX {
                label[r] = next;
                next += 1;
            }
            *slot = label[r];
        }
        (out, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.set_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 3), "already connected");
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 3));
        assert!(!uf.connected(0, 4));
        assert_eq!(uf.set_size(3), 4);
    }

    #[test]
    fn dense_labels_are_stable_and_dense() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 5);
        uf.union(1, 3);
        let (labels, count) = uf.dense_labels();
        assert_eq!(count, 4);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[2], 2);
        assert_eq!(labels[3], 1);
        assert_eq!(labels[4], 3);
        assert_eq!(labels[5], 3);
    }

    #[test]
    fn chain_unions_single_component() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.set_size(0), n);
        let (labels, count) = uf.dense_labels();
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }
}
