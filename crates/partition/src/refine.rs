//! KL/FM-style greedy boundary refinement with a balance constraint.
//!
//! After projecting a partition to a finer level, boundary vertices are
//! repeatedly considered for moving to an adjacent part. A move is taken
//! when it reduces the edge-cut without violating the balance bound, or
//! when it repairs an overweight part. This is the refinement used at
//! every level of the multilevel partitioners.

use crate::graph::WeightedGraph;
use rand::prelude::*;

/// Refinement parameters.
#[derive(Debug, Clone, Copy)]
pub struct RefineParams {
    /// Allowed maximum part weight as a multiple of the ideal
    /// (`1.05` = 5% imbalance).
    pub balance_tolerance: f64,
    /// Maximum number of full passes over the boundary.
    pub max_passes: usize,
}

impl Default for RefineParams {
    fn default() -> Self {
        RefineParams {
            balance_tolerance: 1.05,
            max_passes: 8,
        }
    }
}

/// Refine `assignment` in place. Returns the total cut improvement.
pub fn refine(
    g: &WeightedGraph,
    k: usize,
    assignment: &mut [u32],
    params: &RefineParams,
    rng: &mut impl Rng,
) -> u64 {
    let n = g.vertex_count();
    if n == 0 || k <= 1 {
        return 0;
    }
    let total = g.total_vertex_weight();
    let ideal = total as f64 / k as f64;
    let max_allowed = (ideal * params.balance_tolerance).ceil() as u64;
    // A part made overweight by one giant vertex cannot be repaired;
    // never shed load below the ideal, or every neighbor of the giant
    // gets churned out (cutting whatever edges happen to be there).
    let ideal_floor = (total / k as u64).max(1);

    let mut part_weight = vec![0u64; k];
    let mut part_count = vec![0usize; k];
    for (v, &p) in assignment.iter().enumerate() {
        part_weight[p as usize] += g.vertex_weight(v);
        part_count[p as usize] += 1;
    }

    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut improvement_total = 0u64;
    // Scratch: connection weight of the current vertex to each part.
    let mut conn = vec![0u64; k];
    let mut touched: Vec<u32> = Vec::new();

    for _pass in 0..params.max_passes {
        order.shuffle(rng);
        let mut moved = 0usize;
        for &v32 in &order {
            let v = v32 as usize;
            let own = assignment[v] as usize;
            if part_count[own] <= 1 {
                continue; // never empty a part
            }
            // Compute connectivity to adjacent parts.
            touched.clear();
            let mut is_boundary = false;
            for (u, w) in g.neighbors(v) {
                let p = assignment[u] as usize;
                if conn[p] == 0 {
                    touched.push(p as u32);
                }
                conn[p] += w;
                if p != own {
                    is_boundary = true;
                }
            }
            if !is_boundary {
                for &p in &touched {
                    conn[p as usize] = 0;
                }
                continue;
            }
            let vw = g.vertex_weight(v);
            let own_conn = conn[own];
            let overweight = part_weight[own] > max_allowed;
            // Best target: maximize gain; among equal gains prefer the
            // lightest target part.
            let mut best: Option<(i64, u64, usize)> = None; // (gain, -, part)
            for &p32 in &touched {
                let p = p32 as usize;
                if p == own {
                    continue;
                }
                let gain = conn[p] as i64 - own_conn as i64;
                let fits = part_weight[p] + vw <= max_allowed;
                // Rebalancing move: from an overweight part to any part
                // that ends up lighter than the source, provided the
                // source keeps at least its ideal share.
                let rebalances = overweight
                    && part_weight[p] + vw < part_weight[own]
                    && part_weight[own] - vw >= ideal_floor;
                if !(fits || rebalances) {
                    continue;
                }
                let candidate_ok =
                    gain > 0 || rebalances || (gain == 0 && part_weight[p] + vw < part_weight[own]);
                if candidate_ok {
                    let better = match best {
                        None => true,
                        Some((bg, bw, _)) => gain > bg || (gain == bg && part_weight[p] < bw),
                    };
                    if better {
                        best = Some((gain, part_weight[p], p));
                    }
                }
            }
            if let Some((gain, _, target)) = best {
                assignment[v] = target as u32;
                part_weight[own] -= vw;
                part_weight[target] += vw;
                part_count[own] -= 1;
                part_count[target] += 1;
                if gain > 0 {
                    improvement_total += gain as u64;
                }
                moved += 1;
            }
            for &p in &touched {
                conn[p as usize] = 0;
            }
        }
        if moved == 0 {
            break;
        }
    }
    improvement_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    /// Two 5-cliques joined by a single light bridge.
    fn two_cliques() -> WeightedGraph {
        let mut edges = Vec::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j, 10));
                }
            }
        }
        edges.push((4, 5, 1)); // bridge
        WeightedGraph::from_edges(vec![1; 10], &edges)
    }

    #[test]
    fn refinement_finds_natural_cut() {
        let g = two_cliques();
        // Start from a bad split that cuts through both cliques.
        let mut a = vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        refine(&g, 2, &mut a, &RefineParams::default(), &mut rng());
        assert_eq!(g.edge_cut(&a), 1, "should settle on the bridge, got {a:?}");
    }

    #[test]
    fn refinement_never_increases_cut() {
        let g = two_cliques();
        for seed in 0..10 {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            let mut a: Vec<u32> = (0..10).map(|_| r.gen_range(0..3)).collect();
            crate::initial::repair_empty_parts(&g, 3, &mut a);
            let before = g.edge_cut(&a);
            refine(&g, 3, &mut a, &RefineParams::default(), &mut r);
            assert!(g.edge_cut(&a) <= before, "seed {seed}");
        }
    }

    #[test]
    fn respects_balance_tolerance() {
        // Path of 12 unit vertices, perfect halves possible.
        let edges: Vec<(u32, u32, u64)> = (1..12u32).map(|i| (i - 1, i, 1)).collect();
        let g = WeightedGraph::from_edges(vec![1; 12], &edges);
        let mut a = vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1];
        refine(&g, 2, &mut a, &RefineParams::default(), &mut rng());
        let ones = a.iter().filter(|&&p| p == 1).count();
        // tolerance 1.05 over ideal 6 allows ≤ 7 per side.
        assert!((5..=7).contains(&ones), "{a:?}");
    }

    #[test]
    fn rebalances_overweight_parts() {
        // All weight initially on part 0; refinement should shed load even
        // though every move increases the cut.
        let edges: Vec<(u32, u32, u64)> = (1..10u32).map(|i| (i - 1, i, 1)).collect();
        let g = WeightedGraph::from_edges(vec![1; 10], &edges);
        let mut a = vec![0; 10];
        a[9] = 1; // part 1 exists but is nearly empty
        refine(&g, 2, &mut a, &RefineParams::default(), &mut rng());
        let w1 = a.iter().filter(|&&p| p == 1).count();
        assert!(w1 >= 4, "part 1 still starved: {a:?}");
    }

    #[test]
    fn never_empties_a_part() {
        let g = two_cliques();
        for seed in 0..10 {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            let mut a: Vec<u32> = (0..10u32).map(|v| v % 4).collect();
            refine(&g, 4, &mut a, &RefineParams::default(), &mut r);
            let mut seen = [false; 4];
            for &p in &a {
                seen[p as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "seed {seed}: {a:?}");
        }
    }

    #[test]
    fn noop_for_single_part() {
        let g = two_cliques();
        let mut a = vec![0; 10];
        let imp = refine(&g, 1, &mut a, &RefineParams::default(), &mut rng());
        assert_eq!(imp, 0);
        assert!(a.iter().all(|&p| p == 0));
    }
}
