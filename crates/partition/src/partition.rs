//! Partition representation and quality metrics.

use crate::graph::WeightedGraph;

/// A k-way assignment of graph vertices to parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `assignment[v]` is the part of vertex `v`, in `0..k`.
    pub assignment: Vec<u32>,
    /// Number of parts.
    pub k: usize,
}

impl Partition {
    /// Wrap an assignment. Parts must be in `0..k`.
    ///
    /// # Panics
    /// Panics if any part id is out of range.
    pub fn new(assignment: Vec<u32>, k: usize) -> Self {
        assert!(k >= 1);
        assert!(
            assignment.iter().all(|&p| (p as usize) < k),
            "part id out of range"
        );
        Partition { assignment, k }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True if no vertices.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Total vertex weight per part.
    pub fn part_weights(&self, g: &WeightedGraph) -> Vec<u64> {
        debug_assert_eq!(self.assignment.len(), g.vertex_count());
        let mut w = vec![0u64; self.k];
        for (v, &p) in self.assignment.iter().enumerate() {
            w[p as usize] += g.vertex_weight(v);
        }
        w
    }

    /// Load-balance ratio: `max part weight / ideal part weight` (≥ 1;
    /// 1.0 is perfect). Empty graphs give 1.0.
    pub fn balance(&self, g: &WeightedGraph) -> f64 {
        let weights = self.part_weights(g);
        let total: u64 = weights.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.k as f64;
        let max = *weights.iter().max().expect("k >= 1") as f64;
        max / ideal
    }

    /// Total weight of edges crossing parts.
    pub fn edge_cut(&self, g: &WeightedGraph) -> u64 {
        g.edge_cut(&self.assignment)
    }

    /// Number of non-empty parts.
    pub fn used_parts(&self) -> usize {
        let mut used = vec![false; self.k];
        for &p in &self.assignment {
            used[p as usize] = true;
        }
        used.iter().filter(|&&u| u).count()
    }

    /// Vertices of part `p`.
    pub fn members(&self, p: u32) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &q)| q == p)
            .map(|(v, _)| v)
            .collect()
    }

    /// Normalized load imbalance as the paper defines it (Section 4.1):
    /// the standard deviation of per-part loads divided by the mean.
    /// `loads[p]` is the measured load of part `p` (e.g. kernel event
    /// rate); this helper is also usable with estimated weights.
    pub fn normalized_imbalance(loads: &[f64]) -> f64 {
        if loads.is_empty() {
            return 0.0;
        }
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = loads.iter().map(|&l| (l - mean) * (l - mean)).sum::<f64>() / loads.len() as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> WeightedGraph {
        WeightedGraph::from_edges(vec![1, 2, 3, 4], &[(0, 1, 5), (1, 2, 1), (2, 3, 5)])
    }

    #[test]
    fn part_weights_and_balance() {
        let g = path4();
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.part_weights(&g), vec![3, 7]);
        // total 10, ideal 5, max 7 → 1.4
        assert!((p.balance(&g) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn perfect_balance_is_one() {
        let g = WeightedGraph::from_edges(vec![1, 1], &[(0, 1, 1)]);
        let p = Partition::new(vec![0, 1], 2);
        assert_eq!(p.balance(&g), 1.0);
    }

    #[test]
    fn edge_cut_through_graph() {
        let g = path4();
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.edge_cut(&g), 1);
        let q = Partition::new(vec![0, 1, 0, 1], 2);
        assert_eq!(q.edge_cut(&g), 11);
    }

    #[test]
    fn used_parts_and_members() {
        let p = Partition::new(vec![0, 2, 0], 3);
        assert_eq!(p.used_parts(), 2);
        assert_eq!(p.members(0), vec![0, 2]);
        assert_eq!(p.members(1), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "part id out of range")]
    fn out_of_range_part_rejected() {
        Partition::new(vec![0, 3], 2);
    }

    #[test]
    fn normalized_imbalance_matches_paper_definition() {
        assert_eq!(Partition::normalized_imbalance(&[5.0, 5.0, 5.0]), 0.0);
        // loads 2, 4, 6: mean 4, population std dev sqrt(8/3) ≈ 1.633
        let v = Partition::normalized_imbalance(&[2.0, 4.0, 6.0]);
        assert!((v - (8.0f64 / 3.0).sqrt() / 4.0).abs() < 1e-12);
        assert_eq!(Partition::normalized_imbalance(&[]), 0.0);
        assert_eq!(Partition::normalized_imbalance(&[0.0, 0.0]), 0.0);
    }
}
