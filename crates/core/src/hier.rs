//! Hierarchical partitioning — the paper's contribution (Section 3.4).
//!
//! The flat mappers achieve tiny MLLs on large networks because the
//! partitioner optimizes total edge-cut, to which any single
//! small-latency edge contributes little (Section 3.4.2). The fix:
//!
//! ```text
//! Input:  graph G, partition N, and synchronization cost C
//! Output: the best partition P of graph G
//! Hierarchical Partition:
//!   Set the initial Threshold of MLL (Tmll)
//!   Loop through all reasonable Tmll:
//!     Get the dumped graph Gd(Tmll)
//!     Partition the Gd(Tmll) using an existing partitioner → P(Tmll)
//!     Evaluate the partition result Pd(Tmll)
//!   Pick up the best partition Pd(Tmll)
//!   Get the best partition P of original G
//! ```
//!
//! `Gd(Tmll)` merges every edge with latency < `Tmll` (union-find), so
//! no such edge can be cut — the worst-case MLL is guaranteed ≥ `Tmll`.
//! Candidates are scored with `E = Es · Ec` ([`crate::evaluate`]);
//! the sweep starts just above the synchronization cost ("we require a
//! Tmll to be larger than the synchronization cost") and steps by 0.1 ms
//! ("0.1ms in our experiments").

use crate::evaluate::{efficiency, PartitionEvaluation};
use massf_engine::SyncCostModel;
use massf_partition::{metis_kway, KwayConfig, Partition, UnionFind, WeightedGraph};
use massf_topology::Network;

/// Hierarchical-partition configuration.
#[derive(Debug, Clone)]
pub struct HierConfig {
    /// Number of simulation engines (parts).
    pub engines: usize,
    /// Cluster synchronization-cost model (sets the sweep start).
    pub sync: SyncCostModel,
    /// Sweep step, ms (paper: 0.1).
    pub step_ms: f64,
    /// Maximum number of thresholds to try.
    pub max_steps: usize,
    /// Underlying partitioner configuration.
    pub kway: KwayConfig,
}

impl HierConfig {
    /// Paper-shaped defaults for `engines` engine nodes.
    pub fn new(engines: usize) -> Self {
        HierConfig {
            engines,
            sync: SyncCostModel::teragrid(),
            step_ms: 0.1,
            max_steps: 200,
            kway: KwayConfig::default(),
        }
    }
}

/// One swept candidate.
#[derive(Debug, Clone)]
pub struct HierCandidate {
    pub tmll_ms: f64,
    /// Vertices of the reduced ("dumped") graph.
    pub reduced_vertices: usize,
    pub evaluation: PartitionEvaluation,
}

/// Result of the hierarchical partition.
#[derive(Debug, Clone)]
pub struct HierResult {
    /// The winning partition of the *original* graph.
    pub partition: Partition,
    /// The winning threshold.
    pub tmll_ms: f64,
    /// Its evaluation.
    pub evaluation: PartitionEvaluation,
    /// The full sweep (for ablation studies / Figure-7-style analysis).
    pub candidates: Vec<HierCandidate>,
}

/// Merge all vertices joined by links with `latency < tmll_ms`,
/// returning the reduced graph and the node → cluster map.
pub fn reduce_graph(
    net: &Network,
    graph: &WeightedGraph,
    tmll_ms: f64,
) -> (WeightedGraph, Vec<u32>) {
    let n = graph.vertex_count();
    debug_assert_eq!(n, net.node_count());
    let mut uf = UnionFind::new(n);
    for link in &net.links {
        if link.latency_ms < tmll_ms {
            uf.union(link.a.index(), link.b.index());
        }
    }
    let (labels, clusters) = uf.dense_labels();

    let mut vweights = vec![0u64; clusters];
    for v in 0..n {
        vweights[labels[v] as usize] += graph.vertex_weight(v);
    }
    let mut edges = Vec::new();
    for v in 0..n {
        for (u, w) in graph.neighbors(v) {
            if u > v {
                let (cv, cu) = (labels[v], labels[u]);
                if cv != cu {
                    edges.push((cv, cu, w));
                }
            }
        }
    }
    (WeightedGraph::from_edges(vweights, &edges), labels)
}

/// Incrementally coarsened view of a graph along an ascending sweep of
/// latency thresholds.
///
/// Merge sets only grow as `Tmll` increases, so each threshold's
/// reduced ("dumped") graph can be built by contracting the *previous*
/// threshold's reduced graph rather than the full graph — the per-step
/// cost tracks the (rapidly shrinking) quotient size instead of the
/// original network. The result is bit-identical to
/// [`reduce_graph`] at every threshold: dense cluster labels are
/// ordered by smallest original member, an ordering composition of
/// contractions preserves, and edge/vertex weights are sums that
/// re-associate exactly (see the `incremental_*` tests and the
/// proptest invariant).
pub struct SweepReducer {
    /// Network links as `(latency_ms, a, b)`, ascending by latency.
    sorted_links: Vec<(f64, u32, u32)>,
    /// First entry of `sorted_links` not yet merged.
    next_link: usize,
    /// The current reduced graph.
    reduced: WeightedGraph,
    /// Original vertex → current reduced-graph cluster.
    labels: Vec<u32>,
}

impl SweepReducer {
    /// Start a sweep over `graph` (threshold 0: nothing merged).
    pub fn new(net: &Network, graph: &WeightedGraph) -> Self {
        let n = graph.vertex_count();
        debug_assert_eq!(n, net.node_count());
        let mut sorted_links: Vec<(f64, u32, u32)> = net
            .links
            .iter()
            .map(|l| (l.latency_ms, l.a.index() as u32, l.b.index() as u32))
            .collect();
        sorted_links.sort_by(|x, y| x.0.total_cmp(&y.0));
        SweepReducer {
            sorted_links,
            next_link: 0,
            reduced: graph.clone(),
            labels: (0..n as u32).collect(),
        }
    }

    /// The reduced graph at the last advanced threshold.
    pub fn reduced(&self) -> &WeightedGraph {
        &self.reduced
    }

    /// Original vertex → reduced cluster at the last threshold.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Advance to `tmll_ms`, merging every link with a strictly smaller
    /// latency. Thresholds must be passed in ascending order.
    pub fn advance(&mut self, tmll_ms: f64) {
        let k = self.reduced.vertex_count();
        let mut uf = UnionFind::new(k);
        let mut merged_any = false;
        while self.next_link < self.sorted_links.len()
            && self.sorted_links[self.next_link].0 < tmll_ms
        {
            let (_, a, b) = self.sorted_links[self.next_link];
            let (ca, cb) = (self.labels[a as usize], self.labels[b as usize]);
            if ca != cb {
                merged_any |= uf.union(ca as usize, cb as usize);
            }
            self.next_link += 1;
        }
        if !merged_any {
            return;
        }
        let (relabel, clusters) = uf.dense_labels();
        let mut vweights = vec![0u64; clusters];
        for v in 0..k {
            vweights[relabel[v] as usize] += self.reduced.vertex_weight(v);
        }
        // Surviving-edge collection chunked across the worker pool: the
        // first advances scan near-full-size adjacency, later ones only
        // the shrunken quotient. Chunks concatenate in vertex order, and
        // `from_edges` canonicalizes, so the result is order-independent.
        let edges: Vec<(u32, u32, u64)> = massf_parutil::par_map_chunks(k, |range| {
            let mut out = Vec::new();
            for v in range {
                for (u, w) in self.reduced.neighbors(v) {
                    if u > v {
                        let (cv, cu) = (relabel[v], relabel[u]);
                        if cv != cu {
                            out.push((cv, cu, w));
                        }
                    }
                }
            }
            out
        });
        self.reduced = WeightedGraph::from_edges(vweights, &edges);
        for l in self.labels.iter_mut() {
            *l = relabel[*l as usize];
        }
    }
}

/// Run the hierarchical partition of `graph` (weights chosen by the
/// caller: bandwidth ⇒ HTOP, profile ⇒ HPROF).
///
/// The sweep is executed in two phases: a cheap sequential pass builds
/// every threshold's reduced graph incrementally ([`SweepReducer`]),
/// then all candidates are partitioned and evaluated concurrently on
/// the shared worker pool (`massf-parutil`; thread count from
/// `--threads` / `MASSF_THREADS` / available parallelism). Results are
/// bit-identical to a sequential sweep at any thread count: candidates
/// keep their threshold order and the winner is chosen by a stable
/// scan (strictly higher `E` wins, so ties keep the lowest `Tmll`).
///
/// # Panics
/// Panics when `engines == 0` or the graph is empty.
pub fn hierarchical_partition(
    net: &Network,
    graph: &WeightedGraph,
    cfg: &HierConfig,
) -> HierResult {
    assert!(cfg.engines >= 1);
    assert!(graph.vertex_count() > 0);
    let sync_ms = cfg.sync.cost_us(cfg.engines) / 1_000.0;
    // "We require a Tmll to be larger than the synchronization cost":
    // start at the first step-multiple above it.
    let first_step = (sync_ms / cfg.step_ms).floor() as usize + 1;

    // Phase 1 (sequential, cheap): incremental reduction per threshold.
    let mut reducer = SweepReducer::new(net, graph);
    let mut jobs: Vec<(f64, WeightedGraph, Vec<u32>)> = Vec::new();
    for step in 0..cfg.max_steps {
        let tmll_ms = (first_step + step) as f64 * cfg.step_ms;
        reducer.advance(tmll_ms);
        if reducer.reduced().vertex_count() < cfg.engines {
            // Coarser than the engine count: no parallelism left; stop.
            break;
        }
        jobs.push((
            tmll_ms,
            reducer.reduced().clone(),
            reducer.labels().to_vec(),
        ));
    }

    // Phase 2 (parallel): partition + evaluate every candidate.
    let evaluated: Vec<(HierCandidate, Partition)> =
        massf_parutil::par_map(&jobs, |(tmll_ms, reduced, labels)| {
            let reduced_partition = metis_kway(reduced, cfg.engines, &cfg.kway);
            // Project to the original graph.
            let assignment: Vec<u32> = labels
                .iter()
                .map(|&c| reduced_partition.assignment[c as usize])
                .collect();
            let partition = Partition::new(assignment, cfg.engines);
            let eval = efficiency(net, graph, &partition, cfg.engines, &cfg.sync);
            debug_assert!(
                eval.mll_ms >= *tmll_ms || eval.mll_ms.is_infinite(),
                "reduction must guarantee MLL ≥ Tmll ({} < {tmll_ms})",
                eval.mll_ms
            );
            (
                HierCandidate {
                    tmll_ms: *tmll_ms,
                    reduced_vertices: reduced.vertex_count(),
                    evaluation: eval,
                },
                partition,
            )
        });

    // Phase 3 (sequential): stable winner selection — identical to the
    // old one-pass loop, ties keep the earliest (lowest) threshold.
    let mut candidates = Vec::with_capacity(evaluated.len());
    let mut best: Option<(Partition, f64, PartitionEvaluation)> = None;
    for (candidate, partition) in evaluated {
        let better = match &best {
            None => true,
            Some((_, _, be)) => candidate.evaluation.e > be.e,
        };
        if better {
            best = Some((partition, candidate.tmll_ms, candidate.evaluation));
        }
        candidates.push(candidate);
    }

    let (partition, tmll_ms, evaluation) = best.unwrap_or_else(|| {
        // Even the first threshold over-coarsened (tiny test graphs):
        // fall back to a flat partition.
        let partition = metis_kway(graph, cfg.engines, &cfg.kway);
        let eval = efficiency(net, graph, &partition, cfg.engines, &cfg.sync);
        (partition, 0.0, eval)
    });
    HierResult {
        partition,
        tmll_ms,
        evaluation,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{build_weighted_graph, EdgeWeighting, VertexWeighting};
    use massf_topology::{generate_flat_network, FlatTopologyConfig};

    fn setup() -> (massf_topology::Network, WeightedGraph) {
        let net = generate_flat_network(&FlatTopologyConfig {
            routers: 400,
            hosts: 100,
            metro_count: 8,
            ..FlatTopologyConfig::tiny()
        });
        let g = build_weighted_graph(
            &net,
            VertexWeighting::Bandwidth,
            EdgeWeighting::Standard,
            None,
        );
        (net, g)
    }

    fn cfg(engines: usize) -> HierConfig {
        HierConfig {
            engines,
            sync: SyncCostModel::new(50.0, 50.0), // small cluster model
            step_ms: 0.1,
            max_steps: 60,
            kway: KwayConfig::default(),
        }
    }

    #[test]
    fn reduction_merges_below_threshold_only() {
        let (net, g) = setup();
        let (reduced, labels) = reduce_graph(&net, &g, 0.5);
        assert!(reduced.vertex_count() < g.vertex_count());
        assert_eq!(reduced.total_vertex_weight(), g.total_vertex_weight());
        for link in &net.links {
            let same = labels[link.a.index()] == labels[link.b.index()];
            if link.latency_ms < 0.5 {
                assert!(same, "sub-threshold link not merged");
            }
            // Links ≥ threshold may still be same-cluster via a short path.
        }
    }

    #[test]
    fn reduction_with_zero_threshold_is_identity_sized() {
        let (net, g) = setup();
        let (reduced, _) = reduce_graph(&net, &g, 0.0);
        assert_eq!(reduced.vertex_count(), g.vertex_count());
    }

    #[test]
    fn guarantees_mll_at_least_tmll() {
        let (net, g) = setup();
        let r = hierarchical_partition(&net, &g, &cfg(8));
        assert!(r.tmll_ms > 0.0);
        assert!(
            r.evaluation.mll_ms >= r.tmll_ms,
            "MLL {} < Tmll {}",
            r.evaluation.mll_ms,
            r.tmll_ms
        );
    }

    #[test]
    fn hier_beats_flat_on_mll() {
        let (net, g) = setup();
        let flat = metis_kway(&g, 8, &KwayConfig::default());
        let flat_mll =
            crate::evaluate::achieved_mll_ms(&net, &flat.assignment).unwrap_or(f64::INFINITY);
        let r = hierarchical_partition(&net, &g, &cfg(8));
        assert!(
            r.evaluation.mll_ms > flat_mll,
            "hier MLL {} should beat flat {}",
            r.evaluation.mll_ms,
            flat_mll
        );
    }

    #[test]
    fn sweep_produces_multiple_candidates_and_picks_max_e() {
        let (net, g) = setup();
        let r = hierarchical_partition(&net, &g, &cfg(8));
        assert!(r.candidates.len() >= 2, "sweep too short");
        let max_e = r
            .candidates
            .iter()
            .map(|c| c.evaluation.e)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((r.evaluation.e - max_e).abs() < 1e-12);
    }

    #[test]
    fn uses_all_engines() {
        let (net, g) = setup();
        let r = hierarchical_partition(&net, &g, &cfg(8));
        assert_eq!(r.partition.used_parts(), 8);
    }

    #[test]
    fn stops_when_parallelism_exhausted() {
        let (net, g) = setup();
        // With many engines, large thresholds leave fewer clusters than
        // engines; the sweep must terminate early rather than loop.
        let r = hierarchical_partition(&net, &g, &cfg(64));
        let last = r.candidates.last().expect("some candidates");
        assert!(last.reduced_vertices >= 64);
    }

    #[test]
    fn deterministic() {
        let (net, g) = setup();
        let a = hierarchical_partition(&net, &g, &cfg(8));
        let b = hierarchical_partition(&net, &g, &cfg(8));
        assert_eq!(a.partition.assignment, b.partition.assignment);
        assert_eq!(a.tmll_ms, b.tmll_ms);
    }

    #[test]
    fn incremental_reducer_matches_from_scratch_at_every_threshold() {
        let (net, g) = setup();
        let mut reducer = SweepReducer::new(&net, &g);
        for step in 0..30 {
            let tmll_ms = step as f64 * 0.1;
            reducer.advance(tmll_ms);
            let (scratch, scratch_labels) = reduce_graph(&net, &g, tmll_ms);
            assert_eq!(
                reducer.reduced(),
                &scratch,
                "reduced graph diverged at Tmll = {tmll_ms}"
            );
            assert_eq!(
                reducer.labels(),
                &scratch_labels[..],
                "labels diverged at Tmll = {tmll_ms}"
            );
        }
    }

    #[test]
    fn incremental_reducer_is_thread_count_invariant() {
        let (net, g) = setup();
        let run = |threads| {
            massf_parutil::with_threads(threads, || {
                let mut r = SweepReducer::new(&net, &g);
                r.advance(1.5);
                (r.reduced().clone(), r.labels().to_vec())
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let (net, g) = setup();
        let seq = massf_parutil::with_threads(1, || hierarchical_partition(&net, &g, &cfg(8)));
        let par = massf_parutil::with_threads(4, || hierarchical_partition(&net, &g, &cfg(8)));
        assert_eq!(seq.partition.assignment, par.partition.assignment);
        assert_eq!(seq.tmll_ms, par.tmll_ms);
        assert_eq!(seq.evaluation.e.to_bits(), par.evaluation.e.to_bits());
        assert_eq!(seq.candidates.len(), par.candidates.len());
        for (a, b) in seq.candidates.iter().zip(&par.candidates) {
            assert_eq!(a.tmll_ms, b.tmll_ms);
            assert_eq!(a.reduced_vertices, b.reduced_vertices);
            assert_eq!(a.evaluation.e.to_bits(), b.evaluation.e.to_bits());
        }
    }
}

#[cfg(test)]
mod sweep_shape_tests {
    use super::*;
    use crate::weights::{build_weighted_graph, EdgeWeighting, VertexWeighting};
    use massf_engine::SyncCostModel;
    use massf_partition::KwayConfig;
    use massf_topology::{generate_flat_network, FlatTopologyConfig};

    /// The explicit tradeoff of Section 3.4.3: along the sweep, larger
    /// thresholds must never shrink the quotient graph's guaranteed MLL,
    /// and must monotonically shrink the reduced graph (less available
    /// parallelism) — "Larger Es means better simulation efficiency, but
    /// it also means less parallelism available."
    #[test]
    fn sweep_trades_parallelism_for_decoupling() {
        let net = generate_flat_network(&FlatTopologyConfig {
            routers: 500,
            hosts: 100,
            metro_count: 24,
            ..FlatTopologyConfig::tiny()
        });
        let g = build_weighted_graph(
            &net,
            VertexWeighting::Bandwidth,
            EdgeWeighting::Standard,
            None,
        );
        let cfg = HierConfig {
            engines: 6,
            sync: SyncCostModel::new(30.0, 40.0),
            step_ms: 0.2,
            max_steps: 40,
            kway: KwayConfig::default(),
        };
        let r = hierarchical_partition(&net, &g, &cfg);
        assert!(r.candidates.len() >= 3);
        for w in r.candidates.windows(2) {
            assert!(
                w[1].reduced_vertices <= w[0].reduced_vertices,
                "reduction must be monotone: {} then {}",
                w[0].reduced_vertices,
                w[1].reduced_vertices
            );
            assert!(w[1].tmll_ms > w[0].tmll_ms);
        }
        // Each candidate's achieved MLL respects its own threshold.
        for c in &r.candidates {
            assert!(
                c.evaluation.mll_ms >= c.tmll_ms,
                "candidate at {} got MLL {}",
                c.tmll_ms,
                c.evaluation.mll_ms
            );
        }
        // The winner strictly beats at least one other candidate (the
        // sweep is doing real selection work, not returning the first).
        let min_e = r
            .candidates
            .iter()
            .map(|c| c.evaluation.e)
            .fold(f64::INFINITY, f64::min);
        assert!(r.evaluation.e > min_e);
    }
}
