//! Graph preparation (the paper's Figure 4): turn a network plus traffic
//! information into the weighted graph handed to the partitioner.
//!
//! Vertex weights estimate per-node simulation load; edge weights
//! express the reluctance to cut a link. "In TOP and PROF mappings, the
//! link latency is converted to edge weight of the graph G, and smaller
//! link latency leads to a larger edge weight" (Section 3.4.2). The
//! `Tuned` conversion is the Section 4.3 adjustment ("TOP2"/"PROF2"):
//! steeper, so the partitioner avoids cutting small-latency links — a
//! manual, topology-specific fix the hierarchical approach supersedes.

use massf_netsim::ProfileData;
use massf_partition::WeightedGraph;
use massf_topology::Network;

/// How vertex weights (estimated load) are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VertexWeighting {
    /// TOP: total bandwidth in and out of the node.
    Bandwidth,
    /// PROF: measured kernel events per node from a profiling run.
    Profile,
}

/// How link latency becomes edge weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeWeighting {
    /// `w = K / latency` — the original TOP/PROF conversion.
    Standard,
    /// `w = (K / latency)²` — the hand-tuned steeper conversion of
    /// Section 4.3 (TOP2/PROF2), making sub-threshold-latency links
    /// effectively uncuttable.
    Tuned,
}

/// Reference latency for the conversions, ms: a link of this latency has
/// edge weight [`EDGE_WEIGHT_SCALE`].
const REFERENCE_LATENCY_MS: f64 = 1.0;
/// Weight of a reference-latency link.
const EDGE_WEIGHT_SCALE: f64 = 64.0;
/// The tuned conversion's knee, ms: links faster than this get an extra
/// prohibitive multiplier. The paper tuned TOP2/PROF2 by hand until the
/// partitioner stopped cutting links below roughly the synchronization
/// cost (the achieved MLL in Figures 7/11 is ≈ 0.6 ms); 0.7 ms encodes
/// that hand-tuning. "It is not a general solution and has to be done
/// according [to] different topologies manually" (Section 4.3) — the
/// hierarchical approaches replace it.
pub const TUNED_KNEE_MS: f64 = 0.7;
/// Penalty factor applied below the knee.
const TUNED_PENALTY: f64 = 4096.0;
/// Profile vertex weights are clamped to this multiple of the mean.
pub const PROFILE_WEIGHT_CAP: u64 = 16;

/// Convert one link latency to an edge weight.
pub fn edge_weight(latency_ms: f64, weighting: EdgeWeighting) -> u64 {
    debug_assert!(latency_ms > 0.0);
    let ratio = REFERENCE_LATENCY_MS / latency_ms;
    let w = match weighting {
        EdgeWeighting::Standard => EDGE_WEIGHT_SCALE * ratio,
        EdgeWeighting::Tuned => {
            let base = EDGE_WEIGHT_SCALE * ratio;
            if latency_ms < TUNED_KNEE_MS {
                base * TUNED_PENALTY * (TUNED_KNEE_MS / latency_ms)
            } else {
                base
            }
        }
    };
    (w.round() as u64).max(1)
}

/// Build the partitioner input graph. `profile` is required for
/// [`VertexWeighting::Profile`].
///
/// Vertex indices equal node indices in `net`; edges mirror links.
pub fn build_weighted_graph(
    net: &Network,
    vertex: VertexWeighting,
    edge: EdgeWeighting,
    profile: Option<&ProfileData>,
) -> WeightedGraph {
    let vweights: Vec<u64> = match vertex {
        VertexWeighting::Bandwidth => net
            .nodes
            .iter()
            // Scale Mbps so typical weights are O(10²..10⁴); floor 1 so
            // zero-degree nodes stay movable.
            .map(|n| ((net.total_bandwidth(n.id) / 1e6) as u64).max(1))
            .collect(),
        VertexWeighting::Profile => {
            let p = profile.expect("PROF weighting requires profile data");
            assert_eq!(p.node_packets.len(), net.node_count());
            // Cap the heavy tail: a single node's load beyond a bounded
            // multiple of the mean cannot be split anyway, and uncapped
            // outliers (hot HTTP servers) force the partitioner into
            // balance-driven moves that cut tiny-latency links.
            let mean = (p.total_node_packets() / p.node_packets.len().max(1) as u64).max(1);
            let cap = mean * PROFILE_WEIGHT_CAP;
            p.node_packets.iter().map(|&c| c.clamp(1, cap)).collect()
        }
    };
    let edges: Vec<(u32, u32, u64)> = net
        .links
        .iter()
        .map(|l| (l.a.0, l.b.0, edge_weight(l.latency_ms, edge)))
        .collect();
    WeightedGraph::from_edges(vweights, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_topology::{AsId, NodeKind, Point};

    fn two_link_net() -> Network {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Router, Point::new(0.0, 0.0), AsId(0));
        let b = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
        let c = net.add_node(NodeKind::Router, Point::new(2.0, 0.0), AsId(0));
        net.add_link(a, b, 1e9, 0.1); // short
        net.add_link(b, c, 2e9, 10.0); // long
        net
    }

    #[test]
    fn smaller_latency_gives_larger_weight() {
        assert!(
            edge_weight(0.1, EdgeWeighting::Standard) > edge_weight(1.0, EdgeWeighting::Standard)
        );
        assert!(
            edge_weight(1.0, EdgeWeighting::Standard) > edge_weight(10.0, EdgeWeighting::Standard)
        );
    }

    #[test]
    fn tuned_is_steeper_than_standard() {
        let s_ratio = edge_weight(0.1, EdgeWeighting::Standard) as f64
            / edge_weight(1.0, EdgeWeighting::Standard) as f64;
        let t_ratio = edge_weight(0.1, EdgeWeighting::Tuned) as f64
            / edge_weight(1.0, EdgeWeighting::Tuned) as f64;
        assert!(
            t_ratio > s_ratio * 5.0,
            "tuned {t_ratio} vs standard {s_ratio}"
        );
    }

    #[test]
    fn weights_never_zero() {
        assert!(edge_weight(1e6, EdgeWeighting::Standard) >= 1);
        assert!(edge_weight(1e6, EdgeWeighting::Tuned) >= 1);
    }

    #[test]
    fn bandwidth_vertex_weights() {
        let net = two_link_net();
        let g = build_weighted_graph(
            &net,
            VertexWeighting::Bandwidth,
            EdgeWeighting::Standard,
            None,
        );
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        // b touches 1+2 Gbps = 3000 Mbps; a touches 1000.
        assert_eq!(g.vertex_weight(0), 1000);
        assert_eq!(g.vertex_weight(1), 3000);
        assert_eq!(g.vertex_weight(2), 2000);
    }

    #[test]
    fn profile_vertex_weights() {
        let net = two_link_net();
        let mut p = ProfileData::new(3, 2);
        p.node_packets = vec![100, 0, 7];
        let g = build_weighted_graph(
            &net,
            VertexWeighting::Profile,
            EdgeWeighting::Standard,
            Some(&p),
        );
        assert_eq!(g.vertex_weight(0), 100);
        assert_eq!(g.vertex_weight(1), 1, "zero-load nodes floored to 1");
        assert_eq!(g.vertex_weight(2), 7);
    }

    #[test]
    #[should_panic(expected = "requires profile data")]
    fn profile_weighting_needs_profile() {
        let net = two_link_net();
        build_weighted_graph(
            &net,
            VertexWeighting::Profile,
            EdgeWeighting::Standard,
            None,
        );
    }
}
