//! The unified mapping front-end: TOP, TOP2, PROF, PROF2, HTOP, HPROF,
//! plus the related-work baselines (random, ModelNet greedy k-cluster).

use crate::evaluate::{achieved_mll_ms, efficiency, PartitionEvaluation};
use crate::hier::{hierarchical_partition, reduce_graph, HierConfig};
use crate::weights::{build_weighted_graph, EdgeWeighting, VertexWeighting, TUNED_KNEE_MS};
use massf_engine::SyncCostModel;
use massf_netsim::ProfileData;
use massf_partition::{greedy_kcluster, metis_kway, random_partition, KwayConfig, Partition};
use massf_topology::Network;

/// The mapping approaches evaluated in the paper (plus baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingApproach {
    /// Topology-based (Section 3.3), standard latency conversion.
    Top,
    /// TOP with the hand-tuned steeper conversion (Section 4.3).
    Top2,
    /// Profile-based (Section 3.3), standard conversion.
    Prof,
    /// PROF with the tuned conversion.
    Prof2,
    /// Hierarchical topology-based (Section 3.4).
    Htop,
    /// Hierarchical profile-based — the paper's best.
    Hprof,
    /// Uniform random assignment (baseline).
    Random,
    /// ModelNet greedy k-cluster (related work, Section 6).
    GreedyKCluster,
}

impl MappingApproach {
    /// The four approaches of the paper's main figures.
    pub fn paper_four() -> [MappingApproach; 4] {
        [
            MappingApproach::Hprof,
            MappingApproach::Prof2,
            MappingApproach::Htop,
            MappingApproach::Top2,
        ]
    }

    /// The six approaches of the MLL figures (7 and 11).
    pub fn paper_six() -> [MappingApproach; 6] {
        [
            MappingApproach::Hprof,
            MappingApproach::Prof2,
            MappingApproach::Htop,
            MappingApproach::Top2,
            MappingApproach::Prof,
            MappingApproach::Top,
        ]
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            MappingApproach::Top => "TOP",
            MappingApproach::Top2 => "TOP2",
            MappingApproach::Prof => "PROF",
            MappingApproach::Prof2 => "PROF2",
            MappingApproach::Htop => "HTOP",
            MappingApproach::Hprof => "HPROF",
            MappingApproach::Random => "RANDOM",
            MappingApproach::GreedyKCluster => "KCLUSTER",
        }
    }

    /// Does the approach need a profiling run first?
    pub fn needs_profile(self) -> bool {
        matches!(
            self,
            MappingApproach::Prof | MappingApproach::Prof2 | MappingApproach::Hprof
        )
    }

    /// Is it one of the hierarchical (Section 3.4) approaches?
    pub fn is_hierarchical(self) -> bool {
        matches!(self, MappingApproach::Htop | MappingApproach::Hprof)
    }
}

/// Configuration shared by all mappers.
#[derive(Debug, Clone)]
pub struct MappingConfig {
    /// Number of simulation-engine nodes.
    pub engines: usize,
    /// Synchronization-cost model (drives HTOP/HPROF and evaluation).
    pub sync: SyncCostModel,
    /// Underlying multilevel partitioner settings.
    pub kway: KwayConfig,
    /// HTOP/HPROF sweep step, ms.
    pub hier_step_ms: f64,
    /// HTOP/HPROF maximum sweep steps.
    pub hier_max_steps: usize,
}

impl MappingConfig {
    /// Paper-shaped defaults for `engines` engines (METIS-like 5%
    /// balance tolerance; merged-cluster mappers treat it as best
    /// effort).
    pub fn new(engines: usize) -> Self {
        MappingConfig {
            engines,
            sync: SyncCostModel::teragrid(),
            kway: KwayConfig::default(),
            hier_step_ms: 0.1,
            hier_max_steps: 200,
        }
    }
}

/// A completed mapping.
#[derive(Debug, Clone)]
pub struct MappingResult {
    pub approach: MappingApproach,
    /// Node → engine assignment.
    pub partition: Partition,
    /// Achieved minimum link latency across engines, ms
    /// (`f64::INFINITY` when nothing is cut).
    pub achieved_mll_ms: f64,
    /// Static evaluation `E = Es · Ec` of the mapping.
    pub evaluation: PartitionEvaluation,
    /// The winning threshold for hierarchical approaches.
    pub tmll_ms: Option<f64>,
}

/// Map `net` onto `cfg.engines` engines with `approach`. `profile` must
/// be `Some` for the PROF-family approaches.
pub fn map_network(
    net: &Network,
    profile: Option<&ProfileData>,
    approach: MappingApproach,
    cfg: &MappingConfig,
) -> MappingResult {
    let vertex = if approach.needs_profile() {
        VertexWeighting::Profile
    } else {
        VertexWeighting::Bandwidth
    };
    let edge = match approach {
        MappingApproach::Top2 | MappingApproach::Prof2 => EdgeWeighting::Tuned,
        _ => EdgeWeighting::Standard,
    };
    let graph = build_weighted_graph(net, vertex, edge, profile);

    let (partition, tmll_ms) = match approach {
        MappingApproach::Top2 | MappingApproach::Prof2 => {
            // The Section 4.3 manual tuning, in its limit form: the
            // conversion was adjusted until the partitioner no longer cut
            // links below ≈ the synchronization cost (Figures 7/11 show
            // TOP2/PROF2 pinned at ≈ 0.6 ms in both worlds). We realize
            // that limit by pre-merging all links faster than the fixed
            // knee — one threshold, hand-picked, with none of HPROF's
            // sweep or E-evaluation.
            let (reduced, labels) = reduce_graph(net, &graph, TUNED_KNEE_MS);
            let reduced_partition = metis_kway(&reduced, cfg.engines, &cfg.kway);
            let assignment: Vec<u32> = labels
                .iter()
                .map(|&c| reduced_partition.assignment[c as usize])
                .collect();
            (Partition::new(assignment, cfg.engines), None)
        }
        MappingApproach::Htop | MappingApproach::Hprof => {
            let hier_cfg = HierConfig {
                engines: cfg.engines,
                sync: cfg.sync,
                step_ms: cfg.hier_step_ms,
                max_steps: cfg.hier_max_steps,
                kway: cfg.kway,
            };
            let r = hierarchical_partition(net, &graph, &hier_cfg);
            (r.partition, Some(r.tmll_ms))
        }
        MappingApproach::Random => (
            random_partition(net.node_count(), cfg.engines, cfg.kway.seed),
            None,
        ),
        MappingApproach::GreedyKCluster => {
            (greedy_kcluster(&graph, cfg.engines, cfg.kway.seed), None)
        }
        _ => (metis_kway(&graph, cfg.engines, &cfg.kway), None),
    };

    let evaluation = efficiency(net, &graph, &partition, cfg.engines, &cfg.sync);
    let mll = achieved_mll_ms(net, &partition.assignment).unwrap_or(f64::INFINITY);
    MappingResult {
        approach,
        partition,
        achieved_mll_ms: mll,
        evaluation,
        tmll_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_topology::{generate_flat_network, FlatTopologyConfig};

    fn net() -> Network {
        generate_flat_network(&FlatTopologyConfig {
            routers: 300,
            hosts: 80,
            ..FlatTopologyConfig::tiny()
        })
    }

    fn fake_profile(net: &Network, hot_every: usize) -> ProfileData {
        let mut p = ProfileData::new(net.node_count(), net.link_count());
        for (i, c) in p.node_packets.iter_mut().enumerate() {
            *c = if i % hot_every == 0 { 1000 } else { 5 };
        }
        p
    }

    #[test]
    fn all_approaches_produce_valid_partitions() {
        let net = net();
        let profile = fake_profile(&net, 7);
        let cfg = MappingConfig::new(6);
        for approach in [
            MappingApproach::Top,
            MappingApproach::Top2,
            MappingApproach::Prof,
            MappingApproach::Prof2,
            MappingApproach::Htop,
            MappingApproach::Hprof,
            MappingApproach::Random,
            MappingApproach::GreedyKCluster,
        ] {
            let r = map_network(&net, Some(&profile), approach, &cfg);
            assert_eq!(r.partition.len(), net.node_count(), "{approach:?}");
            assert_eq!(r.partition.used_parts(), 6, "{approach:?}");
            assert!(r.achieved_mll_ms > 0.0, "{approach:?}");
        }
    }

    #[test]
    fn hierarchical_achieves_larger_mll_than_flat() {
        let net = net();
        let cfg = MappingConfig::new(6);
        let top = map_network(&net, None, MappingApproach::Top, &cfg);
        let htop = map_network(&net, None, MappingApproach::Htop, &cfg);
        assert!(
            htop.achieved_mll_ms > top.achieved_mll_ms,
            "HTOP {} vs TOP {}",
            htop.achieved_mll_ms,
            top.achieved_mll_ms
        );
        assert!(htop.tmll_ms.is_some());
        assert!(top.tmll_ms.is_none());
    }

    #[test]
    fn tuned_conversion_raises_mll_over_standard() {
        // The Section 4.3 observation: TOP2's steeper conversion avoids
        // cutting the smallest-latency links that plain TOP cuts.
        let net = net();
        let cfg = MappingConfig::new(8);
        let top = map_network(&net, None, MappingApproach::Top, &cfg);
        let top2 = map_network(&net, None, MappingApproach::Top2, &cfg);
        assert!(
            top2.achieved_mll_ms >= top.achieved_mll_ms,
            "TOP2 {} vs TOP {}",
            top2.achieved_mll_ms,
            top.achieved_mll_ms
        );
    }

    #[test]
    fn prof_balances_hot_nodes_better_than_top() {
        // Give a skewed profile; PROF should spread estimated load more
        // evenly than TOP does (measured by estimated Ec on the profile
        // weights).
        let net = net();
        let profile = fake_profile(&net, 11);
        let cfg = MappingConfig::new(6);
        let prof = map_network(&net, Some(&profile), MappingApproach::Prof2, &cfg);
        let top = map_network(&net, Some(&profile), MappingApproach::Top2, &cfg);
        // Evaluate both on PROFILE weights (the "true" load).
        let true_graph = build_weighted_graph(
            &net,
            VertexWeighting::Profile,
            EdgeWeighting::Standard,
            Some(&profile),
        );
        let bal = |p: &Partition| p.balance(&true_graph);
        assert!(
            bal(&prof.partition) <= bal(&top.partition) + 0.05,
            "PROF balance {} vs TOP {}",
            bal(&prof.partition),
            bal(&top.partition)
        );
    }

    #[test]
    fn labels_and_flags() {
        assert_eq!(MappingApproach::Hprof.label(), "HPROF");
        assert!(MappingApproach::Hprof.needs_profile());
        assert!(MappingApproach::Hprof.is_hierarchical());
        assert!(!MappingApproach::Top2.needs_profile());
        assert!(!MappingApproach::Prof2.is_hierarchical());
        assert_eq!(MappingApproach::paper_four().len(), 4);
        assert_eq!(MappingApproach::paper_six().len(), 6);
    }
}
