//! The workspace error type, re-exported at the top of the stack.
//!
//! [`MassfError`] is *defined* in `massf-topology` (`topology/src/error.rs`)
//! because the crates that return it — `massf-routing`, `massf-faults`,
//! `massf-netsim` — sit below `massf-core` in the dependency graph and a
//! definition here would create a cycle. This module is the documented
//! user-facing import point: `use massf_core::error::MassfError`.

pub use massf_topology::MassfError;
