//! The paper's evaluation metrics (Section 4.1).
//!
//! 1. **Application simulation time `T`** — predicted by the
//!    [`crate::clustermodel::ClusterModel`] from the measured run trace.
//! 2. **Achieved MLL** — reported by the partitioner
//!    ([`crate::evaluate::achieved_mll_ms`]).
//! 3. **Load imbalance** — "Assuming the simulation kernel event rates
//!    are k1, k2, …, kn … the load imbalance is normalized by the
//!    standard deviation of {k}": population std-dev / mean of the
//!    per-engine kernel event rates.
//! 4. **Parallel efficiency** — `PE(N, L) = Tseq(L) / (N · T(L, N))`
//!    with `Tseq ≈ TotalEventNumber / MaximalEventRateOnEachNode`.

use crate::clustermodel::ClusterModel;
use massf_engine::ExecutionStats;

/// Normalized load imbalance of measured per-partition loads.
pub fn load_imbalance(partition_rates: &[f64]) -> f64 {
    massf_partition::Partition::normalized_imbalance(partition_rates)
}

/// Parallel efficiency from a windowed run trace.
pub fn parallel_efficiency(stats: &ExecutionStats, engines: usize, model: &ClusterModel) -> f64 {
    model.parallel_efficiency(stats, engines)
}

/// All four Section-4.1 metrics for one mapping + run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentMetrics {
    /// Predicted application simulation time, seconds.
    pub simulation_time_secs: f64,
    /// Achieved minimum link latency across partitions, ms.
    pub achieved_mll_ms: f64,
    /// Normalized load imbalance.
    pub load_imbalance: f64,
    /// Parallel efficiency.
    pub parallel_efficiency: f64,
}

impl ExperimentMetrics {
    /// Derive all metrics from a windowed run.
    pub fn from_run(
        stats: &ExecutionStats,
        achieved_mll_ms: f64,
        engines: usize,
        model: &ClusterModel,
    ) -> Self {
        ExperimentMetrics {
            simulation_time_secs: model.predicted_time_secs(stats, engines),
            achieved_mll_ms,
            load_imbalance: load_imbalance(&stats.partition_event_rates()),
            parallel_efficiency: model.parallel_efficiency(stats, engines),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_zero_for_equal_rates() {
        assert_eq!(load_imbalance(&[7.0; 16]), 0.0);
    }

    #[test]
    fn imbalance_grows_with_spread() {
        let tight = load_imbalance(&[9.0, 10.0, 11.0]);
        let wide = load_imbalance(&[1.0, 10.0, 19.0]);
        assert!(wide > tight * 3.0);
    }

    #[test]
    fn imbalance_is_scale_invariant() {
        let a = load_imbalance(&[1.0, 2.0, 3.0]);
        let b = load_imbalance(&[100.0, 200.0, 300.0]);
        assert!((a - b).abs() < 1e-12);
    }
}
