//! The end-to-end experiment pipeline behind every evaluation figure:
//!
//! 1. **Profiling run** (PROF-family only): simulate briefly under a
//!    naive round-robin partition, collecting per-node event counts and
//!    per-link traffic (Section 3.3).
//! 2. **Mapping**: build the weighted graph and partition it with the
//!    chosen approach.
//! 3. **Measured run**: simulate the full workload, attributing kernel
//!    events to `(window, engine)` cells with the window equal to the
//!    achieved MLL — the exact execution structure of the paper's
//!    barrier-synchronized engine.
//! 4. **Metrics**: simulation time (cluster model), achieved MLL, load
//!    imbalance, parallel efficiency (Section 4.1).

use crate::clustermodel::ClusterModel;
use crate::mappers::{map_network, MappingApproach, MappingConfig, MappingResult};
use crate::metrics::ExperimentMetrics;
use crate::scenario::Scenario;
use massf_engine::{ExecutionStats, SimTime};
use massf_netsim::{NetSimBuilder, ProfileData};

/// Everything produced by one experiment.
pub struct ExperimentOutput {
    pub approach: MappingApproach,
    pub mapping: MappingResult,
    pub metrics: ExperimentMetrics,
    /// Stats of the measured (windowed) run — includes the coarse
    /// per-engine load trace (Figure 3).
    pub run_stats: ExecutionStats,
    /// Traffic counters of the measured run.
    pub run_profile: ProfileData,
    /// The profiling run's traffic counters, when one was needed.
    pub profiling_profile: Option<ProfileData>,
}

/// Fraction of the measured duration used for the profiling run.
const PROFILE_FRACTION: u64 = 4;

/// Floor on the synchronization window to bound window counts when a
/// mapper achieves a pathologically small MLL (TOP on large networks).
/// Equal to the co-location latency floor of the topology generator.
const MIN_WINDOW: SimTime = SimTime(10_000); // 10 µs

/// Run the paper's profiling step by itself: simulate
/// `duration / 4` under the naive partition and return the traffic
/// profile. Exposed so that experiment suites can share one profiling
/// run across all PROF-family approaches.
pub fn run_profiling(scenario: &Scenario, duration: SimTime) -> ProfileData {
    let (app, events) = scenario.make_app();
    let mut builder = NetSimBuilder::new(scenario.net.clone(), scenario.resolver.clone());
    builder.add_initial_events(events);
    let out = builder.run_sequential(app, duration / PROFILE_FRACTION);
    out.profile
}

/// Run the full pipeline for one `(scenario, approach)` pair.
pub fn run_mapping_experiment(
    scenario: &Scenario,
    approach: MappingApproach,
    cfg: &MappingConfig,
    model: &ClusterModel,
    duration: SimTime,
) -> ExperimentOutput {
    let profile = approach
        .needs_profile()
        .then(|| run_profiling(scenario, duration));
    run_mapping_experiment_with_profile(scenario, approach, cfg, model, duration, profile)
}

/// Like [`run_mapping_experiment`], but with the profiling run's result
/// supplied by the caller (required for PROF-family approaches).
pub fn run_mapping_experiment_with_profile(
    scenario: &Scenario,
    approach: MappingApproach,
    cfg: &MappingConfig,
    model: &ClusterModel,
    duration: SimTime,
    profiling_profile: Option<ProfileData>,
) -> ExperimentOutput {
    assert!(
        !approach.needs_profile() || profiling_profile.is_some(),
        "{approach:?} requires a profiling run"
    );

    // 2. Mapping.
    let mapping = map_network(&scenario.net, profiling_profile.as_ref(), approach, cfg);

    // 3. Measured run, windowed at the achieved MLL.
    let window = if mapping.achieved_mll_ms.is_finite() {
        SimTime::from_ms_f64(mapping.achieved_mll_ms).max(MIN_WINDOW)
    } else {
        duration // single partition: one "window"
    };
    let (app, events) = scenario.make_app();
    let mut builder = NetSimBuilder::new(scenario.net.clone(), scenario.resolver.clone());
    builder.add_initial_events(events);
    let out = builder.run_sequential_windowed(
        app,
        duration,
        window,
        &mapping.partition.assignment,
        cfg.engines,
    );

    // 4. Metrics.
    let metrics =
        ExperimentMetrics::from_run(&out.stats, mapping.achieved_mll_ms, cfg.engines, model);
    ExperimentOutput {
        approach,
        mapping,
        metrics,
        run_stats: out.stats,
        run_profile: out.profile,
        profiling_profile,
    }
}

/// Run the full pipeline for several approaches over one scenario,
/// concurrently on the shared worker pool.
///
/// The profiling run is executed once (if any approach needs it) and
/// shared, exactly as `run_suite_once` did sequentially; each
/// approach's mapping + measured run is independent, so they fan out
/// with `par_map`. Output order matches `approaches` order and every
/// run is deterministic, so results are identical at any thread count.
pub fn run_approaches(
    scenario: &Scenario,
    approaches: &[MappingApproach],
    cfg: &MappingConfig,
    model: &ClusterModel,
    duration: SimTime,
) -> Vec<ExperimentOutput> {
    let shared_profile = approaches
        .iter()
        .any(|a| a.needs_profile())
        .then(|| run_profiling(scenario, duration));
    massf_parutil::par_map(approaches, |&approach| {
        let profile = approach
            .needs_profile()
            .then(|| shared_profile.clone().expect("profiling run shared"));
        run_mapping_experiment_with_profile(scenario, approach, cfg, model, duration, profile)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scale, ScenarioKind, WorkloadKind};

    fn scenario() -> Scenario {
        Scenario::build(
            ScenarioKind::SingleAs,
            Scale::Tiny,
            WorkloadKind::ScaLapack,
            7,
        )
    }

    fn cfg() -> MappingConfig {
        let mut c = MappingConfig::new(4);
        // A small virtual cluster for tiny tests.
        c.sync = massf_engine::SyncCostModel::new(20.0, 30.0);
        c
    }

    #[test]
    fn pipeline_produces_complete_metrics() {
        let s = scenario();
        let out = run_mapping_experiment(
            &s,
            MappingApproach::Top2,
            &cfg(),
            &ClusterModel::default(),
            SimTime::from_secs(3),
        );
        assert!(out.metrics.simulation_time_secs > 0.0);
        assert!(out.metrics.achieved_mll_ms > 0.0);
        assert!(out.metrics.parallel_efficiency > 0.0);
        assert!(out.metrics.parallel_efficiency <= 1.0);
        assert!(out.run_stats.total_events > 1000);
        assert!(out.profiling_profile.is_none());
    }

    #[test]
    fn prof_pipeline_runs_profiling_first() {
        let s = scenario();
        let out = run_mapping_experiment(
            &s,
            MappingApproach::Prof2,
            &cfg(),
            &ClusterModel::default(),
            SimTime::from_secs(3),
        );
        let p = out.profiling_profile.expect("profiling run happened");
        assert!(p.total_node_packets() > 0);
    }

    #[test]
    fn hprof_beats_random_on_predicted_time() {
        // A random mapping cuts co-located links, collapsing the MLL and
        // flooding the run with synchronization windows; HPROF must win
        // clearly even at tiny scale. (The TOP-family comparisons are
        // exercised at figure scale in the bench harness, where the
        // paper's small-MLL effect actually appears.)
        let s = scenario();
        let c = cfg();
        let model = ClusterModel::new(c.sync, 10.0);
        let random = run_mapping_experiment(
            &s,
            MappingApproach::Random,
            &c,
            &model,
            SimTime::from_secs(3),
        );
        let hprof = run_mapping_experiment(
            &s,
            MappingApproach::Hprof,
            &c,
            &model,
            SimTime::from_secs(3),
        );
        assert!(
            hprof.metrics.simulation_time_secs < random.metrics.simulation_time_secs,
            "HPROF {} vs RANDOM {}",
            hprof.metrics.simulation_time_secs,
            random.metrics.simulation_time_secs
        );
        assert!(hprof.metrics.parallel_efficiency > random.metrics.parallel_efficiency);
    }

    #[test]
    fn run_approaches_matches_individual_runs() {
        let s = scenario();
        let c = cfg();
        let model = ClusterModel::default();
        let approaches = [
            MappingApproach::Top2,
            MappingApproach::Prof2,
            MappingApproach::Hprof,
        ];
        let dur = SimTime::from_secs(2);
        let batch =
            massf_parutil::with_threads(4, || run_approaches(&s, &approaches, &c, &model, dur));
        assert_eq!(batch.len(), approaches.len());
        let shared = run_profiling(&s, dur);
        for (out, &approach) in batch.iter().zip(&approaches) {
            assert_eq!(out.approach, approach);
            let solo = run_mapping_experiment_with_profile(
                &s,
                approach,
                &c,
                &model,
                dur,
                approach.needs_profile().then(|| shared.clone()),
            );
            assert_eq!(
                out.mapping.partition.assignment,
                solo.mapping.partition.assignment
            );
            assert_eq!(out.run_stats.total_events, solo.run_stats.total_events);
            assert_eq!(
                out.metrics.simulation_time_secs.to_bits(),
                solo.metrics.simulation_time_secs.to_bits()
            );
        }
    }

    #[test]
    fn window_equals_achieved_mll() {
        let s = scenario();
        let out = run_mapping_experiment(
            &s,
            MappingApproach::Htop,
            &cfg(),
            &ClusterModel::default(),
            SimTime::from_secs(2),
        );
        let expected = SimTime::from_ms_f64(out.mapping.achieved_mll_ms);
        assert_eq!(out.run_stats.window, expected.max(super::MIN_WINDOW));
    }
}
