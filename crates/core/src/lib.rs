//! # massf-core
//!
//! The load-balance contribution of *Realistic Large-Scale Online
//! Network Simulation* (Liu & Chien, SC 2004): mapping a simulated
//! network onto parallel simulation engines.
//!
//! The paper models network mapping as graph partitioning (Section 3.2)
//! and compares:
//!
//! * **TOP / TOP2** — topology-based: vertex weight = total link
//!   bandwidth of the node; edge weight from link latency (TOP2 uses the
//!   hand-tuned steeper latency conversion of Section 4.3).
//! * **PROF / PROF2** — profile-based: vertex weight = measured kernel
//!   event count of the node from a profiling run.
//! * **HTOP / HPROF** — this paper's *hierarchical* approaches
//!   (Section 3.4): collapse all links with latency below a threshold
//!   `Tmll`, partition the reduced graph, evaluate the candidate with
//!   the efficiency model `E = Es · Ec`, and sweep `Tmll` to pick the
//!   best — explicitly trading simulation efficiency (large MLL) against
//!   available parallelism (fine-grained balance).
//!
//! The crate also houses the evaluation machinery: achieved-MLL /
//! load-imbalance / parallel-efficiency metrics (Section 4.1), the
//! trace-driven cluster performance model (DESIGN.md substitution #1),
//! and the end-to-end experiment pipeline (profile run → mapping →
//! measured run) used by the figure-regeneration harness.
//!
//! # Example
//!
//! ```no_run
//! use massf_core::prelude::*;
//!
//! // Build the paper's single-AS world at test scale, with HTTP
//! // background traffic plus the ScaLapack application model.
//! let scenario = Scenario::build(
//!     ScenarioKind::SingleAs, Scale::Tiny, WorkloadKind::ScaLapack, 42);
//!
//! // Map onto 4 engines with HPROF and run the measured simulation.
//! let out = run_mapping_experiment(
//!     &scenario,
//!     MappingApproach::Hprof,
//!     &MappingConfig::new(4),
//!     &ClusterModel::default(),
//!     SimTime::from_secs(5),
//! );
//! assert!(out.metrics.achieved_mll_ms >= out.mapping.tmll_ms.expect("HPROF sets a TMLL"));
//! println!("parallel efficiency: {:.2}", out.metrics.parallel_efficiency);
//! ```

#![forbid(unsafe_code)]

pub mod clustermodel;
pub mod error;
pub mod evaluate;
pub mod hier;
pub mod mappers;
pub mod metrics;
pub mod pipeline;
pub mod scenario;
pub mod weights;

pub use clustermodel::ClusterModel;
pub use error::MassfError;
pub use evaluate::{achieved_mll_ms, efficiency, PartitionEvaluation};
pub use hier::{hierarchical_partition, reduce_graph, HierConfig, HierResult, SweepReducer};
pub use mappers::{map_network, MappingApproach, MappingConfig, MappingResult};
pub use metrics::{load_imbalance, parallel_efficiency, ExperimentMetrics};
pub use pipeline::{
    run_approaches, run_mapping_experiment, run_mapping_experiment_with_profile, run_profiling,
    ExperimentOutput,
};
pub use scenario::{Scale, Scenario, ScenarioKind, WorkloadKind};
pub use weights::{build_weighted_graph, EdgeWeighting, VertexWeighting};

/// Convenience re-exports for downstream binaries and examples.
pub mod prelude {
    pub use crate::{
        achieved_mll_ms, build_weighted_graph, hierarchical_partition, load_imbalance, map_network,
        parallel_efficiency, run_approaches, run_mapping_experiment,
        run_mapping_experiment_with_profile, run_profiling, ClusterModel, EdgeWeighting,
        ExperimentMetrics, ExperimentOutput, HierConfig, MappingApproach, MappingConfig,
        MappingResult, MassfError, Scale, Scenario, ScenarioKind, VertexWeighting, WorkloadKind,
    };
    pub use massf_engine::{SimTime, SyncCostModel};
    pub use massf_partition::{metis_kway, KwayConfig, Partition, WeightedGraph};
    pub use massf_topology::{
        generate_flat_network, generate_multi_as_network, FlatTopologyConfig,
        MultiAsTopologyConfig, Network, NodeId,
    };
}
