//! Trace-driven cluster performance model (DESIGN.md substitution #1).
//!
//! MaSSF ran on 90 nodes of the TeraGrid Itanium-2 cluster; we have one
//! machine. The engine's windowed statistics record, for every
//! MLL-length window, how many kernel events each partition handled —
//! which is exactly the work a barrier-synchronized engine performs. The
//! predicted parallel runtime is therefore
//!
//! ```text
//! T(L, N) = Σ_w [ max_p events_p(w) · t_event + C(N) ]
//! ```
//!
//! with `C(N)` the Figure-5 synchronization-cost model and `t_event`
//! the calibrated per-event kernel cost. The sequential baseline follows
//! the paper's Section 4.1 approximation
//! `Tseq = TotalEventNumber / MaximalEventRateOnEachNode`
//! = `TotalEventNumber · t_event`.

use massf_engine::{ExecutionStats, SyncCostModel};

/// Default per-event kernel cost, microseconds. Calibrated to the
/// paper's era (Itanium-2 1.3 GHz, ~100k events/s per engine node).
pub const DEFAULT_EVENT_COST_US: f64 = 10.0;

/// The cluster performance model.
#[derive(Debug, Clone, Copy)]
pub struct ClusterModel {
    pub sync: SyncCostModel,
    /// Per-event processing cost, microseconds.
    pub event_cost_us: f64,
}

impl Default for ClusterModel {
    fn default() -> Self {
        ClusterModel {
            sync: SyncCostModel::teragrid(),
            event_cost_us: DEFAULT_EVENT_COST_US,
        }
    }
}

impl ClusterModel {
    /// Model with explicit parameters.
    pub fn new(sync: SyncCostModel, event_cost_us: f64) -> Self {
        ClusterModel {
            sync,
            event_cost_us,
        }
    }

    /// Predicted parallel runtime (seconds) of the run described by
    /// `stats` on `engines` cluster nodes.
    ///
    /// # Panics
    /// Panics when `stats` carries no windowed trace.
    pub fn predicted_time_secs(&self, stats: &ExecutionStats, engines: usize) -> f64 {
        assert!(
            stats.window_count() > 0,
            "cluster model needs a windowed run"
        );
        let event_secs = self.event_cost_us * 1e-6;
        let sync_secs = self.sync.cost_us(engines) * 1e-6;
        stats.critical_path_events() as f64 * event_secs + stats.window_count() as f64 * sync_secs
    }

    /// The paper's sequential-time approximation (seconds).
    pub fn sequential_time_secs(&self, stats: &ExecutionStats) -> f64 {
        stats.total_events as f64 * self.event_cost_us * 1e-6
    }

    /// Parallel efficiency `PE(N, L) = Tseq / (N · T(L, N))`.
    pub fn parallel_efficiency(&self, stats: &ExecutionStats, engines: usize) -> f64 {
        let t = self.predicted_time_secs(stats, engines);
        if t == 0.0 {
            return 1.0;
        }
        self.sequential_time_secs(stats) / (engines as f64 * t)
    }

    /// The slowdown factor the paper's soft real-time scheduler would
    /// need: predicted wall-clock time over simulated virtual time
    /// (Section 2.1 "run in a scaled-down (slowdown) mode when the
    /// simulated system is too large to run in real time"; the Figure 7
    /// discussion deems ≈ 8× feasible). Values ≤ 1 mean the simulation
    /// keeps up with real time.
    pub fn required_slowdown(&self, stats: &ExecutionStats, engines: usize) -> f64 {
        let virtual_secs = stats.end_time.as_secs_f64();
        if virtual_secs == 0.0 {
            return f64::INFINITY;
        }
        self.predicted_time_secs(stats, engines) / virtual_secs
    }

    /// Fraction of predicted runtime spent in synchronization.
    pub fn sync_fraction(&self, stats: &ExecutionStats, engines: usize) -> f64 {
        let total = self.predicted_time_secs(stats, engines);
        if total == 0.0 {
            return 0.0;
        }
        let sync = stats.window_count() as f64 * self.sync.cost_us(engines) * 1e-6;
        sync / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_engine::SimTime;

    fn stats(per_window_max: Vec<u64>, totals: Vec<u64>, total: u64) -> ExecutionStats {
        // Assemble by hand through the public fields. One window per
        // bucket, so the per-window maxes land one per bucket slot.
        let mut s = dummy();
        s.n_windows = per_window_max.len();
        s.bucket_critical = per_window_max;
        s.partition_totals = totals;
        s.total_events = total;
        s
    }

    fn dummy() -> ExecutionStats {
        ExecutionStats {
            lp_events: vec![],
            window: SimTime::from_ms(1),
            n_windows: 0,
            bucket_critical: vec![],
            bucket_totals: vec![],
            partition_totals: vec![],
            coarse_trace: vec![],
            windows_per_bucket: 1,
            windows_executed: 0,
            windows_skipped: 0,
            barrier_rounds: 0,
            barrier_wait_us: vec![],
            end_time: SimTime::from_secs(1),
            total_events: 0,
        }
    }

    #[test]
    fn perfect_balance_efficiency_bounded_by_sync() {
        // 2 partitions, each window perfectly balanced: max = total/2.
        let model = ClusterModel::new(SyncCostModel::new(0.0, 0.0), 10.0);
        let s = stats(vec![50, 50], vec![100, 100], 200);
        // No sync cost: T = 100 events × 10 µs = 1 ms; Tseq = 2 ms;
        // PE = 2ms / (2 × 1ms) = 1.0.
        assert!((model.parallel_efficiency(&s, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_reduces_efficiency() {
        let model = ClusterModel::new(SyncCostModel::new(0.0, 0.0), 10.0);
        // Same total work, but one partition does everything.
        let balanced = stats(vec![50, 50], vec![100, 100], 200);
        let skewed = stats(vec![100, 100], vec![200, 0], 200);
        assert!(
            model.parallel_efficiency(&balanced, 2) > model.parallel_efficiency(&skewed, 2) * 1.9
        );
    }

    #[test]
    fn sync_cost_reduces_efficiency_with_window_count() {
        let model = ClusterModel::default();
        let few_windows = stats(vec![1000], vec![1000, 1000], 2000);
        let many_windows = stats(vec![10; 100], vec![1000, 1000], 2000);
        assert!(
            model.parallel_efficiency(&few_windows, 90)
                > model.parallel_efficiency(&many_windows, 90)
        );
        assert!(model.sync_fraction(&many_windows, 90) > 0.8);
    }

    #[test]
    fn predicted_time_formula() {
        let model = ClusterModel::new(SyncCostModel::new(100.0, 0.0), 10.0);
        let s = stats(vec![10, 20], vec![30], 30);
        // T = (10+20)·10µs + 2·100µs = 300µs + 200µs = 0.0005 s.
        assert!((model.predicted_time_secs(&s, 4) - 0.0005).abs() < 1e-12);
        assert!((model.sequential_time_secs(&s) - 0.0003).abs() < 1e-12);
    }

    #[test]
    fn slowdown_is_wallclock_over_virtual() {
        let model = ClusterModel::new(SyncCostModel::new(0.0, 0.0), 10.0);
        let mut s = stats(vec![100_000; 2], vec![200_000], 200_000);
        s.end_time = SimTime::from_secs(1);
        // T = 200k × 10 µs = 2 s over 1 virtual second → slowdown 2.
        assert!((model.required_slowdown(&s, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "windowed run")]
    fn requires_windowed_stats() {
        let model = ClusterModel::default();
        model.predicted_time_secs(&dummy(), 4);
    }
}
