//! Experiment scenarios: the paper's two network worlds (single-AS flat
//! OSPF, multi-AS BGP4+OSPF) at selectable scale, with the paper's
//! workload mix (HTTP background + ScaLapack or GridNPB foreground).
//!
//! Paper scale (Sections 4.2, 5.2.1): 20,000 routers / 10,000 hosts
//! (flat) or 100 AS × 200 routers (multi-AS); 8,000 HTTP clients and
//! 2,000 servers; applications run ~30 minutes. Scaled-down presets keep
//! every ratio (80/20 client/server split, host:router ratio, metro
//! clustering) so the load-balance physics is preserved while running
//! on one machine; `Scale::Paper` reproduces the full sizes.

use massf_engine::{LpId, SimTime};
use massf_netsim::{AbortReason, AppLogic, FlowId, NetEvent, SimApi};
use massf_routing::{CostMetric, FlatResolver, MultiAsResolver, PathResolver};
use massf_topology::{
    generate_flat_network, generate_multi_as_network, FlatTopologyConfig, MultiAsTopologyConfig,
    Network, NodeId,
};
use massf_workloads::{
    helical_chain, mixed_bag, visualization_pipeline, HttpConfig, HttpTraffic, Pair, ScaLapackApp,
    ScaLapackConfig, WorkflowApp,
};
use std::sync::Arc;

/// Which network world (paper Section 4 vs Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Flat 20,000-router network, OSPF shortest-path routing.
    SingleAs,
    /// 100 AS × 200 routers, BGP4 policy + OSPF routing.
    MultiAs,
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test size (seconds to run).
    Tiny,
    /// Default figure-regeneration size (minutes on one core).
    Small,
    /// Closer to the paper (tens of minutes).
    Medium,
    /// The paper's full size (20k routers / 100 AS).
    Paper,
}

impl Scale {
    /// Flat-network generator config at this scale.
    pub fn flat_config(self, seed: u64) -> FlatTopologyConfig {
        // Metro counts keep the paper's cluster:engine granularity: a
        // 90-engine mapping needs well over 90 geographic clusters
        // separable at ≥ sync-cost latency, as the real 20,000-router
        // network (hundreds of POP metros) provides.
        let (routers, hosts, metros) = match self {
            Scale::Tiny => (150, 60, 16),
            Scale::Small => (1_000, 500, 150),
            Scale::Medium => (4_000, 2_000, 300),
            Scale::Paper => (20_000, 10_000, 600),
        };
        FlatTopologyConfig {
            routers,
            hosts,
            metro_count: metros,
            seed,
            ..FlatTopologyConfig::default()
        }
    }

    /// Multi-AS generator config at this scale.
    pub fn multi_as_config(self, seed: u64) -> MultiAsTopologyConfig {
        // The 100-AS structure is preserved from Small upward (the AS
        // count, not the per-AS size, is what shapes BGP routing and the
        // partitioning granularity).
        let (ases, per_as, hosts) = match self {
            Scale::Tiny => (8, 20, 60),
            Scale::Small => (100, 10, 500),
            Scale::Medium => (100, 50, 2_000),
            Scale::Paper => (100, 200, 10_000),
        };
        MultiAsTopologyConfig {
            as_count: ases,
            routers_per_as: per_as,
            hosts,
            seed,
            ..MultiAsTopologyConfig::default()
        }
    }

    /// Virtual duration of the measured run (the paper's applications
    /// run ~30 virtual minutes; scaled presets shorten this).
    pub fn run_duration(self) -> SimTime {
        match self {
            Scale::Tiny => SimTime::from_secs(5),
            Scale::Small => SimTime::from_secs(15),
            Scale::Medium => SimTime::from_secs(30),
            Scale::Paper => SimTime::from_secs(120),
        }
    }

    /// Mean HTTP request gap (paper: 5 s; shortened with duration so
    /// each client issues a comparable number of requests).
    pub fn http_gap(self) -> SimTime {
        match self {
            Scale::Tiny => SimTime::from_ms(800),
            Scale::Small => SimTime::from_secs(2),
            Scale::Medium => SimTime::from_secs(3),
            Scale::Paper => SimTime::from_secs(5),
        }
    }
}

/// Which foreground application (the paper evaluates both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    ScaLapack,
    /// HC + VP + MB combination, as in the paper.
    GridNpb,
}

impl WorkloadKind {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::ScaLapack => "ScaLapack",
            WorkloadKind::GridNpb => "GridNPB",
        }
    }
}

/// The foreground application union (concrete type for composition).
/// One instance exists per scenario, so the variant size gap is moot.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum Foreground {
    ScaLapack(ScaLapackApp),
    GridNpb {
        hc: WorkflowApp,
        vp: WorkflowApp,
        mb: WorkflowApp,
    },
}

impl AppLogic for Foreground {
    fn on_flow_complete(&mut self, host: NodeId, flow: FlowId, api: &mut SimApi<'_, '_>) {
        match self {
            Foreground::ScaLapack(a) => a.on_flow_complete(host, flow, api),
            Foreground::GridNpb { hc, vp, mb } => {
                hc.on_flow_complete(host, flow, api);
                vp.on_flow_complete(host, flow, api);
                mb.on_flow_complete(host, flow, api);
            }
        }
    }

    fn on_timer(&mut self, host: NodeId, token: u64, api: &mut SimApi<'_, '_>) {
        match self {
            Foreground::ScaLapack(a) => a.on_timer(host, token, api),
            Foreground::GridNpb { hc, vp, mb } => {
                hc.on_timer(host, token, api);
                vp.on_timer(host, token, api);
                mb.on_timer(host, token, api);
            }
        }
    }

    fn on_datagram(
        &mut self,
        host: NodeId,
        from: FlowId,
        bytes: u32,
        meta: u64,
        api: &mut SimApi<'_, '_>,
    ) {
        match self {
            Foreground::ScaLapack(a) => a.on_datagram(host, from, bytes, meta, api),
            Foreground::GridNpb { hc, vp, mb } => {
                hc.on_datagram(host, from, bytes, meta, api);
                vp.on_datagram(host, from, bytes, meta, api);
                mb.on_datagram(host, from, bytes, meta, api);
            }
        }
    }

    fn on_flow_aborted(
        &mut self,
        host: NodeId,
        flow: FlowId,
        reason: AbortReason,
        api: &mut SimApi<'_, '_>,
    ) {
        match self {
            Foreground::ScaLapack(a) => a.on_flow_aborted(host, flow, reason, api),
            Foreground::GridNpb { hc, vp, mb } => {
                hc.on_flow_aborted(host, flow, reason, api);
                vp.on_flow_aborted(host, flow, reason, api);
                mb.on_flow_aborted(host, flow, reason, api);
            }
        }
    }
}

/// The workload mix used by every paper experiment.
pub type ScenarioApp = Pair<HttpTraffic, Foreground>;

/// A fully built experiment world.
pub struct Scenario {
    pub kind: ScenarioKind,
    pub scale: Scale,
    pub workload: WorkloadKind,
    pub seed: u64,
    pub net: Network,
    pub resolver: Arc<dyn PathResolver>,
    /// HTTP background clients (80% of hosts, as in the paper's
    /// 8,000 : 2,000 split).
    pub clients: Vec<NodeId>,
    /// HTTP background servers.
    pub servers: Vec<NodeId>,
    /// Hosts running the foreground Grid application (the paper uses 7
    /// dedicated application nodes; we reserve 8–16 hosts).
    pub app_hosts: Vec<NodeId>,
}

const NS_HTTP: u8 = 0;
const NS_APP: u8 = 1;
const NS_APP2: u8 = 2;
const NS_APP3: u8 = 3;

impl Scenario {
    /// Generate the network and role assignments.
    pub fn build(kind: ScenarioKind, scale: Scale, workload: WorkloadKind, seed: u64) -> Scenario {
        let (net, resolver): (Network, Arc<dyn PathResolver>) = match kind {
            ScenarioKind::SingleAs => {
                let net = generate_flat_network(&scale.flat_config(seed));
                let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
                (net, resolver)
            }
            ScenarioKind::MultiAs => {
                let cfg = scale.multi_as_config(seed);
                let m = generate_multi_as_network(&cfg);
                let resolver = Arc::new(MultiAsResolver::new(&m, CostMetric::Latency, &cfg));
                (m.network, resolver)
            }
        };
        let hosts = net.host_ids();
        assert!(hosts.len() >= 16, "scenario needs at least 16 hosts");
        // App hosts come off the tail; remaining hosts split 80/20.
        // At least 9 so the three GridNPB workflows get ≥ 3 hosts each.
        let app_count = (hosts.len() / 16).clamp(9, 16);
        let (rest, app_hosts) = hosts.split_at(hosts.len() - app_count);
        let split = rest.len() * 4 / 5;
        let (clients, servers) = rest.split_at(split);
        Scenario {
            kind,
            scale,
            workload,
            seed,
            net,
            resolver,
            clients: clients.to_vec(),
            servers: servers.to_vec(),
            app_hosts: app_hosts.to_vec(),
        }
    }

    /// Build fresh application logic plus its initial events; called
    /// once per run (profiling run, measured run, parallel run, …).
    pub fn make_app(&self) -> (ScenarioApp, Vec<(SimTime, LpId, NetEvent)>) {
        let mut http_cfg =
            HttpConfig::paper(self.clients.clone(), self.servers.clone(), self.seed ^ 0xBB);
        http_cfg.mean_gap = self.scale.http_gap();
        let http = HttpTraffic::new(http_cfg, NS_HTTP);
        let mut events = http.initial_events();

        let fg = match self.workload {
            WorkloadKind::ScaLapack => {
                let n = self.app_hosts.len().min(16);
                let cols = if n >= 8 { 4 } else { 2 };
                let n = n - n % cols;
                let mut cfg = ScaLapackConfig::new(self.app_hosts[..n].to_vec(), cols, u32::MAX);
                // Run for the whole simulation: iterations effectively
                // unbounded; size the panel to the scale.
                cfg.iterations = 10_000;
                cfg.panel_bytes = 300_000;
                cfg.compute = SimTime::from_ms(150);
                let app = ScaLapackApp::new(cfg, NS_APP);
                events.extend(app.initial_events());
                Foreground::ScaLapack(app)
            }
            WorkloadKind::GridNpb => {
                let hosts = &self.app_hosts;
                let third = hosts.len() / 3;
                debug_assert!(third >= 3);
                let compute = SimTime::from_ms(400);
                let hc = WorkflowApp::new(
                    helical_chain(hosts[..third].to_vec(), 12, 150_000, compute),
                    NS_APP,
                );
                let vp = WorkflowApp::new(
                    visualization_pipeline(hosts[third..2 * third].to_vec(), 12, 150_000, compute),
                    NS_APP2,
                );
                let mb = WorkflowApp::new(
                    mixed_bag(hosts[2 * third..].to_vec(), 12, 100_000, compute),
                    NS_APP3,
                );
                events.extend(hc.initial_events());
                events.extend(vp.initial_events());
                events.extend(mb.initial_events());
                Foreground::GridNpb { hc, vp, mb }
            }
        };
        (Pair::new(http, fg), events)
    }

    /// A naive initial partition for profiling runs (round-robin over
    /// nodes — the "naive initial partition" of Section 3.3).
    pub fn naive_partition(&self, engines: usize) -> Vec<u32> {
        (0..self.net.node_count())
            .map(|i| (i % engines) as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_as_scenario_builds() {
        let s = Scenario::build(
            ScenarioKind::SingleAs,
            Scale::Tiny,
            WorkloadKind::ScaLapack,
            1,
        );
        assert!(s.net.router_count() >= 100);
        assert!(!s.clients.is_empty() && !s.servers.is_empty());
        assert!(s.app_hosts.len() >= 9);
        // Roles are disjoint.
        for c in &s.clients {
            assert!(!s.servers.contains(c));
            assert!(!s.app_hosts.contains(c));
        }
        // ~80/20 split.
        let ratio = s.clients.len() as f64 / (s.clients.len() + s.servers.len()) as f64;
        assert!((0.75..0.85).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn multi_as_scenario_builds() {
        let s = Scenario::build(ScenarioKind::MultiAs, Scale::Tiny, WorkloadKind::GridNpb, 2);
        assert!(s.net.as_ids().len() >= 2);
        let (_, events) = s.make_app();
        assert!(!events.is_empty());
    }

    #[test]
    fn make_app_is_repeatable() {
        let s = Scenario::build(
            ScenarioKind::SingleAs,
            Scale::Tiny,
            WorkloadKind::ScaLapack,
            3,
        );
        let (_, e1) = s.make_app();
        let (_, e2) = s.make_app();
        assert_eq!(e1.len(), e2.len());
        for (a, b) in e1.iter().zip(&e2) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn naive_partition_round_robins() {
        let s = Scenario::build(
            ScenarioKind::SingleAs,
            Scale::Tiny,
            WorkloadKind::ScaLapack,
            4,
        );
        let p = s.naive_partition(7);
        assert_eq!(p.len(), s.net.node_count());
        assert!(p.iter().all(|&x| x < 7));
        assert_eq!(p[0], 0);
        assert_eq!(p[8], 1);
    }

    #[test]
    fn paper_scale_configs_match_paper() {
        let f = Scale::Paper.flat_config(0);
        assert_eq!((f.routers, f.hosts), (20_000, 10_000));
        let m = Scale::Paper.multi_as_config(0);
        assert_eq!((m.as_count, m.routers_per_as, m.hosts), (100, 200, 10_000));
        assert_eq!(Scale::Paper.http_gap(), SimTime::from_secs(5));
    }
}
