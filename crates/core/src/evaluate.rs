//! Partition evaluation without running the simulation (Section 3.4.3).
//!
//! A candidate partition is scored `E = Es · Ec`:
//!
//! * `Es = (MLL − C_N) / MLL` — synchronization efficiency from the
//!   achieved minimum link latency across partitions and the barrier
//!   cost `C_N` of `N` engines;
//! * `Ec = C_avg / C_max` — computational balance from the estimated
//!   per-partition loads.
//!
//! "Maximizing Es and Ec separately does not work because they represent
//! the tradeoff between simulation efficiency and available parallelism."

use massf_engine::SyncCostModel;
use massf_partition::{Partition, WeightedGraph};
use massf_topology::Network;

/// Minimum link latency across partitions, ms. `None` when no link is
/// cut (everything in one part — unbounded decoupling).
pub fn achieved_mll_ms(net: &Network, assignment: &[u32]) -> Option<f64> {
    debug_assert_eq!(assignment.len(), net.node_count());
    net.links
        .iter()
        .filter(|l| assignment[l.a.index()] != assignment[l.b.index()])
        .map(|l| l.latency_ms)
        .min_by(|x, y| x.partial_cmp(y).expect("latencies are finite"))
}

/// The evaluation of one candidate partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionEvaluation {
    /// Achieved MLL, ms (`f64::INFINITY` when nothing is cut).
    pub mll_ms: f64,
    /// Synchronization efficiency `Es` (clamped to `[0, 1]`).
    pub es: f64,
    /// Balance efficiency `Ec ∈ (0, 1]`.
    pub ec: f64,
    /// Overall `E = Es · Ec`.
    pub e: f64,
}

/// Score `partition` of `graph` projected on `net` for `engines` nodes.
pub fn efficiency(
    net: &Network,
    graph: &WeightedGraph,
    partition: &Partition,
    engines: usize,
    sync: &SyncCostModel,
) -> PartitionEvaluation {
    let mll_ms = achieved_mll_ms(net, &partition.assignment).unwrap_or(f64::INFINITY);
    let cost_ms = sync.cost_us(engines) / 1_000.0;
    let es = if mll_ms.is_infinite() {
        1.0
    } else {
        ((mll_ms - cost_ms) / mll_ms).clamp(0.0, 1.0)
    };
    let weights = partition.part_weights(graph);
    let max = weights.iter().copied().max().unwrap_or(0) as f64;
    let avg = weights.iter().sum::<u64>() as f64 / partition.k as f64;
    let ec = if max == 0.0 {
        1.0
    } else {
        (avg / max).clamp(0.0, 1.0)
    };
    PartitionEvaluation {
        mll_ms,
        es,
        ec,
        e: es * ec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_engine::SyncCostModel;
    use massf_topology::{AsId, NodeKind, Point};

    /// Path a-b-c-d with latencies 0.2, 5.0, 0.3 ms.
    fn path_net() -> Network {
        let mut net = Network::new();
        let ids: Vec<_> = (0..4)
            .map(|i| net.add_node(NodeKind::Router, Point::new(i as f64, 0.0), AsId(0)))
            .collect();
        net.add_link(ids[0], ids[1], 1e9, 0.2);
        net.add_link(ids[1], ids[2], 1e9, 5.0);
        net.add_link(ids[2], ids[3], 1e9, 0.3);
        net
    }

    fn graph(net: &Network) -> WeightedGraph {
        crate::weights::build_weighted_graph(
            net,
            crate::weights::VertexWeighting::Bandwidth,
            crate::weights::EdgeWeighting::Standard,
            None,
        )
    }

    #[test]
    fn mll_is_min_cut_latency() {
        let net = path_net();
        // Cut only the middle link.
        assert_eq!(achieved_mll_ms(&net, &[0, 0, 1, 1]), Some(5.0));
        // Cut the first and middle.
        assert_eq!(achieved_mll_ms(&net, &[0, 1, 2, 2]), Some(0.2));
        // No cut.
        assert_eq!(achieved_mll_ms(&net, &[0, 0, 0, 0]), None);
    }

    #[test]
    fn es_rewards_larger_mll() {
        let net = path_net();
        let g = graph(&net);
        let sync = SyncCostModel::teragrid();
        let good = efficiency(&net, &g, &Partition::new(vec![0, 0, 1, 1], 2), 90, &sync);
        let bad = efficiency(&net, &g, &Partition::new(vec![0, 1, 1, 1], 2), 90, &sync);
        assert!(good.mll_ms > bad.mll_ms);
        assert!(good.es > bad.es);
        // C(90) ≈ 0.57 ms: Es(5ms) ≈ (5-0.57)/5 ≈ 0.885.
        assert!((good.es - 0.885).abs() < 0.02, "Es = {}", good.es);
    }

    #[test]
    fn es_zero_when_mll_below_sync_cost() {
        let net = path_net();
        let g = graph(&net);
        let sync = SyncCostModel::teragrid();
        // MLL 0.2 ms < C(90) ≈ 0.57 ms → Es clamps to 0.
        let eval = efficiency(&net, &g, &Partition::new(vec![0, 1, 2, 2], 3), 90, &sync);
        assert_eq!(eval.es, 0.0);
        assert_eq!(eval.e, 0.0);
    }

    #[test]
    fn ec_is_avg_over_max() {
        let net = path_net();
        let g = graph(&net);
        // All vertices weight 1000 except b,c = 2000. Split {a} | {b,c,d}:
        // weights 1000 vs 5000, avg 3000 → Ec = 0.6.
        let eval = efficiency(
            &net,
            &g,
            &Partition::new(vec![0, 1, 1, 1], 2),
            2,
            &SyncCostModel::new(0.0, 0.0),
        );
        assert!((eval.ec - 0.6).abs() < 1e-9, "Ec = {}", eval.ec);
    }

    #[test]
    fn uncut_partition_has_perfect_es() {
        let net = path_net();
        let g = graph(&net);
        let eval = efficiency(
            &net,
            &g,
            &Partition::new(vec![0, 0, 0, 0], 1),
            1,
            &SyncCostModel::teragrid(),
        );
        assert_eq!(eval.es, 1.0);
        assert!(eval.mll_ms.is_infinite());
    }
}
