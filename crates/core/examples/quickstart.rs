//! Quickstart: build a network, map it onto simulation engines with
//! HPROF, run the packet-level simulation, and read the metrics.
//!
//! ```sh
//! cargo run --release -p massf-core --example quickstart
//! ```

use massf_core::prelude::*;

fn main() {
    // 1. A scenario bundles a generated topology, routing, and the
    //    paper's workload mix (HTTP background + a Grid application).
    let scenario = Scenario::build(
        ScenarioKind::SingleAs,
        Scale::Tiny,
        WorkloadKind::ScaLapack,
        42,
    );
    println!(
        "network: {} routers, {} hosts, {} links (min link latency {:.3} ms)",
        scenario.net.router_count(),
        scenario.net.host_count(),
        scenario.net.link_count(),
        scenario.net.min_link_latency_ms().unwrap_or(0.0)
    );

    // 2. Map the network onto 4 simulation engines with the paper's
    //    hierarchical profile-based approach (profiling run included).
    let cfg = MappingConfig::new(4);
    let model = ClusterModel::default();
    let out = run_mapping_experiment(
        &scenario,
        MappingApproach::Hprof,
        &cfg,
        &model,
        SimTime::from_secs(5),
    );

    // 3. Inspect the mapping and the run.
    println!(
        "HPROF picked Tmll = {:.1} ms; achieved MLL = {:.3} ms",
        out.mapping.tmll_ms.unwrap_or(0.0),
        out.metrics.achieved_mll_ms
    );
    println!(
        "static evaluation: Es = {:.3}, Ec = {:.3}, E = {:.3}",
        out.mapping.evaluation.es, out.mapping.evaluation.ec, out.mapping.evaluation.e
    );
    println!(
        "measured run: {} kernel events, {} flows completed, {} drops",
        out.run_stats.total_events, out.run_profile.completed_flows, out.run_profile.drops
    );
    println!(
        "metrics: T = {:.3} s (modeled), imbalance = {:.3}, PE = {:.3}",
        out.metrics.simulation_time_secs,
        out.metrics.load_imbalance,
        out.metrics.parallel_efficiency
    );

    // 4. For comparison: the same run under a naive random mapping.
    let rand_out = run_mapping_experiment(
        &scenario,
        MappingApproach::Random,
        &cfg,
        &model,
        SimTime::from_secs(5),
    );
    println!(
        "random mapping for contrast: MLL = {:.3} ms, T = {:.3} s, PE = {:.3}",
        rand_out.metrics.achieved_mll_ms,
        rand_out.metrics.simulation_time_secs,
        rand_out.metrics.parallel_efficiency
    );
}
