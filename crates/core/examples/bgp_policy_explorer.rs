//! Explore the automatic BGP routing configuration (paper Section 5.1):
//! AS classification, business relationships, valley-free route
//! selection, and the difference between BGP paths and pure shortest
//! paths ("connectivity does not equal reachability").
//!
//! ```sh
//! cargo run --release -p massf-core --example bgp_policy_explorer
//! ```

use massf_routing::bgp::is_valley_free;
use massf_routing::{BgpRib, CostMetric, MultiAsResolver, PathResolver};
use massf_topology::{generate_multi_as_network, AsClass, MultiAsTopologyConfig};

fn main() {
    let cfg = MultiAsTopologyConfig {
        as_count: 30,
        routers_per_as: 10,
        hosts: 60,
        ..MultiAsTopologyConfig::default()
    };
    let m = generate_multi_as_network(&cfg);
    let g = &m.as_graph;

    // -- Step 2 of the procedure: classification --
    let count = |class: AsClass| g.classes.iter().filter(|&&c| c == class).count();
    println!("AS classification ({} ASes):", g.n);
    println!("  Core (dense core / Tier-1): {}", count(AsClass::Core));
    println!(
        "  Regional ISP:               {}",
        count(AsClass::RegionalIsp)
    );
    println!("  Stub (customer):            {}", count(AsClass::Stub));

    // -- Step 3: relationships --
    let (mut pc, mut pp) = (0, 0);
    for e in &g.edges {
        match e.rel {
            massf_topology::AsRelationship::PeerPeer => pp += 1,
            _ => pc += 1,
        }
    }
    println!("AS adjacencies: {pc} provider/customer, {pp} peer/peer");

    // -- BGP convergence and policy effects --
    let rib = BgpRib::compute(g);
    println!(
        "\nBGP converged in {} rounds; reachability {:.1}%",
        rib.rounds,
        rib.reachability_fraction() * 100.0
    );

    // Show a few selected routes with their policy character.
    println!("\nsample routes (source AS 5):");
    for dst in [0usize, 10, 20, 29] {
        match rib.as_path(5, dst) {
            Some(path) => {
                let mut full = vec![5usize];
                full.extend(path.iter().map(|&x| x as usize));
                println!(
                    "  5 → {dst}: AS path {:?} (valley-free: {})",
                    full,
                    is_valley_free(g, &full)
                );
            }
            None => println!("  5 → {dst}: unreachable under policy"),
        }
    }

    // -- Policy routing vs shortest paths --
    // BGP prefers customer routes over shorter peer/provider routes, so
    // some selected AS paths are longer than the hop-count shortest path
    // through the AS graph. Count them.
    let mut longer = 0usize;
    let mut total = 0usize;
    for s in 0..g.n {
        let hops = bfs_hops(g, s);
        for (d, &h) in hops.iter().enumerate().take(g.n) {
            if s == d {
                continue;
            }
            if let Some(path) = rib.as_path(s, d) {
                total += 1;
                if path.len() > h {
                    longer += 1;
                }
            }
        }
    }
    println!(
        "\npolicy inflation: {longer}/{total} AS paths ({:.1}%) are longer than",
        longer as f64 / total as f64 * 100.0
    );
    println!("the unconstrained shortest AS path — the cost of valley-free routing.");

    // -- End-to-end: stub default routing in action --
    let resolver = MultiAsResolver::new(&m, CostMetric::Latency, &cfg);
    let hosts = m.network.host_ids();
    if let (Some(&a), Some(&b)) = (hosts.first(), hosts.last()) {
        if let Some(path) = resolver.route(a, b) {
            let as_seq: Vec<u16> = {
                let mut v: Vec<u16> = path
                    .iter()
                    .map(|n| m.network.nodes[n.index()].as_id.0)
                    .collect();
                v.dedup();
                v
            };
            println!(
                "\nhost route {a:?} → {b:?}: {} router hops through ASes {as_seq:?}",
                path.len() - 1
            );
        }
    }
}

/// Hop counts from `s` over the raw AS adjacency (ignoring policy).
fn bfs_hops(g: &massf_topology::AsGraph, s: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n];
    let mut queue = std::collections::VecDeque::new();
    dist[s] = 0;
    queue.push_back(s);
    while let Some(x) = queue.pop_front() {
        for (y, _) in g.neighbors(x) {
            if dist[y] == usize::MAX {
                dist[y] = dist[x] + 1;
                queue.push_back(y);
            }
        }
    }
    dist
}
