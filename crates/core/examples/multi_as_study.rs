//! The paper's Section 5 study in miniature: a multi-AS Internet-like
//! network with automatically configured BGP policy routing, evaluated
//! under the same mapping approaches.
//!
//! ```sh
//! cargo run --release -p massf-core --example multi_as_study
//! ```

use massf_core::prelude::*;

fn main() {
    let scenario = Scenario::build(
        ScenarioKind::MultiAs,
        Scale::Tiny,
        WorkloadKind::GridNpb,
        2004,
    );
    println!(
        "multi-AS network: {} ASes, {} routers, {} hosts",
        scenario.net.as_ids().len(),
        scenario.net.router_count(),
        scenario.net.host_count()
    );
    let inter = scenario.net.links.iter().filter(|l| l.inter_as).count();
    println!(
        "links: {} total, {} inter-AS (BGP-routed), {} intra-AS (OSPF-routed)\n",
        scenario.net.link_count(),
        inter,
        scenario.net.link_count() - inter
    );

    let engines = 6;
    let cfg = MappingConfig::new(engines);
    let model = ClusterModel::default();
    let duration = SimTime::from_secs(5);
    let profile = run_profiling(&scenario, duration);

    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>8}",
        "approach", "MLL[ms]", "T[s]", "imbalance", "PE"
    );
    for approach in MappingApproach::paper_six() {
        let out = run_mapping_experiment_with_profile(
            &scenario,
            approach,
            &cfg,
            &model,
            duration,
            approach.needs_profile().then(|| profile.clone()),
        );
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>12.3} {:>8.3}",
            approach.label(),
            out.metrics.achieved_mll_ms,
            out.metrics.simulation_time_secs,
            out.metrics.load_imbalance,
            out.metrics.parallel_efficiency,
        );
    }
    println!("\nBGP traffic is less coupled to topology than OSPF traffic, so the");
    println!("multi-AS world shows larger load imbalance — and a bigger win for");
    println!("the profile-based approaches (paper Section 5.2.2).");
}
