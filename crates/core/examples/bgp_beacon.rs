//! The BGP beacon study the paper proposes as future validation
//! (Section 7): announce and withdraw a prefix on a schedule and observe
//! the update churn — withdrawals trigger path exploration ("path
//! hunting"), so they cost more messages and rounds than announcements.
//!
//! ```sh
//! cargo run --release -p massf-core --example bgp_beacon
//! ```

use massf_routing::{beacon_schedule, BeaconSim};
use massf_topology::{AsClass, AsGraph};

fn main() {
    let g = AsGraph::generate(80, 2, 0.06, 2004);
    let stubs: Vec<usize> = (0..g.n)
        .filter(|&a| g.classes[a] == AsClass::Stub)
        .collect();
    println!(
        "AS graph: {} ASes ({} stubs, {} core)",
        g.n,
        stubs.len(),
        g.core_ases().len()
    );

    // Beacon from a multi-homed stub — the interesting case, since
    // withdrawal forces every AS to hunt through alternate paths.
    let origin = stubs
        .iter()
        .copied()
        .find(|&a| g.providers(a).len() >= 2)
        .unwrap_or(stubs[0]);
    println!(
        "beacon origin: AS {origin} ({} providers)\n",
        g.providers(origin).len()
    );

    println!(
        "{:>8} {:>10} {:>10} {:>13}",
        "episode", "rounds", "messages", "withdrawals"
    );
    let episodes = beacon_schedule(&g, origin, 3);
    for (i, e) in episodes.iter().enumerate() {
        let kind = if i % 2 == 0 { "announce" } else { "withdraw" };
        println!(
            "{:>8} {:>10} {:>10} {:>13}",
            kind, e.rounds, e.messages, e.withdrawals
        );
    }

    // Show one AS's view flipping.
    let mut sim = BeaconSim::new(&g, origin);
    sim.announce();
    let observer = (0..g.n)
        .filter(|&a| a != origin)
        .max_by_key(|&a| sim.path_of(a).map(|p| p.len()).unwrap_or(0))
        .expect("some observer");
    println!(
        "\nfarthest observer AS {observer} selected path: {:?}",
        sim.path_of(observer)
            .expect("observer chosen among reachable ASes")
    );
    sim.withdraw();
    println!(
        "after withdrawal it holds {} route (as expected)",
        if sim.path_of(observer).is_none() {
            "no"
        } else {
            "a stale"
        }
    );

    let announce_avg: f64 = episodes
        .iter()
        .step_by(2)
        .map(|e| e.messages as f64)
        .sum::<f64>()
        / 3.0;
    let withdraw_avg: f64 = episodes
        .iter()
        .skip(1)
        .step_by(2)
        .map(|e| e.messages as f64)
        .sum::<f64>()
        / 3.0;
    println!(
        "\nmean messages: announce {announce_avg:.0}, withdraw {withdraw_avg:.0} \
         (withdrawal churn ×{:.2})",
        withdraw_avg / announce_avg
    );
}
