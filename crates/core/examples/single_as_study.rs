//! The paper's Section 4 study in miniature: compare every mapping
//! approach on a flat single-AS OSPF network and print the four
//! evaluation metrics side by side.
//!
//! ```sh
//! cargo run --release -p massf-core --example single_as_study
//! ```

use massf_core::prelude::*;

fn main() {
    let scenario = Scenario::build(
        ScenarioKind::SingleAs,
        Scale::Tiny,
        WorkloadKind::ScaLapack,
        2004,
    );
    let engines = 6;
    let cfg = MappingConfig::new(engines);
    let model = ClusterModel::default();
    let duration = SimTime::from_secs(5);

    // Share one profiling run across the PROF-family approaches, as the
    // paper's methodology does.
    let profile = run_profiling(&scenario, duration);

    println!(
        "single-AS network: {} routers / {} hosts on {} engines\n",
        scenario.net.router_count(),
        scenario.net.host_count(),
        engines
    );
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>8} {:>10}",
        "approach", "MLL[ms]", "T[s]", "imbalance", "PE", "Tmll[ms]"
    );
    for approach in [
        MappingApproach::Top,
        MappingApproach::Top2,
        MappingApproach::Prof,
        MappingApproach::Prof2,
        MappingApproach::Htop,
        MappingApproach::Hprof,
        MappingApproach::GreedyKCluster,
        MappingApproach::Random,
    ] {
        let out = run_mapping_experiment_with_profile(
            &scenario,
            approach,
            &cfg,
            &model,
            duration,
            approach.needs_profile().then(|| profile.clone()),
        );
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>12.3} {:>8.3} {:>10}",
            approach.label(),
            out.metrics.achieved_mll_ms,
            out.metrics.simulation_time_secs,
            out.metrics.load_imbalance,
            out.metrics.parallel_efficiency,
            out.mapping
                .tmll_ms
                .map(|t| format!("{t:.1}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("\n(The hierarchical approaches guarantee MLL ≥ Tmll by merging");
    println!("all faster links before partitioning — Section 3.4 of the paper.)");
}
