//! Fault scripts: scheduled timelines of failure events.

use massf_engine::SimTime;
use massf_topology::{LinkId, MassfError, Network, NodeId, NodeKind};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// One kind of scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The link stops carrying packets; in-flight packets are dropped.
    LinkDown(LinkId),
    /// The link comes back up.
    LinkUp(LinkId),
    /// The router (or host) stops forwarding; packets at or through it
    /// are dropped.
    RouterCrash(NodeId),
    /// The router recovers.
    RouterRecover(NodeId),
    /// The BGP session between two ASes fails: inter-domain routing
    /// re-converges on the reduced AS graph.
    AsAdjacencyFail { as_a: u16, as_b: u16 },
    /// The BGP session is re-established.
    AsAdjacencyRestore { as_a: u16, as_b: u16 },
}

/// A fault at a scheduled virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub at: SimTime,
    pub kind: FaultKind,
}

/// An ordered timeline of fault events. Scripts are plain data: build
/// one with the fluent methods (or [`FaultScript::random_link_flaps`]),
/// then compile it into a [`crate::FaultState`] to drive a simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultScript {
    events: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty script.
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Append a raw event.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) -> &mut Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Schedule `link` to go down at `at`.
    pub fn link_down(&mut self, at: SimTime, link: LinkId) -> &mut Self {
        self.push(at, FaultKind::LinkDown(link))
    }

    /// Schedule `link` to come back up at `at`.
    pub fn link_up(&mut self, at: SimTime, link: LinkId) -> &mut Self {
        self.push(at, FaultKind::LinkUp(link))
    }

    /// Schedule `node` to crash at `at`.
    pub fn router_crash(&mut self, at: SimTime, node: NodeId) -> &mut Self {
        self.push(at, FaultKind::RouterCrash(node))
    }

    /// Schedule `node` to recover at `at`.
    pub fn router_recover(&mut self, at: SimTime, node: NodeId) -> &mut Self {
        self.push(at, FaultKind::RouterRecover(node))
    }

    /// Schedule the `as_a`–`as_b` BGP adjacency to fail at `at`.
    pub fn adjacency_fail(&mut self, at: SimTime, as_a: u16, as_b: u16) -> &mut Self {
        self.push(at, FaultKind::AsAdjacencyFail { as_a, as_b })
    }

    /// Schedule the `as_a`–`as_b` BGP adjacency to be restored at `at`.
    pub fn adjacency_restore(&mut self, at: SimTime, as_a: u16, as_b: u16) -> &mut Self {
        self.push(at, FaultKind::AsAdjacencyRestore { as_a, as_b })
    }

    /// The events in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the script empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted by time (stable: ties keep insertion order).
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|e| e.at);
        sorted
    }

    /// Validate the script against `net`: every referenced link/node
    /// must exist, links may only go down when up (and vice versa),
    /// routers may only crash when alive, and adjacency events must
    /// reference two distinct ASes. Returns [`MassfError::InvalidFaultScript`]
    /// describing the first violation in time order.
    pub fn validate(&self, net: &Network) -> Result<(), MassfError> {
        let bad = |msg: String| Err(MassfError::InvalidFaultScript(msg));
        let mut link_up = vec![true; net.links.len()];
        let mut node_up = vec![true; net.node_count()];
        let mut adj_fails: std::collections::HashMap<(u16, u16), i32> =
            std::collections::HashMap::new();
        for e in self.sorted_events() {
            match e.kind {
                FaultKind::LinkDown(l) | FaultKind::LinkUp(l) => {
                    let Some(up) = link_up.get_mut(l.index()) else {
                        return bad(format!("link {} out of range", l.0));
                    };
                    let down_event = matches!(e.kind, FaultKind::LinkDown(_));
                    if *up != down_event {
                        return bad(format!(
                            "link {} already {} at {} ns",
                            l.0,
                            if down_event { "down" } else { "up" },
                            e.at.as_ns()
                        ));
                    }
                    *up = !down_event;
                }
                FaultKind::RouterCrash(n) | FaultKind::RouterRecover(n) => {
                    let Some(up) = node_up.get_mut(n.index()) else {
                        return bad(format!("node {} out of range", n.0));
                    };
                    let crash = matches!(e.kind, FaultKind::RouterCrash(_));
                    if *up != crash {
                        return bad(format!(
                            "node {} already {} at {} ns",
                            n.0,
                            if crash { "down" } else { "up" },
                            e.at.as_ns()
                        ));
                    }
                    *up = !crash;
                }
                FaultKind::AsAdjacencyFail { as_a, as_b }
                | FaultKind::AsAdjacencyRestore { as_a, as_b } => {
                    if as_a == as_b {
                        return bad(format!("adjacency event on a single AS {as_a}"));
                    }
                    let key = (as_a.min(as_b), as_a.max(as_b));
                    let count = adj_fails.entry(key).or_insert(0);
                    if matches!(e.kind, FaultKind::AsAdjacencyFail { .. }) {
                        *count += 1;
                    } else {
                        *count -= 1;
                        if *count < 0 {
                            return bad(format!(
                                "adjacency {}-{} restored while up at {} ns",
                                as_a,
                                as_b,
                                e.at.as_ns()
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// A deterministic, seeded link-flap workload: `flaps` episodes,
    /// each taking one random router–router link down for `down_for`,
    /// with down-events spread uniformly over `[start, end)`. Host
    /// access links are excluded so the study measures *rerouting*, not
    /// guaranteed partition. The same `(net, args, seed)` always yields
    /// the same script.
    pub fn random_link_flaps(
        net: &Network,
        flaps: usize,
        down_for: SimTime,
        start: SimTime,
        end: SimTime,
        seed: u64,
    ) -> Result<FaultScript, MassfError> {
        if end <= start {
            return Err(MassfError::InvalidConfig(format!(
                "flap window empty: [{}, {}) ns",
                start.as_ns(),
                end.as_ns()
            )));
        }
        let candidates: Vec<LinkId> = net
            .links
            .iter()
            .filter(|l| {
                net.nodes[l.a.index()].kind == NodeKind::Router
                    && net.nodes[l.b.index()].kind == NodeKind::Router
            })
            .map(|l| l.id)
            .collect();
        if candidates.is_empty() {
            return Err(MassfError::InvalidFaultScript(
                "no router-router links to flap".into(),
            ));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut script = FaultScript::new();
        let span = end.as_ns() - start.as_ns();
        // One link can be down once at a time; drawing per-flap links
        // without immediate repetition keeps episodes independent.
        let mut busy_until: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for _ in 0..flaps {
            let at = SimTime(start.as_ns() + rng.gen_range(0..span));
            let link = candidates[rng.gen_range(0..candidates.len())];
            let free = busy_until.get(&link.0).copied().unwrap_or(0);
            if at.as_ns() < free {
                continue; // this link is still down from an earlier flap
            }
            let up_at = at + down_for;
            script.link_down(at, link);
            script.link_up(up_at, link);
            busy_until.insert(link.0, up_at.as_ns() + 1);
        }
        Ok(script)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_topology::{AsId, Point};

    fn square() -> Network {
        let mut net = Network::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| net.add_node(NodeKind::Router, Point::new(i as f64, 0.0), AsId(0)))
            .collect();
        net.add_link(ids[0], ids[1], 1e9, 1.0);
        net.add_link(ids[1], ids[2], 1e9, 1.0);
        net.add_link(ids[2], ids[3], 1e9, 1.0);
        net.add_link(ids[3], ids[0], 1e9, 1.0);
        net
    }

    #[test]
    fn builder_and_sorting() {
        let mut s = FaultScript::new();
        s.link_down(SimTime::from_ms(50), LinkId(1))
            .link_up(SimTime::from_ms(20), LinkId(1));
        assert_eq!(s.len(), 2);
        let sorted = s.sorted_events();
        assert_eq!(sorted[0].at, SimTime::from_ms(20));
        assert_eq!(sorted[1].at, SimTime::from_ms(50));
    }

    #[test]
    fn equal_times_keep_insertion_order() {
        let mut s = FaultScript::new();
        s.link_down(SimTime::from_ms(5), LinkId(0));
        s.router_crash(SimTime::from_ms(5), NodeId(2));
        let sorted = s.sorted_events();
        assert_eq!(sorted[0].kind, FaultKind::LinkDown(LinkId(0)));
        assert_eq!(sorted[1].kind, FaultKind::RouterCrash(NodeId(2)));
    }

    #[test]
    fn validate_accepts_well_formed() {
        let net = square();
        let mut s = FaultScript::new();
        s.link_down(SimTime::from_ms(10), LinkId(0))
            .link_up(SimTime::from_ms(20), LinkId(0))
            .router_crash(SimTime::from_ms(15), NodeId(3))
            .router_recover(SimTime::from_ms(30), NodeId(3));
        assert_eq!(s.validate(&net), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_range_and_double_down() {
        let net = square();
        let mut s = FaultScript::new();
        s.link_down(SimTime::from_ms(1), LinkId(99));
        assert!(matches!(
            s.validate(&net),
            Err(MassfError::InvalidFaultScript(_))
        ));

        let mut s = FaultScript::new();
        s.link_down(SimTime::from_ms(1), LinkId(0));
        s.link_down(SimTime::from_ms(2), LinkId(0));
        assert!(s.validate(&net).is_err());

        let mut s = FaultScript::new();
        s.link_up(SimTime::from_ms(1), LinkId(0)); // up while up
        assert!(s.validate(&net).is_err());

        let mut s = FaultScript::new();
        s.adjacency_restore(SimTime::from_ms(1), 0, 1); // restore while up
        assert!(s.validate(&net).is_err());
    }

    #[test]
    fn random_flaps_deterministic_and_valid() {
        let net = square();
        let mk = || {
            FaultScript::random_link_flaps(
                &net,
                5,
                SimTime::from_ms(100),
                SimTime::from_ms(100),
                SimTime::from_secs(2),
                42,
            )
            .expect("square net has router-router links")
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "same seed must give the same script");
        assert_eq!(a.validate(&net), Ok(()));
        assert!(!a.is_empty());
        // Every down has a matching up.
        let downs = a
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::LinkDown(_)))
            .count();
        let ups = a
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::LinkUp(_)))
            .count();
        assert_eq!(downs, ups);
    }

    #[test]
    fn random_flaps_rejects_empty_window() {
        let net = square();
        assert!(matches!(
            FaultScript::random_link_flaps(
                &net,
                1,
                SimTime::from_ms(1),
                SimTime::from_secs(2),
                SimTime::from_secs(1),
                7,
            ),
            Err(MassfError::InvalidConfig(_))
        ));
    }
}
