//! The compiled fault timeline: versioned epochs with lazily
//! reconverged per-epoch routing.

use crate::script::{FaultKind, FaultScript};
use massf_engine::SimTime;
use massf_routing::{CostMetric, MultiAsResolver, OspfDomain, PathResolver};
use massf_topology::mabrite::MultiAsNetwork;
use massf_topology::{LinkId, MassfError, Network, NodeId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The network's failure state during one epoch (the interval between
/// two consecutive fault times). The `version` is the epoch index —
/// `SharedNet` consumers can cheaply compare versions to detect that
/// routing changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochState {
    /// Epoch index (0 = the fault-free prefix of the run).
    pub version: u32,
    /// Dead link ids, sorted.
    pub dead_links: Vec<u32>,
    /// Dead node ids, sorted.
    pub dead_nodes: Vec<u32>,
    /// Dead AS adjacencies as normalized `(min, max)` pairs, sorted.
    pub dead_adjacencies: Vec<(u16, u16)>,
}

impl EpochState {
    /// No faults at all?
    pub fn is_clean(&self) -> bool {
        self.dead_links.is_empty() && self.dead_nodes.is_empty() && self.dead_adjacencies.is_empty()
    }
}

type ResolverFactory = dyn Fn(&EpochState) -> Arc<dyn PathResolver> + Send + Sync;

/// A [`FaultScript`] compiled against a network: per-entity up/down
/// timelines for O(log f) liveness queries on the packet hot path, and
/// one lazily built [`PathResolver`] per epoch ("online reconvergence").
///
/// Every query is a pure function of virtual time, never of wall-clock
/// or thread interleaving, which preserves the engine's bit-identical
/// parallel execution. Epoch resolvers are built at most once (behind
/// `OnceLock`s) by whichever partition routes in that epoch first; the
/// build itself is deterministic, so who builds it cannot matter.
pub struct FaultState {
    script: FaultScript,
    /// Start time of epoch `e + 1` (epoch 0 starts at time zero).
    epoch_starts: Vec<SimTime>,
    /// Failure state per epoch; `epochs[0]` is clean.
    epochs: Vec<EpochState>,
    /// Per-link transitions `(time, up_after)`, only for faulted links.
    link_transitions: HashMap<u32, Vec<(SimTime, bool)>>,
    /// Per-node transitions `(time, up_after)`, only for crashed nodes.
    node_transitions: HashMap<u32, Vec<(SimTime, bool)>>,
    resolvers: Vec<OnceLock<Arc<dyn PathResolver>>>,
    factory: Box<ResolverFactory>,
    /// Epoch resolvers actually built (epoch 0's pre-set base excluded):
    /// the number of online reconvergence episodes this run performed.
    reconvergences: AtomicUsize,
}

impl FaultState {
    /// Compile `script` against `net`. `base` serves epoch 0 (the
    /// fault-free prefix); `factory` builds the resolver of any later
    /// epoch from its [`EpochState`]. Prefer [`FaultState::flat`] /
    /// [`FaultState::multi_as`] unless you need custom routing.
    pub fn with_factory(
        net: &Network,
        script: FaultScript,
        base: Arc<dyn PathResolver>,
        factory: Box<ResolverFactory>,
    ) -> Result<Arc<Self>, MassfError> {
        Self::with_factory_and_adjacency_map(net, script, base, factory, |_| None)
    }

    /// Like [`FaultState::with_factory`], additionally translating
    /// faults of inter-AS links into adjacency failures via `adj_of`
    /// (returns the AS pair a link connects, `None` for intra-AS links).
    fn with_factory_and_adjacency_map(
        net: &Network,
        script: FaultScript,
        base: Arc<dyn PathResolver>,
        factory: Box<ResolverFactory>,
        adj_of: impl Fn(LinkId) -> Option<(u16, u16)>,
    ) -> Result<Arc<Self>, MassfError> {
        script.validate(net)?;
        let sorted = script.sorted_events();

        // Distinct fault times = epoch boundaries.
        let mut epoch_starts: Vec<SimTime> = sorted.iter().map(|e| e.at).collect();
        epoch_starts.dedup();

        // Walk the timeline accumulating the dead sets per epoch.
        // Adjacencies are reference-counted: two parallel inter-AS links
        // both failing must not flip the adjacency back up when only one
        // recovers. Ordered collections so the epoch snapshots below
        // come out sorted without a post-hoc sort (hash-iteration would
        // trip simlint's D1 even with the sort, and rightly: the sorted
        // result hides that intermediate order was hasher-dependent).
        let mut dead_links: BTreeSet<u32> = BTreeSet::new();
        let mut dead_nodes: BTreeSet<u32> = BTreeSet::new();
        let mut adj_down: BTreeMap<(u16, u16), i32> = BTreeMap::new();
        let mut link_transitions: HashMap<u32, Vec<(SimTime, bool)>> = HashMap::new();
        let mut node_transitions: HashMap<u32, Vec<(SimTime, bool)>> = HashMap::new();
        let mut epochs = vec![EpochState::default()];
        let mut cursor = 0usize;
        for &start in &epoch_starts {
            while cursor < sorted.len() && sorted[cursor].at == start {
                let e = sorted[cursor];
                cursor += 1;
                let mut adj_delta = |pair: Option<(u16, u16)>, fail: bool| {
                    if let Some((a, b)) = pair {
                        let key = (a.min(b), a.max(b));
                        *adj_down.entry(key).or_insert(0) += if fail { 1 } else { -1 };
                    }
                };
                match e.kind {
                    FaultKind::LinkDown(l) => {
                        dead_links.insert(l.0);
                        link_transitions.entry(l.0).or_default().push((e.at, false));
                        adj_delta(adj_of(l), true);
                    }
                    FaultKind::LinkUp(l) => {
                        dead_links.remove(&l.0);
                        link_transitions.entry(l.0).or_default().push((e.at, true));
                        adj_delta(adj_of(l), false);
                    }
                    FaultKind::RouterCrash(n) => {
                        dead_nodes.insert(n.0);
                        node_transitions.entry(n.0).or_default().push((e.at, false));
                    }
                    FaultKind::RouterRecover(n) => {
                        dead_nodes.remove(&n.0);
                        node_transitions.entry(n.0).or_default().push((e.at, true));
                    }
                    FaultKind::AsAdjacencyFail { as_a, as_b } => {
                        adj_delta(Some((as_a, as_b)), true);
                    }
                    FaultKind::AsAdjacencyRestore { as_a, as_b } => {
                        adj_delta(Some((as_a, as_b)), false);
                    }
                }
            }
            // BTree iteration is already ascending: the EpochState
            // fields' "sorted" contract holds by construction.
            epochs.push(EpochState {
                version: epochs.len() as u32,
                dead_links: dead_links.iter().copied().collect(),
                dead_nodes: dead_nodes.iter().copied().collect(),
                dead_adjacencies: adj_down
                    .iter()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(&k, _)| k)
                    .collect(),
            });
        }

        let resolvers: Vec<OnceLock<Arc<dyn PathResolver>>> =
            (0..epochs.len()).map(|_| OnceLock::new()).collect();
        resolvers[0]
            .set(base)
            .unwrap_or_else(|_| unreachable!("fresh OnceLock"));
        Ok(Arc::new(FaultState {
            script,
            epoch_starts,
            epochs,
            link_transitions,
            node_transitions,
            resolvers,
            factory,
            reconvergences: AtomicUsize::new(0),
        }))
    }

    /// Compile `script` for a flat single-AS world: each faulty epoch's
    /// resolver re-runs OSPF over the network with dead links and dead
    /// nodes' links filtered out, then warms the full SPT table on the
    /// shared worker pool (the reconvergence cost the paper's online
    /// setting pays).
    pub fn flat(
        net: &Network,
        metric: CostMetric,
        script: FaultScript,
    ) -> Result<Arc<Self>, MassfError> {
        let base: Arc<dyn PathResolver> = Arc::new(massf_routing::FlatResolver::new(net, metric));
        let owned = Arc::new(net.clone());
        let factory = Box::new(move |epoch: &EpochState| -> Arc<dyn PathResolver> {
            let members: Vec<NodeId> = owned.nodes.iter().map(|n| n.id).collect();
            let dead_links = &epoch.dead_links;
            let dead_nodes = &epoch.dead_nodes;
            let domain = OspfDomain::with_link_filter(
                &owned,
                members,
                metric,
                owned.node_count().max(1),
                |l| {
                    dead_links.binary_search(&l.id.0).is_err()
                        && dead_nodes.binary_search(&l.a.0).is_err()
                        && dead_nodes.binary_search(&l.b.0).is_err()
                },
            );
            domain.warm_full_table();
            Arc::new(EpochFlatResolver { domain })
        });
        Self::with_factory(net, script, base, factory)
    }

    /// Compile `script` for a multi-AS world. AS-adjacency faults (and
    /// faults of inter-AS links, which take their adjacency down) make
    /// BGP re-converge on the reduced AS graph with stub failover
    /// (`MultiAsResolver::with_failed_adjacencies`). Intra-AS link and
    /// router faults drop packets but do not recompute intra-AS OSPF —
    /// a documented modeling simplification (DESIGN.md §3.9).
    pub fn multi_as(
        m: &MultiAsNetwork,
        metric: CostMetric,
        script: FaultScript,
        stub_default_routing: bool,
    ) -> Result<Arc<Self>, MassfError> {
        // Reject adjacency events that do not exist in the AS graph up
        // front, so the factory below cannot fail at simulation time.
        for e in script.events() {
            if let FaultKind::AsAdjacencyFail { as_a, as_b }
            | FaultKind::AsAdjacencyRestore { as_a, as_b } = e.kind
            {
                let adjacent = as_a != as_b
                    && m.as_graph
                        .neighbors(as_a as usize)
                        .any(|(b, _)| b == as_b as usize);
                if !adjacent {
                    return Err(MassfError::NotAdjacent {
                        as_a: as_a as usize,
                        as_b: as_b as usize,
                    });
                }
            }
        }
        let base_typed = Arc::new(MultiAsResolver::with_options(
            m,
            metric,
            stub_default_routing,
        ));
        let base: Arc<dyn PathResolver> = base_typed.clone();
        let base_for_factory: Arc<dyn PathResolver> = base_typed.clone();
        let owned = Arc::new(m.clone());
        let as_of: Vec<u16> = m.network.nodes.iter().map(|n| n.as_id.0).collect();
        let factory = Box::new(move |epoch: &EpochState| -> Arc<dyn PathResolver> {
            if epoch.dead_adjacencies.is_empty() {
                // Only intra-AS faults: inter-domain routing unchanged.
                return base_for_factory.clone();
            }
            let fails: Vec<(usize, usize)> = epoch
                .dead_adjacencies
                .iter()
                .map(|&(a, b)| (a as usize, b as usize))
                .collect();
            match base_typed.with_failed_adjacencies(&owned, metric, &fails) {
                Ok(r) => Arc::new(r),
                // Unreachable: adjacency events were validated above and
                // distinct edges stay removable in any order.
                Err(_) => base_for_factory.clone(),
            }
        });
        let net = &m.network;
        Self::with_factory_and_adjacency_map(net, script, base, factory, move |l: LinkId| {
            let link = &m.network.links[l.index()];
            link.inter_as
                .then(|| (as_of[link.a.index()], as_of[link.b.index()]))
        })
    }

    /// The source script.
    pub fn script(&self) -> &FaultScript {
        &self.script
    }

    /// Number of epochs (fault-free prefix included).
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// The epoch index in force at `t`. A fault scheduled at `t` is
    /// already in force at `t` (fault events sort before same-time
    /// packet deliveries only by LP/tag order; state flips are
    /// time-based so ordering among same-time events cannot matter).
    pub fn epoch_at(&self, t: SimTime) -> usize {
        self.epoch_starts.partition_point(|&s| s <= t)
    }

    /// The failure state of epoch `e`.
    pub fn epoch_state(&self, e: usize) -> &EpochState {
        &self.epochs[e]
    }

    /// The start time of epoch `e` (`SimTime::ZERO` for epoch 0).
    pub fn epoch_start(&self, e: usize) -> SimTime {
        if e == 0 {
            SimTime::ZERO
        } else {
            self.epoch_starts[e - 1]
        }
    }

    /// Is `link` up at `t`? Non-faulted links answer without a search.
    pub fn is_link_up(&self, link: LinkId, t: SimTime) -> bool {
        match self.link_transitions.get(&link.0) {
            None => true,
            Some(ts) => last_state(ts, t),
        }
    }

    /// Is `node` up at `t`?
    pub fn is_node_up(&self, node: NodeId, t: SimTime) -> bool {
        match self.node_transitions.get(&node.0) {
            None => true,
            Some(ts) => last_state(ts, t),
        }
    }

    /// The routing resolver in force at `t`, reconverging (building the
    /// epoch's resolver) on first use.
    pub fn resolver_at(&self, t: SimTime) -> &Arc<dyn PathResolver> {
        self.resolver_for_epoch(self.epoch_at(t))
    }

    /// The resolver of epoch `e`, building it on first use.
    pub fn resolver_for_epoch(&self, e: usize) -> &Arc<dyn PathResolver> {
        self.resolvers[e].get_or_init(|| {
            self.reconvergences.fetch_add(1, Ordering::Relaxed);
            (self.factory)(&self.epochs[e])
        })
    }

    /// Force the reconvergence for the epoch in force at `t` (the fault
    /// event handler calls this so rebuild cost is paid at fault time,
    /// not at the next routed packet).
    pub fn reconverge_at(&self, t: SimTime) {
        self.resolver_for_epoch(self.epoch_at(t));
    }

    /// Online reconvergence episodes performed so far: epochs whose
    /// resolver was actually (re)built. Deterministic at end of run —
    /// the *set* of epochs routed in does not depend on thread count.
    pub fn reconvergence_count(&self) -> usize {
        self.reconvergences.load(Ordering::Relaxed)
    }
}

/// Last recorded up/down state at or before `t`; `true` before the
/// first transition.
fn last_state(transitions: &[(SimTime, bool)], t: SimTime) -> bool {
    let idx = transitions.partition_point(|&(at, _)| at <= t);
    if idx == 0 {
        true
    } else {
        transitions[idx - 1].1
    }
}

/// Per-epoch flat resolver: one filtered, fully warmed OSPF domain.
struct EpochFlatResolver {
    domain: OspfDomain,
}

impl PathResolver for EpochFlatResolver {
    fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.domain.path(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_topology::{AsId, NodeKind, Point};

    /// Diamond with hosts: ha - r0 - r1 - hb, plus detour r0 - r2 - r1.
    /// Primary r0-r1 is cheap (1 ms); detour is 3 ms per leg.
    fn diamond_hosts() -> (Network, Vec<NodeId>) {
        let mut net = Network::new();
        let ha = net.add_node(NodeKind::Host, Point::new(0.0, 0.0), AsId(0));
        let r0 = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
        let r1 = net.add_node(NodeKind::Router, Point::new(2.0, 0.0), AsId(0));
        let r2 = net.add_node(NodeKind::Router, Point::new(1.5, 1.0), AsId(0));
        let hb = net.add_node(NodeKind::Host, Point::new(3.0, 0.0), AsId(0));
        net.add_link(ha, r0, 1e9, 0.1);
        net.add_link(r0, r1, 1e9, 1.0); // primary
        net.add_link(r0, r2, 1e9, 3.0); // detour
        net.add_link(r2, r1, 1e9, 3.0);
        net.add_link(r1, hb, 1e9, 0.1);
        (net, vec![ha, r0, r1, r2, hb])
    }

    fn primary_link(net: &Network, a: NodeId, b: NodeId) -> LinkId {
        net.links
            .iter()
            .find(|l| (l.a, l.b) == (a, b) || (l.a, l.b) == (b, a))
            .expect("link exists")
            .id
    }

    #[test]
    fn epochs_and_liveness_windows() {
        let (net, ids) = diamond_hosts();
        let l = primary_link(&net, ids[1], ids[2]);
        let mut script = FaultScript::new();
        script.link_down(SimTime::from_ms(100), l);
        script.link_up(SimTime::from_ms(200), l);
        let fs = FaultState::flat(&net, CostMetric::Latency, script).expect("valid script");

        assert_eq!(fs.epoch_count(), 3);
        assert_eq!(fs.epoch_at(SimTime::from_ms(50)), 0);
        assert_eq!(fs.epoch_at(SimTime::from_ms(100)), 1, "fault applies at T");
        assert_eq!(fs.epoch_at(SimTime::from_ms(150)), 1);
        assert_eq!(fs.epoch_at(SimTime::from_ms(200)), 2);
        assert_eq!(fs.epoch_start(0), SimTime::ZERO);
        assert_eq!(fs.epoch_start(1), SimTime::from_ms(100));

        assert!(fs.is_link_up(l, SimTime::from_ms(99)));
        assert!(!fs.is_link_up(l, SimTime::from_ms(100)));
        assert!(!fs.is_link_up(l, SimTime::from_ms(199)));
        assert!(fs.is_link_up(l, SimTime::from_ms(200)));
        // Unfaulted entities are always up.
        assert!(fs.is_link_up(LinkId(0), SimTime::from_ms(150)));
        assert!(fs.is_node_up(ids[1], SimTime::from_ms(150)));

        assert!(fs.epoch_state(1).dead_links.contains(&l.0));
        assert!(fs.epoch_state(2).is_clean());
    }

    #[test]
    fn flat_reconvergence_reroutes_and_restores() {
        let (net, ids) = diamond_hosts();
        let (ha, r0, r1, r2, hb) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        let l = primary_link(&net, r0, r1);
        let mut script = FaultScript::new();
        script.link_down(SimTime::from_ms(100), l);
        script.link_up(SimTime::from_ms(200), l);
        let fs = FaultState::flat(&net, CostMetric::Latency, script).expect("valid script");

        let pre = fs
            .resolver_at(SimTime::from_ms(10))
            .route(ha, hb)
            .expect("reachable before fault");
        let during = fs
            .resolver_at(SimTime::from_ms(150))
            .route(ha, hb)
            .expect("detour exists");
        let after = fs
            .resolver_at(SimTime::from_ms(250))
            .route(ha, hb)
            .expect("reachable after recovery");
        assert_eq!(pre, vec![ha, r0, r1, hb]);
        assert_eq!(during, vec![ha, r0, r2, r1, hb], "must take the detour");
        assert_eq!(after, pre, "recovery restores the primary path");
        assert_ne!(pre, during, "pre-fault path differs from post-fault path");
        assert_eq!(fs.reconvergence_count(), 2, "one rebuild per faulty epoch");
    }

    #[test]
    fn crashed_router_filtered_from_routing() {
        let (net, ids) = diamond_hosts();
        let (ha, r2, hb) = (ids[0], ids[3], ids[4]);
        let mut script = FaultScript::new();
        script.router_crash(SimTime::from_ms(50), r2);
        let fs = FaultState::flat(&net, CostMetric::Latency, script).expect("valid script");
        // r2 dead: only the primary path remains.
        let during = fs
            .resolver_at(SimTime::from_ms(60))
            .route(ha, hb)
            .expect("primary path still up");
        assert!(
            !during.contains(&r2),
            "dead router must not be routed through"
        );
        assert!(!fs.is_node_up(r2, SimTime::from_ms(60)));
    }

    #[test]
    fn total_cut_yields_unroutable() {
        let (net, ids) = diamond_hosts();
        let (ha, r0, r1, r2, hb) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        let mut script = FaultScript::new();
        script.link_down(SimTime::from_ms(10), primary_link(&net, r0, r1));
        script.router_crash(SimTime::from_ms(10), r2);
        let fs = FaultState::flat(&net, CostMetric::Latency, script).expect("valid script");
        assert!(fs.resolver_at(SimTime::from_ms(20)).route(ha, hb).is_none());
    }

    #[test]
    fn resolver_at_is_idempotent_and_shared() {
        let (net, ids) = diamond_hosts();
        let l = primary_link(&net, ids[1], ids[2]);
        let mut script = FaultScript::new();
        script.link_down(SimTime::from_ms(100), l);
        let fs = FaultState::flat(&net, CostMetric::Latency, script).expect("valid script");
        let a = Arc::as_ptr(fs.resolver_at(SimTime::from_ms(150)));
        let b = Arc::as_ptr(fs.resolver_at(SimTime::from_ms(999)));
        assert_eq!(a, b, "same epoch → same resolver instance");
        assert_eq!(fs.reconvergence_count(), 1);
        fs.reconverge_at(SimTime::from_ms(150));
        assert_eq!(fs.reconvergence_count(), 1, "idempotent");
    }

    #[test]
    fn invalid_script_rejected_at_compile() {
        let (net, _) = diamond_hosts();
        let mut script = FaultScript::new();
        script.link_down(SimTime::from_ms(1), LinkId(999));
        assert!(FaultState::flat(&net, CostMetric::Latency, script).is_err());
    }

    mod multi_as {
        use super::*;
        use massf_topology::{generate_multi_as_network, MultiAsTopologyConfig};

        #[test]
        fn adjacency_fault_reconverges_bgp() {
            let cfg = MultiAsTopologyConfig::tiny();
            let m = generate_multi_as_network(&cfg);
            let (a, b) = (0..m.as_graph.n)
                .find_map(|a| m.as_graph.neighbors(a).next().map(|(b, _)| (a, b)))
                .expect("AS graph has edges");
            let mut script = FaultScript::new();
            script.adjacency_fail(SimTime::from_ms(100), a as u16, b as u16);
            let fs =
                FaultState::multi_as(&m, CostMetric::Latency, script, true).expect("valid script");
            let pre = fs.resolver_at(SimTime::ZERO);
            let during = fs.resolver_at(SimTime::from_ms(100));
            assert!(
                !Arc::ptr_eq(pre, during),
                "adjacency fault must swap in a reconverged resolver"
            );
            // Routing still works (or cleanly reports unreachable) for
            // every host pair.
            let hosts = m.network.host_ids();
            for i in 0..hosts.len().min(6) {
                for j in (i + 1)..hosts.len().min(6) {
                    let _ = during.route(hosts[i], hosts[j]);
                }
            }
        }

        #[test]
        fn intra_as_fault_keeps_bgp_resolver() {
            let cfg = MultiAsTopologyConfig::tiny();
            let m = generate_multi_as_network(&cfg);
            let intra = m
                .network
                .links
                .iter()
                .find(|l| !l.inter_as)
                .expect("multi-AS nets have intra-AS links")
                .id;
            let mut script = FaultScript::new();
            script.link_down(SimTime::from_ms(100), intra);
            let fs =
                FaultState::multi_as(&m, CostMetric::Latency, script, true).expect("valid script");
            assert!(Arc::ptr_eq(
                fs.resolver_at(SimTime::ZERO),
                fs.resolver_at(SimTime::from_ms(100))
            ));
            assert!(!fs.is_link_up(intra, SimTime::from_ms(100)));
        }

        #[test]
        fn inter_as_link_fault_takes_adjacency_down() {
            let cfg = MultiAsTopologyConfig::tiny();
            let m = generate_multi_as_network(&cfg);
            let inter = m
                .network
                .links
                .iter()
                .find(|l| l.inter_as)
                .expect("multi-AS nets have inter-AS links");
            let mut script = FaultScript::new();
            script.link_down(SimTime::from_ms(100), inter.id);
            let fs =
                FaultState::multi_as(&m, CostMetric::Latency, script, true).expect("valid script");
            let e = fs.epoch_state(1);
            assert_eq!(e.dead_adjacencies.len(), 1);
            assert!(
                !Arc::ptr_eq(
                    fs.resolver_at(SimTime::ZERO),
                    fs.resolver_at(SimTime::from_ms(100))
                ),
                "inter-AS link fault must reconverge BGP"
            );
        }

        #[test]
        fn unknown_adjacency_rejected() {
            let cfg = MultiAsTopologyConfig::tiny();
            let m = generate_multi_as_network(&cfg);
            let mut script = FaultScript::new();
            script.adjacency_fail(SimTime::from_ms(1), 0, 0);
            assert!(matches!(
                FaultState::multi_as(&m, CostMetric::Latency, script, true),
                Err(MassfError::NotAdjacent { .. })
            ));
        }
    }
}
