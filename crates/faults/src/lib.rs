//! # massf-faults
//!
//! Deterministic fault injection for the `massf-rs` reproduction of
//! *Realistic Large-Scale Online Network Simulation* (Liu & Chien,
//! SC 2004).
//!
//! The paper's point is *online* simulation: MicroGrid runs live Grid
//! applications over the simulated network, so the simulation must keep
//! producing credible results when the modeled network misbehaves. This
//! crate supplies the failure model:
//!
//! * [`FaultScript`] — a seedable, scripted timeline of fault events
//!   (link down/up, router crash/recover, AS-adjacency fail/restore) at
//!   scheduled [`SimTime`]s.
//! * [`FaultState`] — the script compiled into *epochs*: between two
//!   consecutive fault times the set of dead links/nodes/adjacencies is
//!   constant, so every query (`is_link_up`, `resolver_at`) is a pure
//!   function of virtual time. Purity is what keeps fault-injected runs
//!   bit-identical across thread counts: any partition asking at any
//!   wall-clock moment gets the same answer.
//!
//! Routing reconverges *online*: each epoch's [`PathResolver`] is built
//! lazily (behind a `OnceLock`) the first time the epoch is routed in —
//! for flat single-AS worlds by re-running OSPF with dead links filtered
//! out and warming the full table on the shared worker pool
//! (`OspfDomain::warm_full_table`), for multi-AS worlds by re-running the
//! BGP decision process on the reduced AS graph
//! (`MultiAsResolver::with_failed_adjacencies`).
//!
//! `massf-netsim` consumes this crate: `SharedNet` carries an optional
//! `Arc<FaultState>`, drops packets that touch a dead link or node, and
//! re-resolves TCP paths on retransmission timeout.

#![forbid(unsafe_code)]

pub mod script;
pub mod state;

pub use massf_engine::SimTime;
pub use massf_topology::MassfError;
pub use script::{FaultEvent, FaultKind, FaultScript};
pub use state::{EpochState, FaultState};
