//! HTTP background traffic (paper Sections 4.2 / 5.2.1).
//!
//! Clients send a small request datagram to a uniformly chosen server at
//! exponentially distributed intervals (mean 5 s); the server answers
//! with a TCP transfer whose size is exponential with mean 50 kB. The
//! request/response split matters for load balance: response bytes flow
//! server→client, concentrating transmit load near the 2,000 servers.

use crate::rng::{exp_sample, HostRngs};
use crate::{tag, untag};
use massf_engine::{LpId, SimTime};
use massf_netsim::{AppLogic, FlowId, NetEvent, SimApi};
use massf_topology::NodeId;
use rand::Rng;
use std::collections::HashSet;
use std::sync::Arc;

/// Configuration of the background-traffic generator.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    pub clients: Vec<NodeId>,
    pub servers: Vec<NodeId>,
    /// Mean think time between a client's requests (paper: 5 s).
    pub mean_gap: SimTime,
    /// Mean response size in bytes (paper: 50 kB).
    pub mean_file_bytes: f64,
    /// Request datagram payload.
    pub request_bytes: u32,
    /// Hard bounds on sampled response sizes.
    pub min_file_bytes: u64,
    pub max_file_bytes: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl HttpConfig {
    /// Paper-shaped defaults over the given client/server hosts.
    pub fn paper(clients: Vec<NodeId>, servers: Vec<NodeId>, seed: u64) -> Self {
        HttpConfig {
            clients,
            servers,
            mean_gap: SimTime::from_secs(5),
            mean_file_bytes: 50_000.0,
            request_bytes: 300,
            min_file_bytes: 2_000,
            max_file_bytes: 500_000,
            seed,
        }
    }
}

const TOKEN_REQUEST: u64 = 1;

/// The background-traffic application logic.
#[derive(Clone)]
pub struct HttpTraffic {
    cfg: Arc<HttpConfig>,
    ns: u8,
    rngs: HostRngs,
    server_set: HashSet<u32>,
    /// Response flows started by servers of this shard.
    pending: HashSet<FlowId>,
    /// Completed response flows.
    pub responses_completed: u64,
    /// Requests issued by clients of this shard.
    pub requests_sent: u64,
}

impl HttpTraffic {
    /// Build with app namespace `ns` (for composition).
    pub fn new(cfg: HttpConfig, ns: u8) -> Self {
        assert!(!cfg.clients.is_empty() && !cfg.servers.is_empty());
        let rngs = HostRngs::new(cfg.seed);
        let server_set = cfg.servers.iter().map(|s| s.0).collect();
        HttpTraffic {
            cfg: Arc::new(cfg),
            ns,
            rngs,
            server_set,
            pending: HashSet::new(),
            responses_completed: 0,
            requests_sent: 0,
        }
    }

    /// Initial events: one staggered first-request timer per client.
    /// Offsets are drawn from a derived stream so per-host streams stay
    /// aligned across shard layouts.
    pub fn initial_events(&self) -> Vec<(SimTime, LpId, NetEvent)> {
        let mut rng = self.rngs.derived(0x11_77);
        self.cfg
            .clients
            .iter()
            .map(|&c| {
                let offset =
                    SimTime::from_secs_f64(exp_sample(&mut rng, self.cfg.mean_gap.as_secs_f64()));
                (
                    offset,
                    LpId(c.0),
                    NetEvent::AppTimer {
                        token: tag(self.ns, TOKEN_REQUEST),
                    },
                )
            })
            .collect()
    }

    fn is_server(&self, host: NodeId) -> bool {
        self.server_set.contains(&host.0)
    }
}

impl AppLogic for HttpTraffic {
    fn on_timer(&mut self, host: NodeId, token: u64, api: &mut SimApi<'_, '_>) {
        let (ns, value) = untag(token);
        if ns != self.ns || value != TOKEN_REQUEST {
            return;
        }
        let cfg = self.cfg.clone();
        let rng = self.rngs.get(host);
        // Pick a server (avoid self if the host doubles as a server).
        let mut server = cfg.servers[rng.gen_range(0..cfg.servers.len())];
        if server == host {
            server = cfg.servers[rng.gen_range(0..cfg.servers.len())];
        }
        let gap = SimTime::from_secs_f64(exp_sample(rng, cfg.mean_gap.as_secs_f64()));
        if server != host {
            api.send_datagram(server, cfg.request_bytes, tag(self.ns, 0));
            self.requests_sent += 1;
        }
        api.set_timer(gap, tag(self.ns, TOKEN_REQUEST));
    }

    fn on_datagram(
        &mut self,
        host: NodeId,
        from_flow: FlowId,
        _payload: u32,
        meta: u64,
        api: &mut SimApi<'_, '_>,
    ) {
        let (ns, _) = untag(meta);
        if ns != self.ns || !self.is_server(host) {
            return;
        }
        let cfg = self.cfg.clone();
        let rng = self.rngs.get(host);
        let size = exp_sample(rng, cfg.mean_file_bytes)
            .round()
            .clamp(cfg.min_file_bytes as f64, cfg.max_file_bytes as f64) as u64;
        let client = from_flow.source();
        if let Some(flow) = api.start_tcp_flow(client, size) {
            self.pending.insert(flow);
        }
    }

    fn on_flow_complete(&mut self, _host: NodeId, flow: FlowId, _api: &mut SimApi<'_, '_>) {
        if self.pending.remove(&flow) {
            self.responses_completed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_netsim::NetSimBuilder;
    use massf_routing::{CostMetric, FlatResolver};
    use massf_topology::{generate_flat_network, FlatTopologyConfig};

    fn setup() -> (NetSimBuilder, HttpTraffic) {
        let net = generate_flat_network(&FlatTopologyConfig::tiny());
        let hosts = net.host_ids();
        let (clients, servers) = hosts.split_at(hosts.len() * 3 / 4);
        let mut cfg = HttpConfig::paper(clients.to_vec(), servers.to_vec(), 42);
        cfg.mean_gap = SimTime::from_ms(500); // denser for a short test
        let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
        let app = HttpTraffic::new(cfg, 0);
        let mut builder = NetSimBuilder::new(net, resolver);
        builder.add_initial_events(app.initial_events());
        (builder, app)
    }

    #[test]
    fn traffic_flows_and_completes() {
        let (builder, app) = setup();
        let out = builder.run_sequential(app, SimTime::from_secs(10));
        let app = &out.apps[0];
        assert!(app.requests_sent > 20, "requests {}", app.requests_sent);
        assert!(
            app.responses_completed > 10,
            "responses {}",
            app.responses_completed
        );
        assert!(out.profile.total_link_packets() > 1000);
    }

    #[test]
    fn deterministic_across_runs() {
        let (b1, a1) = setup();
        let (b2, a2) = setup();
        let o1 = b1.run_sequential(a1, SimTime::from_secs(5));
        let o2 = b2.run_sequential(a2, SimTime::from_secs(5));
        assert_eq!(o1.stats.total_events, o2.stats.total_events);
        assert_eq!(o1.profile, o2.profile);
    }

    #[test]
    fn ignores_foreign_namespaces() {
        let (builder, app) = setup();
        let shared = builder.shared();
        let client = app.cfg.clients[0];
        let mut b2 = NetSimBuilder::new(shared.net.clone(), shared.resolver.clone());
        // A timer in namespace 9 must be ignored by an ns-0 app.
        b2.add_initial(
            SimTime::from_ms(1),
            LpId(client.0),
            NetEvent::AppTimer { token: tag(9, 1) },
        );
        let out = b2.run_sequential(app, SimTime::from_secs(2));
        assert_eq!(out.apps[0].requests_sent, 0);
    }

    #[test]
    fn mean_response_size_is_plausible() {
        let (builder, app) = setup();
        let out = builder.run_sequential(app, SimTime::from_secs(20));
        let app = &out.apps[0];
        let mean_segments =
            out.profile.completed_segments as f64 / out.profile.completed_flows.max(1) as f64;
        // 50 kB mean at 1460 B/segment ≈ 34 segments; clamping shifts it
        // a little. Accept a generous band.
        assert!(
            (15.0..60.0).contains(&mean_segments),
            "mean segments {mean_segments}, flows {}",
            app.responses_completed
        );
    }
}
