//! ScaLAPACK-style foreground application traffic.
//!
//! The paper runs real ScaLAPACK through the MicroGrid (GrADS
//! experiment); we model its communication structure (DESIGN.md
//! substitution #2): an LU/QR-style factorization on a `Pr × Pc` process
//! grid proceeds in iterations; in iteration `k` the panel owner
//! broadcasts the factored panel along its process row and column, and
//! the next iteration cannot start before the broadcast completes.
//! This produces the synchronized, communication-heavy traffic that
//! makes ScaLAPACK the harder load-balance case in the paper (GridNPB
//! "has less communication compared to ScaLapack", Section 5.2.2).

use crate::{tag, untag};
use massf_engine::{LpId, SimTime};
use massf_netsim::{AppLogic, FlowId, NetEvent, SimApi};
use massf_topology::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of the ScaLapack traffic model.
#[derive(Debug, Clone)]
pub struct ScaLapackConfig {
    /// Participating hosts, row-major over the process grid.
    pub hosts: Vec<NodeId>,
    /// Process-grid columns (rows = hosts.len() / grid_cols).
    pub grid_cols: usize,
    /// Panel size broadcast each iteration, bytes.
    pub panel_bytes: u64,
    /// Number of factorization iterations.
    pub iterations: u32,
    /// Local compute time between receiving a panel and broadcasting the
    /// next.
    pub compute: SimTime,
}

impl ScaLapackConfig {
    /// A moderate default: 400 kB panels, 100 ms compute.
    pub fn new(hosts: Vec<NodeId>, grid_cols: usize, iterations: u32) -> Self {
        assert!(!hosts.is_empty());
        assert!(grid_cols >= 1 && hosts.len().is_multiple_of(grid_cols));
        ScaLapackConfig {
            hosts,
            grid_cols,
            panel_bytes: 400_000,
            iterations,
            compute: SimTime::from_ms(100),
        }
    }
}

const CTRL_BYTES: u32 = 64;

/// The iterative panel-broadcast application.
#[derive(Clone)]
pub struct ScaLapackApp {
    cfg: Arc<ScaLapackConfig>,
    ns: u8,
    /// Outstanding broadcast flows per iteration (owner-host state).
    outstanding: HashMap<u32, usize>,
    /// Flow → iteration, for completion accounting (owner-host state).
    flow_iter: HashMap<FlowId, u32>,
    /// Iterations fully completed (incremented at each owner).
    pub iterations_done: u32,
    /// Virtual time the final iteration's broadcast completed.
    pub finished_at: Option<SimTime>,
}

impl ScaLapackApp {
    /// Build with app namespace `ns`.
    pub fn new(cfg: ScaLapackConfig, ns: u8) -> Self {
        ScaLapackApp {
            cfg: Arc::new(cfg),
            ns,
            outstanding: HashMap::new(),
            flow_iter: HashMap::new(),
            iterations_done: 0,
            finished_at: None,
        }
    }

    /// Kick-off: the owner of iteration 0 computes, then broadcasts.
    pub fn initial_events(&self) -> Vec<(SimTime, LpId, NetEvent)> {
        let owner = self.owner(0);
        vec![(
            self.cfg.compute,
            LpId(owner.0),
            NetEvent::AppTimer {
                token: tag(self.ns, 0),
            },
        )]
    }

    fn owner(&self, iter: u32) -> NodeId {
        self.cfg.hosts[iter as usize % self.cfg.hosts.len()]
    }

    /// Row/column peers of the owner on the process grid.
    fn broadcast_targets(&self, iter: u32) -> Vec<NodeId> {
        let n = self.cfg.hosts.len();
        let cols = self.cfg.grid_cols;
        let idx = iter as usize % n;
        let (row, col) = (idx / cols, idx % cols);
        let mut targets = Vec::new();
        for c in 0..cols {
            if c != col {
                targets.push(self.cfg.hosts[row * cols + c]);
            }
        }
        let rows = n / cols;
        for r in 0..rows {
            if r != row {
                targets.push(self.cfg.hosts[r * cols + col]);
            }
        }
        targets
    }
}

impl AppLogic for ScaLapackApp {
    fn on_timer(&mut self, host: NodeId, token: u64, api: &mut SimApi<'_, '_>) {
        let (ns, iter) = untag(token);
        if ns != self.ns {
            return;
        }
        let iter = iter as u32;
        debug_assert_eq!(host, self.owner(iter));
        let targets = self.broadcast_targets(iter);
        let mut started = 0usize;
        for t in targets {
            if let Some(flow) = api.start_tcp_flow(t, self.cfg.panel_bytes) {
                self.flow_iter.insert(flow, iter);
                started += 1;
            }
        }
        if started == 0 {
            // Degenerate 1-host grid or all-unroutable: advance directly.
            self.complete_iteration(iter, api);
        } else {
            self.outstanding.insert(iter, started);
        }
    }

    fn on_flow_complete(&mut self, _host: NodeId, flow: FlowId, api: &mut SimApi<'_, '_>) {
        let Some(iter) = self.flow_iter.remove(&flow) else {
            return; // not ours
        };
        let left = self
            .outstanding
            .get_mut(&iter)
            .expect("iteration has outstanding count");
        *left -= 1;
        if *left == 0 {
            self.outstanding.remove(&iter);
            self.complete_iteration(iter, api);
        }
    }

    fn on_datagram(
        &mut self,
        host: NodeId,
        _from: FlowId,
        _bytes: u32,
        meta: u64,
        api: &mut SimApi<'_, '_>,
    ) {
        let (ns, iter) = untag(meta);
        if ns != self.ns {
            return;
        }
        debug_assert_eq!(host, self.owner(iter as u32));
        // Compute, then broadcast this iteration's panel.
        api.set_timer(self.cfg.compute, tag(self.ns, iter));
    }
}

impl ScaLapackApp {
    fn complete_iteration(&mut self, iter: u32, api: &mut SimApi<'_, '_>) {
        self.iterations_done += 1;
        let next = iter + 1;
        if next >= self.cfg.iterations {
            self.finished_at = Some(api.now());
            return;
        }
        let next_owner = self.owner(next);
        if next_owner == api.host() {
            api.set_timer(self.cfg.compute, tag(self.ns, next as u64));
        } else {
            api.send_datagram(next_owner, CTRL_BYTES, tag(self.ns, next as u64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_netsim::NetSimBuilder;
    use massf_routing::{CostMetric, FlatResolver};
    use massf_topology::{generate_flat_network, FlatTopologyConfig};

    fn run(iterations: u32, hosts_n: usize, cols: usize) -> (ScaLapackApp, u64) {
        let net = generate_flat_network(&FlatTopologyConfig::tiny());
        let hosts: Vec<NodeId> = net.host_ids().into_iter().take(hosts_n).collect();
        let cfg = ScaLapackConfig::new(hosts, cols, iterations);
        let app = ScaLapackApp::new(cfg, 2);
        let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
        let mut builder = NetSimBuilder::new(net, resolver);
        builder.add_initial_events(app.initial_events());
        let out = builder.run_sequential(app, SimTime::from_secs(600));
        let app = out.apps.into_iter().next().expect("one app was registered");
        (app, out.stats.total_events)
    }

    #[test]
    fn all_iterations_complete() {
        let (app, events) = run(6, 8, 4);
        assert_eq!(app.iterations_done, 6);
        assert!(app.finished_at.is_some());
        assert!(events > 1000);
    }

    #[test]
    fn broadcast_targets_cover_row_and_column() {
        let net = generate_flat_network(&FlatTopologyConfig::tiny());
        let hosts: Vec<NodeId> = net.host_ids().into_iter().take(12).collect();
        let app = ScaLapackApp::new(ScaLapackConfig::new(hosts.clone(), 4, 1), 0);
        // Owner of iter 5 = hosts[5] at grid (row 1, col 1).
        let targets = app.broadcast_targets(5);
        // Row peers: (1,0),(1,2),(1,3) = hosts[4],hosts[6],hosts[7];
        // col peers: (0,1),(2,1) = hosts[1],hosts[9].
        assert_eq!(targets.len(), 5);
        for expect in [hosts[4], hosts[6], hosts[7], hosts[1], hosts[9]] {
            assert!(targets.contains(&expect));
        }
    }

    #[test]
    fn ownership_rotates() {
        let net = generate_flat_network(&FlatTopologyConfig::tiny());
        let hosts: Vec<NodeId> = net.host_ids().into_iter().take(4).collect();
        let app = ScaLapackApp::new(ScaLapackConfig::new(hosts.clone(), 2, 8), 0);
        assert_eq!(app.owner(0), hosts[0]);
        assert_eq!(app.owner(3), hosts[3]);
        assert_eq!(app.owner(5), hosts[1]);
    }

    #[test]
    fn makespan_grows_with_iterations() {
        let (a3, _) = run(3, 8, 4);
        let (a9, _) = run(9, 8, 4);
        let t9 = a9.finished_at.expect("9-iteration run finishes");
        let t3 = a3.finished_at.expect("3-iteration run finishes");
        assert!(t9 > t3);
    }

    #[test]
    fn single_host_grid_degenerates_gracefully() {
        let (app, _) = run(4, 1, 1);
        assert_eq!(app.iterations_done, 4);
    }
}
