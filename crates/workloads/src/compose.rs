//! Workload composition.
//!
//! The paper's experiments always mix background HTTP traffic with a
//! foreground Grid application. Every workload in this crate tags its
//! timers, datagram metadata, and flows with a construction-time
//! namespace and ignores everything else, so composition is plain
//! fan-out: deliver each callback to both members.

use massf_netsim::{AbortReason, AppLogic, FlowId, SimApi};
use massf_topology::NodeId;

/// Two workloads running concurrently. Nest pairs for more.
#[derive(Clone)]
pub struct Pair<A, B> {
    pub first: A,
    pub second: B,
}

impl<A, B> Pair<A, B> {
    /// Compose `first` and `second`. They must use distinct namespaces;
    /// that is the constructor argument each workload takes.
    pub fn new(first: A, second: B) -> Self {
        Pair { first, second }
    }
}

impl<A: AppLogic, B: AppLogic> AppLogic for Pair<A, B> {
    fn on_flow_complete(&mut self, host: NodeId, flow: FlowId, api: &mut SimApi<'_, '_>) {
        self.first.on_flow_complete(host, flow, api);
        self.second.on_flow_complete(host, flow, api);
    }

    fn on_timer(&mut self, host: NodeId, token: u64, api: &mut SimApi<'_, '_>) {
        self.first.on_timer(host, token, api);
        self.second.on_timer(host, token, api);
    }

    fn on_datagram(
        &mut self,
        host: NodeId,
        from: FlowId,
        bytes: u32,
        meta: u64,
        api: &mut SimApi<'_, '_>,
    ) {
        self.first.on_datagram(host, from, bytes, meta, api);
        self.second.on_datagram(host, from, bytes, meta, api);
    }

    fn on_flow_aborted(
        &mut self,
        host: NodeId,
        flow: FlowId,
        reason: AbortReason,
        api: &mut SimApi<'_, '_>,
    ) {
        self.first.on_flow_aborted(host, flow, reason, api);
        self.second.on_flow_aborted(host, flow, reason, api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{HttpConfig, HttpTraffic};
    use crate::scalapack::{ScaLapackApp, ScaLapackConfig};
    use massf_engine::SimTime;
    use massf_netsim::NetSimBuilder;
    use massf_routing::{CostMetric, FlatResolver};
    use massf_topology::{generate_flat_network, FlatTopologyConfig};
    use std::sync::Arc;

    #[test]
    fn http_and_scalapack_coexist() {
        let net = generate_flat_network(&FlatTopologyConfig::tiny());
        let hosts = net.host_ids();
        let (clients, rest) = hosts.split_at(hosts.len() / 2);
        let (servers, app_hosts) = rest.split_at(rest.len() / 2);

        let mut http_cfg = HttpConfig::paper(clients.to_vec(), servers.to_vec(), 7);
        http_cfg.mean_gap = SimTime::from_ms(500);
        let http = HttpTraffic::new(http_cfg, 0);
        let sl = ScaLapackApp::new(
            ScaLapackConfig::new(app_hosts[..8.min(app_hosts.len())].to_vec(), 4, 4),
            1,
        );

        let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
        let mut builder = NetSimBuilder::new(net, resolver);
        builder.add_initial_events(http.initial_events());
        builder.add_initial_events(sl.initial_events());
        let out = builder.run_sequential(Pair::new(http, sl), SimTime::from_secs(30));

        let pair = &out.apps[0];
        assert!(pair.first.requests_sent > 10, "http starved");
        assert_eq!(pair.second.iterations_done, 4, "scalapack starved");
    }
}
