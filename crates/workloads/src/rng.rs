//! Deterministic per-host randomness.
//!
//! Workload state must be identical whether hosts run in one sequential
//! world or in per-partition shards. A single shared RNG would be
//! consumed in host-interleaving order and diverge; instead every host
//! derives its own stream from `(workload seed, host id)`.

use massf_topology::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// SplitMix64 finalizer: decorrelates `(seed, host)` pairs.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A lazy map of independent per-host RNG streams.
#[derive(Debug, Clone, Default)]
pub struct HostRngs {
    seed: u64,
    streams: HashMap<u32, ChaCha8Rng>,
}

impl HostRngs {
    /// Streams derived from `seed`.
    pub fn new(seed: u64) -> Self {
        HostRngs {
            seed,
            streams: HashMap::new(),
        }
    }

    /// The RNG stream of `host` (created on first use).
    pub fn get(&mut self, host: NodeId) -> &mut ChaCha8Rng {
        let seed = self.seed;
        self.streams
            .entry(host.0)
            .or_insert_with(|| ChaCha8Rng::seed_from_u64(mix(seed ^ ((host.0 as u64) << 1 | 1))))
    }

    /// A one-shot derived RNG independent of the per-host streams —
    /// used for initial-event generation so that start-up draws never
    /// desynchronize the streams between shard layouts.
    pub fn derived(&self, salt: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(mix(self.seed ^ mix(salt.wrapping_add(0x9E37_79B9))))
    }
}

/// Exponential sample with the given mean (> 0), as `f64`.
pub fn exp_sample(rng: &mut impl Rng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen_range(0.0..1.0);
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_host_streams_are_independent_and_deterministic() {
        let mut a = HostRngs::new(1);
        let mut b = HostRngs::new(1);
        // Access order differs; streams must not.
        let x1: u64 = a.get(NodeId(5)).gen();
        let _skip: u64 = a.get(NodeId(9)).gen();
        let y1: u64 = b.get(NodeId(9)).gen();
        let x2: u64 = b.get(NodeId(5)).gen();
        assert_eq!(x1, x2);
        let y2: u64 = a.get(NodeId(9)).gen();
        let _ = (y1, y2); // y1 was first draw of host 9 in b; in a the
                          // first draw was _skip:
        assert_eq!(_skip, y1);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = HostRngs::new(1);
        let mut b = HostRngs::new(2);
        let x: u64 = a.get(NodeId(5)).gen();
        let y: u64 = b.get(NodeId(5)).gen();
        assert_ne!(x, y);
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut rng = HostRngs::new(3).derived(0);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| exp_sample(&mut rng, mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.2,
            "observed mean {observed} vs {mean}"
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = HostRngs::new(4).derived(1);
        for _ in 0..1000 {
            assert!(exp_sample(&mut rng, 0.5) >= 0.0);
        }
    }
}
