//! GridNPB 3.0 workflow traffic models.
//!
//! The NAS Grid Benchmarks compose slightly modified NPB solvers into
//! dataflow graphs; each graph node computes and then forwards
//! initialization data to its successors (van der Wijngaart & Frumkin,
//! NAS-02-005). The paper runs the Helical Chain (HC), Visualization
//! Pipeline (VP), and Mixed Bag (MB) graphs at class S. We reproduce the
//! three graph shapes with configurable transfer sizes and compute
//! times; the traffic shape (sparser, pipelined, less communication than
//! ScaLapack) is what the load-balance evaluation depends on.

use crate::{tag, untag};
use massf_engine::{LpId, SimTime};
use massf_netsim::{AppLogic, FlowId, NetEvent, SimApi};
use massf_topology::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// One workflow task.
#[derive(Debug, Clone)]
pub struct WorkflowTask {
    /// Index into the host list where the task runs.
    pub host: usize,
    /// Local compute time before outputs are sent.
    pub compute: SimTime,
    /// `(successor task index, transfer bytes)` pairs.
    pub successors: Vec<(usize, u64)>,
}

/// A complete workflow: tasks plus the hosts they run on.
#[derive(Debug, Clone)]
pub struct WorkflowSpec {
    pub name: &'static str,
    pub hosts: Vec<NodeId>,
    pub tasks: Vec<WorkflowTask>,
}

impl WorkflowSpec {
    /// In-degree of every task.
    pub fn indegrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.tasks.len()];
        for t in &self.tasks {
            for &(s, _) in &t.successors {
                d[s] += 1;
            }
        }
        d
    }

    /// Sink tasks (no successors).
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.tasks.len())
            .filter(|&i| self.tasks[i].successors.is_empty())
            .collect()
    }

    /// Validate: successor indices in range, DAG (no cycles), every task
    /// host within the host list.
    pub fn validate(&self) {
        let n = self.tasks.len();
        for (i, t) in self.tasks.iter().enumerate() {
            assert!(t.host < self.hosts.len(), "task {i} host out of range");
            for &(s, _) in &t.successors {
                assert!(s < n, "task {i} successor {s} out of range");
            }
        }
        // Kahn's algorithm detects cycles.
        let mut deg = self.indegrees();
        let mut queue: Vec<usize> = (0..n).filter(|&i| deg[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &(s, _) in &self.tasks[i].successors {
                deg[s] -= 1;
                if deg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        assert_eq!(seen, n, "workflow graph has a cycle");
    }
}

/// Helical Chain: `width · rounds` tasks in a single chain that cycles
/// over `width` hosts (BT → SP → LU → BT → …). The paper uses width 3,
/// 3 rounds (9 tasks).
pub fn helical_chain(
    hosts: Vec<NodeId>,
    rounds: usize,
    bytes: u64,
    compute: SimTime,
) -> WorkflowSpec {
    let width = hosts.len();
    assert!(width >= 1 && rounds >= 1);
    let n = width * rounds;
    let tasks = (0..n)
        .map(|i| WorkflowTask {
            host: i % width,
            compute,
            successors: if i + 1 < n {
                vec![(i + 1, bytes)]
            } else {
                vec![]
            },
        })
        .collect();
    WorkflowSpec {
        name: "HC",
        hosts,
        tasks,
    }
}

/// Visualization Pipeline: `stages` pipelined triples BT → MG → FT; the
/// BT of frame `f+1` depends on the BT of frame `f` (pipelining), and
/// each stage feeds the next within the frame.
pub fn visualization_pipeline(
    hosts: Vec<NodeId>,
    frames: usize,
    bytes: u64,
    compute: SimTime,
) -> WorkflowSpec {
    assert!(hosts.len() >= 3, "VP needs at least 3 hosts");
    assert!(frames >= 1);
    // Task layout: frame f has tasks 3f (BT), 3f+1 (MG), 3f+2 (FT).
    let mut tasks = Vec::with_capacity(3 * frames);
    for f in 0..frames {
        let base = 3 * f;
        // BT
        let mut succ = vec![(base + 1, bytes)];
        if f + 1 < frames {
            succ.push((base + 3, bytes)); // next frame's BT
        }
        tasks.push(WorkflowTask {
            host: 0,
            compute,
            successors: succ,
        });
        // MG
        tasks.push(WorkflowTask {
            host: 1,
            compute,
            successors: vec![(base + 2, bytes / 2)],
        });
        // FT (sink of the frame)
        tasks.push(WorkflowTask {
            host: 2,
            compute,
            successors: vec![],
        });
    }
    WorkflowSpec {
        name: "VP",
        hosts,
        tasks,
    }
}

/// Mixed Bag: `layers` of three tasks (LU, MG, FT) where every task of
/// layer `l` feeds every task of layer `l+1` with asymmetric sizes.
pub fn mixed_bag(hosts: Vec<NodeId>, layers: usize, bytes: u64, compute: SimTime) -> WorkflowSpec {
    assert!(hosts.len() >= 3, "MB needs at least 3 hosts");
    assert!(layers >= 1);
    let per = 3usize;
    let mut tasks = Vec::with_capacity(per * layers);
    for l in 0..layers {
        for j in 0..per {
            let mut successors = Vec::new();
            if l + 1 < layers {
                for j2 in 0..per {
                    // Asymmetric transfer sizes ("mixed bag").
                    let b = bytes / (1 + ((j + j2) % 3) as u64);
                    successors.push(((l + 1) * per + j2, b));
                }
            }
            tasks.push(WorkflowTask {
                host: j % hosts.len(),
                compute,
                successors,
            });
        }
    }
    WorkflowSpec {
        name: "MB",
        hosts,
        tasks,
    }
}

/// The dataflow execution engine for a [`WorkflowSpec`].
#[derive(Clone)]
pub struct WorkflowApp {
    spec: Arc<WorkflowSpec>,
    ns: u8,
    /// Remaining unsatisfied inputs per task (kept at the task's host).
    waiting: HashMap<usize, usize>,
    /// Flow → (successor task) mapping at the flow's source host.
    flow_edge: HashMap<FlowId, usize>,
    /// Tasks completed (their outputs fully delivered or none).
    pub tasks_done: u32,
    /// Sinks completed so far.
    sinks_done: usize,
    /// Virtual time the last sink finished computing.
    pub finished_at: Option<SimTime>,
}

const CTRL_BYTES: u32 = 64;

impl WorkflowApp {
    /// Build with app namespace `ns`. Validates the spec.
    pub fn new(spec: WorkflowSpec, ns: u8) -> Self {
        spec.validate();
        WorkflowApp {
            spec: Arc::new(spec),
            ns,
            waiting: HashMap::new(),
            flow_edge: HashMap::new(),
            tasks_done: 0,
            sinks_done: 0,
            finished_at: None,
        }
    }

    /// The workflow definition.
    pub fn spec(&self) -> &WorkflowSpec {
        &self.spec
    }

    /// Source tasks start computing at t = 0.
    pub fn initial_events(&self) -> Vec<(SimTime, LpId, NetEvent)> {
        let deg = self.spec.indegrees();
        (0..self.spec.tasks.len())
            .filter(|&i| deg[i] == 0)
            .map(|i| {
                let t = &self.spec.tasks[i];
                (
                    t.compute,
                    LpId(self.spec.hosts[t.host].0),
                    NetEvent::AppTimer {
                        token: tag(self.ns, i as u64),
                    },
                )
            })
            .collect()
    }

    /// A task finished computing at its host: ship outputs.
    fn task_computed(&mut self, task: usize, api: &mut SimApi<'_, '_>) {
        let spec = self.spec.clone();
        let t = &spec.tasks[task];
        self.tasks_done += 1;
        if t.successors.is_empty() {
            self.sinks_done += 1;
            if self.sinks_done == spec.sinks().len() {
                self.finished_at = Some(api.now());
            }
            return;
        }
        for &(succ, bytes) in &t.successors {
            let dst = spec.hosts[spec.tasks[succ].host];
            if dst == api.host() {
                // Same-host edge: input satisfied immediately.
                self.input_arrived(succ, api);
            } else {
                match api.start_tcp_flow(dst, bytes) {
                    Some(flow) => {
                        self.flow_edge.insert(flow, succ);
                    }
                    None => {
                        // Unroutable edge (possible under BGP policy):
                        // deliver the dependency notification directly so
                        // the workflow still terminates; the bytes simply
                        // never hit the network.
                        self.input_arrived(succ, api);
                    }
                }
            }
        }
    }

    /// One input of `task` became available at its host.
    fn input_arrived(&mut self, task: usize, api: &mut SimApi<'_, '_>) {
        let deg = self.spec.indegrees()[task];
        let need = self.waiting.entry(task).or_insert(deg);
        *need -= 1;
        if *need == 0 {
            self.waiting.remove(&task);
            api.set_timer(self.spec.tasks[task].compute, tag(self.ns, task as u64));
        }
    }
}

impl AppLogic for WorkflowApp {
    fn on_timer(&mut self, _host: NodeId, token: u64, api: &mut SimApi<'_, '_>) {
        let (ns, task) = untag(token);
        if ns != self.ns {
            return;
        }
        self.task_computed(task as usize, api);
    }

    fn on_flow_complete(&mut self, _host: NodeId, flow: FlowId, api: &mut SimApi<'_, '_>) {
        let Some(succ) = self.flow_edge.remove(&flow) else {
            return; // not ours
        };
        // Data fully acknowledged: notify the successor's host.
        let dst = self.spec.hosts[self.spec.tasks[succ].host];
        if dst == api.host() {
            self.input_arrived(succ, api);
        } else {
            api.send_datagram(dst, CTRL_BYTES, tag(self.ns, succ as u64));
        }
    }

    fn on_datagram(
        &mut self,
        _host: NodeId,
        _from: FlowId,
        _bytes: u32,
        meta: u64,
        api: &mut SimApi<'_, '_>,
    ) {
        let (ns, task) = untag(meta);
        if ns != self.ns {
            return;
        }
        self.input_arrived(task as usize, api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_netsim::NetSimBuilder;
    use massf_routing::{CostMetric, FlatResolver};
    use massf_topology::{generate_flat_network, FlatTopologyConfig};

    fn run_spec(spec: WorkflowSpec) -> WorkflowApp {
        let net = generate_flat_network(&FlatTopologyConfig::tiny());
        let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
        let app = WorkflowApp::new(spec, 3);
        let mut builder = NetSimBuilder::new(net, resolver);
        builder.add_initial_events(app.initial_events());
        let out = builder.run_sequential(app, SimTime::from_secs(600));
        out.apps.into_iter().next().expect("one app was registered")
    }

    fn hosts(n: usize) -> Vec<NodeId> {
        let net = generate_flat_network(&FlatTopologyConfig::tiny());
        net.host_ids().into_iter().take(n).collect()
    }

    #[test]
    fn hc_structure() {
        let spec = helical_chain(hosts(3), 3, 100_000, SimTime::from_ms(50));
        spec.validate();
        assert_eq!(spec.tasks.len(), 9);
        assert_eq!(spec.sinks(), vec![8]);
        assert_eq!(spec.indegrees()[0], 0);
        assert!(spec.indegrees()[1..].iter().all(|&d| d == 1));
    }

    #[test]
    fn vp_structure() {
        let spec = visualization_pipeline(hosts(3), 3, 100_000, SimTime::from_ms(50));
        spec.validate();
        assert_eq!(spec.tasks.len(), 9);
        assert_eq!(spec.sinks().len(), 3, "one FT sink per frame");
        // Frame 0 BT feeds MG0 and BT1.
        assert_eq!(spec.tasks[0].successors.len(), 2);
    }

    #[test]
    fn mb_structure() {
        let spec = mixed_bag(hosts(3), 3, 90_000, SimTime::from_ms(50));
        spec.validate();
        assert_eq!(spec.tasks.len(), 9);
        // Middle layers have full bipartite fan-out.
        assert_eq!(spec.tasks[0].successors.len(), 3);
        assert_eq!(spec.indegrees()[8], 3);
    }

    #[test]
    fn hc_runs_to_completion() {
        let app = run_spec(helical_chain(hosts(3), 3, 50_000, SimTime::from_ms(20)));
        assert_eq!(app.tasks_done, 9);
        assert!(app.finished_at.is_some());
    }

    #[test]
    fn vp_runs_to_completion() {
        let app = run_spec(visualization_pipeline(
            hosts(3),
            3,
            50_000,
            SimTime::from_ms(20),
        ));
        assert_eq!(app.tasks_done, 9);
        assert!(app.finished_at.is_some());
    }

    #[test]
    fn mb_runs_to_completion() {
        let app = run_spec(mixed_bag(hosts(4), 3, 50_000, SimTime::from_ms(20)));
        assert_eq!(app.tasks_done, 9);
        assert!(app.finished_at.is_some());
    }

    #[test]
    fn chain_makespan_exceeds_sum_of_computes() {
        let compute = SimTime::from_ms(30);
        let app = run_spec(helical_chain(hosts(3), 2, 50_000, compute));
        // 6 tasks in a strict chain: makespan ≥ 6 × compute.
        assert!(app.finished_at.expect("chain finishes") >= compute * 6);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let spec = WorkflowSpec {
            name: "bad",
            hosts: hosts(2),
            tasks: vec![
                WorkflowTask {
                    host: 0,
                    compute: SimTime::from_ms(1),
                    successors: vec![(1, 10)],
                },
                WorkflowTask {
                    host: 1,
                    compute: SimTime::from_ms(1),
                    successors: vec![(0, 10)],
                },
            ],
        };
        WorkflowApp::new(spec, 0);
    }
}
