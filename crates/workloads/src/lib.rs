//! # massf-workloads
//!
//! Traffic workloads for the `massf-rs` reproduction of *Realistic
//! Large-Scale Online Network Simulation* (Liu & Chien, SC 2004),
//! matching the paper's experimental setup (Sections 4.2 and 5.2.1):
//!
//! * [`http`] — background traffic: "8,000 clients continuously sending
//!   HTTP file requests to 2,000 servers. The average time gap between
//!   two successive requests of a client is 5 seconds and average file
//!   size is 50 KB."
//! * [`scalapack`] — the communication-heavy foreground application: an
//!   iterative block-cyclic panel-broadcast pattern over a process grid,
//!   standing in for direct execution of ScaLAPACK (DESIGN.md
//!   substitution #2).
//! * [`gridnpb`] — the GridNPB 3.0 workflow benchmarks: Helical Chain
//!   (HC), Visualization Pipeline (VP), and Mixed Bag (MB) dataflow
//!   graphs of compute tasks exchanging initialization data.
//!
//! All workloads implement [`massf_netsim::AppLogic`], tag their timers,
//! datagram metadata, and flows with a construction-time namespace, and
//! ignore callbacks that are not theirs — so any set of workloads can be
//! composed with [`compose::Pair`] and run concurrently, exactly like
//! the paper's background + foreground mix.

#![forbid(unsafe_code)]

pub mod compose;
pub mod gridnpb;
pub mod http;
pub mod rng;
pub mod scalapack;

pub use compose::Pair;
pub use gridnpb::{
    helical_chain, mixed_bag, visualization_pipeline, WorkflowApp, WorkflowSpec, WorkflowTask,
};
pub use http::{HttpConfig, HttpTraffic};
pub use scalapack::{ScaLapackApp, ScaLapackConfig};

/// Tag a token/meta word with an app namespace (high byte).
#[inline]
pub fn tag(ns: u8, value: u64) -> u64 {
    debug_assert!(value < (1u64 << 56));
    ((ns as u64) << 56) | value
}

/// Split a tagged word into `(namespace, value)`.
#[inline]
pub fn untag(word: u64) -> (u8, u64) {
    ((word >> 56) as u8, word & ((1u64 << 56) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        let w = tag(7, 123_456);
        assert_eq!(untag(w), (7, 123_456));
        assert_eq!(untag(tag(0, 0)), (0, 0));
        assert_eq!(untag(tag(255, (1 << 56) - 1)), (255, (1 << 56) - 1));
    }
}
