//! AS-level topology: power-law AS graph, Internet-hierarchy
//! classification, and AS relationship assignment.
//!
//! Implements steps 1–3 of the paper's automatic routing configuration
//! procedure (Section 5.1.2):
//!
//! 1. Generate the AS-level topology following the power law.
//! 2. Classify ASes by connection degree: *Core* (top-degree ASes),
//!    *Stub* (degree 1–2), *Regional ISP* (everything else).
//! 3. Decide AS relationships: provider-and-customer between levels
//!    (Core–Stub, Regional–Stub, Core–Regional) and peer-and-peer between
//!    ASes of the same level. Two structural guarantees are enforced:
//!    every non-Core AS has a provider path to a Core AS, and the Core
//!    ASes form a clique (the "Dense Core" observation).

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Internet-hierarchy class of an AS (paper Section 2.2 / 5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsClass {
    /// Dense-core / Tier-1 provider. Cores form a clique of peers.
    Core,
    /// Mid-level transit provider.
    RegionalIsp,
    /// Customer / edge AS (degree 1–2).
    Stub,
}

/// Business relationship on an inter-AS edge, from the perspective of the
/// edge's `(a, b)` ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsRelationship {
    /// `a` is the provider of `b`.
    ProviderOf,
    /// `a` is the customer of `b`.
    CustomerOf,
    /// `a` and `b` are peers.
    PeerPeer,
}

impl AsRelationship {
    /// The same relationship viewed from the other endpoint.
    pub fn reverse(self) -> Self {
        match self {
            AsRelationship::ProviderOf => AsRelationship::CustomerOf,
            AsRelationship::CustomerOf => AsRelationship::ProviderOf,
            AsRelationship::PeerPeer => AsRelationship::PeerPeer,
        }
    }
}

/// An inter-AS adjacency with its business relationship.
#[derive(Debug, Clone, Copy)]
pub struct AsEdge {
    pub a: usize,
    pub b: usize,
    /// Relationship of `a` relative to `b`.
    pub rel: AsRelationship,
}

/// The AS-level graph: adjacency, classes, and relationships.
#[derive(Debug, Clone)]
pub struct AsGraph {
    pub n: usize,
    pub edges: Vec<AsEdge>,
    pub classes: Vec<AsClass>,
    adjacency: Vec<Vec<usize>>, // edge indices per AS
}

impl AsGraph {
    /// Generate an AS graph with `n` ASes via preferential attachment
    /// (`m` links per new AS), classify, and assign relationships.
    ///
    /// `core_fraction` bounds the Core size (at least 2 ASes and at least
    /// 1% of ASes are Core so a Dense Core always exists); degree-1/2 ASes
    /// become Stub; the rest Regional ISP.
    pub fn generate(n: usize, m: usize, core_fraction: f64, seed: u64) -> AsGraph {
        assert!(n >= 3, "need at least 3 ASes for a meaningful hierarchy");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = m.max(1);

        // -- Step 1: power-law AS connectivity (preferential attachment) --
        let mut degree = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n]; // neighbor AS ids
        let mut raw_edges: Vec<(usize, usize)> = Vec::new();
        let add_edge = |a: usize,
                        b: usize,
                        degree: &mut Vec<usize>,
                        adj: &mut Vec<Vec<usize>>,
                        raw_edges: &mut Vec<(usize, usize)>| {
            degree[a] += 1;
            degree[b] += 1;
            adj[a].push(b);
            adj[b].push(a);
            raw_edges.push((a.min(b), a.max(b)));
        };
        add_edge(0, 1, &mut degree, &mut adj, &mut raw_edges);
        for i in 2..n {
            let want = m.min(i);
            let mut added = 0;
            while added < want {
                let total: usize = (0..i)
                    .filter(|&c| !adj[i].contains(&c))
                    .map(|c| degree[c] + 1)
                    .sum();
                if total == 0 {
                    break;
                }
                let mut ticket = rng.gen_range(0..total);
                for c in 0..i {
                    if adj[i].contains(&c) {
                        continue;
                    }
                    let w = degree[c] + 1;
                    if ticket < w {
                        add_edge(i, c, &mut degree, &mut adj, &mut raw_edges);
                        added += 1;
                        break;
                    }
                    ticket -= w;
                }
            }
        }

        // -- Step 2: classification by degree rank / absolute degree --
        let core_size = ((n as f64 * core_fraction).round() as usize).clamp(2, n.max(2) - 1);
        let mut by_degree: Vec<usize> = (0..n).collect();
        by_degree.sort_by_key(|&a| std::cmp::Reverse(degree[a]));
        let mut classes = vec![AsClass::RegionalIsp; n];
        for &a in &by_degree[..core_size] {
            classes[a] = AsClass::Core;
        }
        for a in 0..n {
            if classes[a] != AsClass::Core && degree[a] <= 2 {
                classes[a] = AsClass::Stub;
            }
        }

        // -- Structural guarantee: Core clique ("Dense Core") --
        let cores: Vec<usize> = (0..n).filter(|&a| classes[a] == AsClass::Core).collect();
        for (ci, &a) in cores.iter().enumerate() {
            for &b in &cores[ci + 1..] {
                if !adj[a].contains(&b) {
                    add_edge(a, b, &mut degree, &mut adj, &mut raw_edges);
                }
            }
        }

        // -- Step 3: relationships --
        let rank = |c: AsClass| match c {
            AsClass::Core => 2u8,
            AsClass::RegionalIsp => 1,
            AsClass::Stub => 0,
        };
        let mut edges: Vec<AsEdge> = raw_edges
            .iter()
            .map(|&(a, b)| {
                let (ra, rb) = (rank(classes[a]), rank(classes[b]));
                let rel = match ra.cmp(&rb) {
                    std::cmp::Ordering::Greater => AsRelationship::ProviderOf,
                    std::cmp::Ordering::Less => AsRelationship::CustomerOf,
                    std::cmp::Ordering::Equal => AsRelationship::PeerPeer,
                };
                AsEdge { a, b, rel }
            })
            .collect();

        // -- Structural guarantee: every non-Core AS reaches a Core AS via
        // a chain of provider links. Walk the provider-reachability set and
        // attach orphans to a random Core (or Regional for Stubs) provider.
        loop {
            let reachable = provider_reachable(n, &edges, &classes);
            let mut fixed_any = false;
            for a in 0..n {
                if !reachable[a] {
                    // Attach `a` as customer of a random Core AS.
                    let &core = cores.choose(&mut rng).expect("core set non-empty");
                    if !adj[a].contains(&core) {
                        add_edge(a, core, &mut degree, &mut adj, &mut raw_edges);
                        edges.push(AsEdge {
                            a,
                            b: core,
                            rel: AsRelationship::CustomerOf,
                        });
                        fixed_any = true;
                    } else {
                        // Existing same-level peer edge to a core? Then `a`
                        // must be Core itself, which is always reachable —
                        // cannot happen. Upgrade the edge to customer.
                        for e in edges.iter_mut() {
                            if (e.a == a && e.b == core) || (e.a == core && e.b == a) {
                                e.rel = if e.a == a {
                                    AsRelationship::CustomerOf
                                } else {
                                    AsRelationship::ProviderOf
                                };
                                fixed_any = true;
                            }
                        }
                    }
                }
            }
            if !fixed_any {
                break;
            }
        }

        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            adjacency[e.a].push(i);
            adjacency[e.b].push(i);
        }
        AsGraph {
            n,
            edges,
            classes,
            adjacency,
        }
    }

    /// Edge indices incident to AS `a`.
    pub fn incident(&self, a: usize) -> &[usize] {
        &self.adjacency[a]
    }

    /// Iterate `(neighbor, relationship-of-a-toward-neighbor)` pairs.
    pub fn neighbors(&self, a: usize) -> impl Iterator<Item = (usize, AsRelationship)> + '_ {
        self.adjacency[a].iter().map(move |&ei| {
            let e = &self.edges[ei];
            if e.a == a {
                (e.b, e.rel)
            } else {
                (e.a, e.rel.reverse())
            }
        })
    }

    /// The providers of AS `a`.
    pub fn providers(&self, a: usize) -> Vec<usize> {
        self.neighbors(a)
            .filter(|&(_, r)| r == AsRelationship::CustomerOf)
            .map(|(b, _)| b)
            .collect()
    }

    /// The customers of AS `a`.
    pub fn customers(&self, a: usize) -> Vec<usize> {
        self.neighbors(a)
            .filter(|&(_, r)| r == AsRelationship::ProviderOf)
            .map(|(b, _)| b)
            .collect()
    }

    /// The peers of AS `a`.
    pub fn peers(&self, a: usize) -> Vec<usize> {
        self.neighbors(a)
            .filter(|&(_, r)| r == AsRelationship::PeerPeer)
            .map(|(b, _)| b)
            .collect()
    }

    /// All Core AS ids.
    pub fn core_ases(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&a| self.classes[a] == AsClass::Core)
            .collect()
    }

    /// All Stub AS ids.
    pub fn stub_ases(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&a| self.classes[a] == AsClass::Stub)
            .collect()
    }

    /// True if every AS can reach a Core AS through provider links only
    /// (the paper's step-3 guarantee of full connectivity).
    pub fn all_provider_connected(&self) -> bool {
        provider_reachable(self.n, &self.edges, &self.classes)
            .iter()
            .all(|&r| r)
    }

    /// A copy of this graph with the `a`–`b` adjacency removed (used for
    /// failure studies of multi-homed default/backup routing).
    pub fn without_edge(&self, a: usize, b: usize) -> AsGraph {
        let edges: Vec<AsEdge> = self
            .edges
            .iter()
            .copied()
            .filter(|e| !((e.a == a && e.b == b) || (e.a == b && e.b == a)))
            .collect();
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for (i, e) in edges.iter().enumerate() {
            adjacency[e.a].push(i);
            adjacency[e.b].push(i);
        }
        AsGraph {
            n: self.n,
            edges,
            classes: self.classes.clone(),
            adjacency,
        }
    }
}

/// Which ASes reach a Core AS by repeatedly following customer→provider
/// links (Cores are trivially reachable).
fn provider_reachable(_n: usize, edges: &[AsEdge], classes: &[AsClass]) -> Vec<bool> {
    let mut reach: Vec<bool> = classes.iter().map(|&c| c == AsClass::Core).collect();
    // Propagate down from providers to customers until fixpoint.
    loop {
        let mut changed = false;
        for e in edges {
            let (cust, prov) = match e.rel {
                AsRelationship::CustomerOf => (e.a, e.b),
                AsRelationship::ProviderOf => (e.b, e.a),
                AsRelationship::PeerPeer => continue,
            };
            if reach[prov] && !reach[cust] {
                reach[cust] = true;
                changed = true;
            }
        }
        if !changed {
            return reach;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, seed: u64) -> AsGraph {
        AsGraph::generate(n, 2, 0.08, seed)
    }

    #[test]
    fn relationship_reverse_is_involutive() {
        for r in [
            AsRelationship::ProviderOf,
            AsRelationship::CustomerOf,
            AsRelationship::PeerPeer,
        ] {
            assert_eq!(r.reverse().reverse(), r);
        }
    }

    #[test]
    fn core_forms_clique() {
        let g = gen(50, 7);
        let cores = g.core_ases();
        assert!(cores.len() >= 2);
        for (i, &a) in cores.iter().enumerate() {
            for &b in &cores[i + 1..] {
                assert!(
                    g.neighbors(a).any(|(x, _)| x == b),
                    "cores {a} and {b} not adjacent"
                );
            }
        }
    }

    #[test]
    fn cores_are_mutual_peers() {
        let g = gen(50, 7);
        let cores = g.core_ases();
        for &a in &cores {
            for (b, rel) in g.neighbors(a) {
                if g.classes[b] == AsClass::Core {
                    assert_eq!(rel, AsRelationship::PeerPeer);
                }
            }
        }
    }

    #[test]
    fn every_as_provider_connected_to_core() {
        for seed in 0..8 {
            let g = gen(60, seed);
            assert!(g.all_provider_connected(), "seed {seed}");
        }
    }

    #[test]
    fn stubs_never_provide_transit() {
        let g = gen(80, 3);
        for a in g.stub_ases() {
            assert!(
                g.customers(a).is_empty(),
                "stub {a} has customers {:?}",
                g.customers(a)
            );
        }
    }

    #[test]
    fn classification_covers_all_and_stub_majority_for_low_m() {
        let g = AsGraph::generate(100, 1, 0.05, 11);
        let stubs = g.stub_ases().len();
        let cores = g.core_ases().len();
        assert_eq!(
            g.classes.len(),
            100,
            "every AS classified exactly once by construction"
        );
        // Paper: Customers ≈ 90% of ASes; with m=1 the vast majority of
        // ASes are degree-1 leaves.
        assert!(stubs > 50, "stubs {stubs}");
        assert!((2..=10).contains(&cores), "cores {cores}");
    }

    #[test]
    fn relationships_follow_hierarchy() {
        let g = gen(70, 21);
        for e in &g.edges {
            let (ca, cb) = (g.classes[e.a], g.classes[e.b]);
            match e.rel {
                AsRelationship::PeerPeer => {
                    // Peers only at the same level... except upgraded
                    // orphan-fix edges are never PeerPeer, so strict check:
                    assert_eq!(
                        std::mem::discriminant(&ca),
                        std::mem::discriminant(&cb),
                        "peer edge between {ca:?} and {cb:?}"
                    );
                }
                AsRelationship::ProviderOf => {
                    assert!(rank(ca) >= rank(cb), "{ca:?} providing for {cb:?}");
                }
                AsRelationship::CustomerOf => {
                    assert!(rank(ca) <= rank(cb), "{ca:?} customer of {cb:?}");
                }
            }
        }
        fn rank(c: AsClass) -> u8 {
            match c {
                AsClass::Core => 2,
                AsClass::RegionalIsp => 1,
                AsClass::Stub => 0,
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = gen(40, 99);
        let b = gen(40, 99);
        assert_eq!(a.edges.len(), b.edges.len());
        for (x, y) in a.edges.iter().zip(&b.edges) {
            assert_eq!((x.a, x.b, x.rel), (y.a, y.b, y.rel));
        }
    }

    #[test]
    fn provider_customer_views_agree() {
        let g = gen(45, 5);
        for a in 0..g.n {
            for p in g.providers(a) {
                assert!(g.customers(p).contains(&a));
            }
            for c in g.customers(a) {
                assert!(g.providers(c).contains(&a));
            }
        }
    }
}
