//! Generator configuration.
//!
//! Defaults mirror the paper's experimental setups (Sections 4.2 and
//! 5.2.1), with `paper_*` constructors for the full-scale configurations
//! and `Default` giving a laptop-scale variant with the same shape.

use serde::{Deserialize, Serialize};

/// Configuration for the flat (single-AS) BRITE-style generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatTopologyConfig {
    /// Number of routers.
    pub routers: usize,
    /// Number of hosts, attached to random low-degree routers.
    pub hosts: usize,
    /// Side of the square placement area, miles.
    pub area_miles: f64,
    /// Links added per new router during preferential attachment (BRITE's
    /// `m`). The resulting mean degree is ≈ 2·m.
    pub links_per_new_router: usize,
    /// Fraction of routers placed in dense metro clusters (producing the
    /// small-latency edges central to the paper's MLL problem).
    pub metro_fraction: f64,
    /// Number of metro clusters.
    pub metro_count: usize,
    /// Radius of a metro cluster, miles.
    pub metro_radius_miles: f64,
    /// Backbone link bandwidth, bits/s (links between high-degree routers).
    pub backbone_bandwidth_bps: f64,
    /// Edge link bandwidth, bits/s.
    pub edge_bandwidth_bps: f64,
    /// Host access link bandwidth, bits/s.
    pub host_bandwidth_bps: f64,
    /// RNG seed.
    pub seed: u64,
}

impl FlatTopologyConfig {
    /// The paper's Section 4.2 network: 20,000 routers and 10,000 hosts
    /// over a 5000 mi × 5000 mi area.
    pub fn paper_single_as() -> Self {
        FlatTopologyConfig {
            routers: 20_000,
            hosts: 10_000,
            ..Self::default()
        }
    }

    /// A reduced configuration for unit tests.
    pub fn tiny() -> Self {
        FlatTopologyConfig {
            routers: 120,
            hosts: 40,
            metro_count: 3,
            ..Self::default()
        }
    }
}

impl Default for FlatTopologyConfig {
    fn default() -> Self {
        FlatTopologyConfig {
            routers: 2_000,
            hosts: 1_000,
            area_miles: 5_000.0,
            links_per_new_router: 2,
            metro_fraction: 0.7,
            metro_count: 40,
            metro_radius_miles: 30.0,
            backbone_bandwidth_bps: 2.5e9,
            edge_bandwidth_bps: 622e6,
            host_bandwidth_bps: 100e6,
            seed: 0x5EED_0001,
        }
    }
}

/// Configuration for the maBrite multi-AS generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiAsTopologyConfig {
    /// Number of Autonomous Systems.
    pub as_count: usize,
    /// Routers per AS.
    pub routers_per_as: usize,
    /// Total hosts, attached to random routers of Stub ASes.
    pub hosts: usize,
    /// Side of the square placement area, miles.
    pub area_miles: f64,
    /// Inter-AS links added per new AS in the AS-level power-law graph.
    pub as_links_per_new_as: usize,
    /// Intra-AS links per new router.
    pub links_per_new_router: usize,
    /// Geographic radius of one AS's router cloud, miles.
    pub as_radius_miles: f64,
    /// Fraction of ASes classified as Core ("top 2%" in the paper's
    /// Internet hierarchy discussion; the classification itself is by
    /// degree rank, this bounds the Core size).
    pub core_fraction: f64,
    /// Fraction classified Stub (paper: Customers ≈ 90% of all ASes).
    pub stub_fraction: f64,
    /// Inter-AS (provider/peer) link bandwidth, bits/s.
    pub inter_as_bandwidth_bps: f64,
    /// Intra-AS backbone bandwidth, bits/s.
    pub backbone_bandwidth_bps: f64,
    /// Intra-AS edge bandwidth, bits/s.
    pub edge_bandwidth_bps: f64,
    /// Host access link bandwidth, bits/s.
    pub host_bandwidth_bps: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MultiAsTopologyConfig {
    /// The paper's Section 5.2.1 network: 100 ASes × 200 routers plus
    /// 10,000 hosts on Stub ASes, over a 5000 mi × 5000 mi area.
    pub fn paper_multi_as() -> Self {
        MultiAsTopologyConfig {
            as_count: 100,
            routers_per_as: 200,
            hosts: 10_000,
            ..Self::default()
        }
    }

    /// A reduced configuration for unit tests.
    pub fn tiny() -> Self {
        MultiAsTopologyConfig {
            as_count: 10,
            routers_per_as: 12,
            hosts: 30,
            ..Self::default()
        }
    }
}

impl Default for MultiAsTopologyConfig {
    fn default() -> Self {
        MultiAsTopologyConfig {
            as_count: 20,
            routers_per_as: 100,
            hosts: 1_000,
            area_miles: 5_000.0,
            as_links_per_new_as: 2,
            links_per_new_router: 2,
            as_radius_miles: 120.0,
            core_fraction: 0.10,
            stub_fraction: 0.60,
            inter_as_bandwidth_bps: 2.5e9,
            backbone_bandwidth_bps: 1e9,
            edge_bandwidth_bps: 622e6,
            host_bandwidth_bps: 100e6,
            seed: 0x5EED_0002,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_section_4_2_and_5_2_1() {
        let s = FlatTopologyConfig::paper_single_as();
        assert_eq!(s.routers, 20_000);
        assert_eq!(s.hosts, 10_000);
        assert_eq!(s.area_miles, 5_000.0);

        let m = MultiAsTopologyConfig::paper_multi_as();
        assert_eq!(m.as_count, 100);
        assert_eq!(m.routers_per_as, 200);
        assert_eq!(m.hosts, 10_000);
    }

    #[test]
    fn configs_implement_serde() {
        fn assert_serde<T: serde::Serialize + for<'a> serde::Deserialize<'a>>(_: &T) {}
        assert_serde(&FlatTopologyConfig::default());
        assert_serde(&MultiAsTopologyConfig::default());
    }
}
