//! Planar geometry for geographic node placement.
//!
//! The paper spreads 20,000 routers and 10,000 hosts over a
//! 5000 mile × 5000 mile area ("roughly the size of the North American
//! continent") and derives link propagation latency from distance.

use serde::{Deserialize, Serialize};

/// Speed of light in vacuum, miles per second.
pub const LIGHT_SPEED_MI_PER_S: f64 = 186_282.0;

/// Propagation speed in optical fiber (refractive index ≈ 1.5 ⇒ ~2/3 c),
/// miles per second.
pub const FIBER_SPEED_MI_PER_S: f64 = LIGHT_SPEED_MI_PER_S * 2.0 / 3.0;

/// A point in the simulation plane, in miles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Create a point at `(x, y)` miles.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in miles.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Propagation delay in milliseconds for a fiber link of `miles` length.
///
/// A 124-mile link is roughly 1 ms; the paper's 0.1 ms-threshold steps for
/// the HPROF sweep correspond to ~12.4-mile distance buckets.
pub fn propagation_delay_ms(miles: f64) -> f64 {
    miles / FIBER_SPEED_MI_PER_S * 1_000.0
}

/// Minimum latency floor for co-located equipment (switch fabric, patch
/// fiber). Prevents zero-latency links, which a conservative discrete-event
/// engine cannot decouple at all.
pub const MIN_LINK_LATENCY_MS: f64 = 0.01;

/// Latency for a link between two placed nodes: propagation delay with the
/// co-location floor applied.
pub fn link_latency_ms(a: &Point, b: &Point) -> f64 {
    propagation_delay_ms(a.distance(b)).max(MIN_LINK_LATENCY_MS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(17.5, -3.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn propagation_delay_is_linear_in_distance() {
        let d1 = propagation_delay_ms(100.0);
        let d2 = propagation_delay_ms(200.0);
        assert!((d2 - 2.0 * d1).abs() < 1e-12);
    }

    #[test]
    fn cross_country_delay_is_tens_of_ms() {
        // ~3000 miles coast-to-coast should be ~24 ms one way in fiber.
        let d = propagation_delay_ms(3000.0);
        assert!(d > 20.0 && d < 30.0, "got {d}");
    }

    #[test]
    fn latency_floor_applies_to_colocated_nodes() {
        let a = Point::new(1.0, 1.0);
        assert_eq!(link_latency_ms(&a, &a), MIN_LINK_LATENCY_MS);
    }

    #[test]
    fn long_links_exceed_floor() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(500.0, 0.0);
        assert!(link_latency_ms(&a, &b) > MIN_LINK_LATENCY_MS);
    }
}
