//! The workspace-shared structured error type.
//!
//! `MassfError` lives here — at the bottom of the crate stack — so that
//! every layer above (`massf-routing`, `massf-faults`, `massf-netsim`,
//! `massf-core`) can return it without a dependency cycle. `massf-core`
//! re-exports it from `crates/core/src/error.rs` as the user-facing
//! entry point.

use std::fmt;

/// Structured errors for fault-path and configuration code. Library
/// crates return `Result<_, MassfError>` from fallible operations
/// instead of panicking, so fault injection and CLI layers can react
/// (reroute, abort a flow, print usage) rather than crash the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MassfError {
    /// No path exists between the endpoints (partition or BGP policy).
    Unroutable { src: u32, dst: u32 },
    /// A node id outside the network (or outside the routing domain).
    UnknownNode(u32),
    /// A link id outside the network.
    UnknownLink(u32),
    /// The two ASes are not adjacent in the AS-level graph.
    NotAdjacent { as_a: usize, as_b: usize },
    /// A routing process exceeded its convergence-round budget.
    NonConvergence { rounds: usize, budget: usize },
    /// A fault script references invalid entities or is inconsistent
    /// (e.g. `LinkUp` for a link that is already up).
    InvalidFaultScript(String),
    /// Invalid configuration or command-line arguments.
    InvalidConfig(String),
    /// A parallel run emitted a cross-partition event inside the current
    /// synchronization window: the window length exceeds the partition
    /// cut's minimum link latency, so conservative execution is unsound.
    /// Carries the offending partition, the violating event's timestamp,
    /// and the window length that was in force.
    LookaheadViolation {
        partition: u32,
        event_time_ns: u64,
        window_ns: u64,
    },
    /// A snapshot file (or one of its sections) failed structural
    /// validation: bad magic, truncated payload, CRC mismatch, or a
    /// field that decodes to an impossible value. `section` names the
    /// part that failed ("header", "events", "world", ...), `reason`
    /// says what was wrong. Torn writes and bit rot land here — the
    /// loader must reject, never panic or silently load garbage.
    SnapshotCorrupt { section: String, reason: String },
    /// The snapshot was written by an incompatible format version.
    SnapshotVersionMismatch { found: u32, expected: u32 },
    /// An OS-level I/O failure while reading or writing a snapshot
    /// (open, read, write, fsync, rename). `std::io::Error` is neither
    /// `Clone` nor `Eq`, so only its rendering is carried.
    SnapshotIo { path: String, reason: String },
    /// An event handle did not match its arena slot's generation: the
    /// payload was already taken (or the handle belongs to a different
    /// arena). Fallible executor paths surface this instead of the hot
    /// loop's panic.
    StaleEventHandle { index: u32, gen: u32 },
}

impl fmt::Display for MassfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MassfError::Unroutable { src, dst } => {
                write!(f, "no route from node {src} to node {dst}")
            }
            MassfError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            MassfError::UnknownLink(id) => write!(f, "unknown link id {id}"),
            MassfError::NotAdjacent { as_a, as_b } => {
                write!(f, "AS {as_a} and AS {as_b} are not adjacent")
            }
            MassfError::NonConvergence { rounds, budget } => {
                write!(f, "no convergence after {rounds} rounds (budget {budget})")
            }
            MassfError::InvalidFaultScript(msg) => write!(f, "invalid fault script: {msg}"),
            MassfError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MassfError::LookaheadViolation {
                partition,
                event_time_ns,
                window_ns,
            } => write!(
                f,
                "lookahead violation: partition {partition} scheduled a cross-partition \
                 event at {event_time_ns} ns inside the current {window_ns} ns window \
                 (window exceeds the partition's MLL?)"
            ),
            MassfError::SnapshotCorrupt { section, reason } => {
                write!(f, "corrupt snapshot: section `{section}`: {reason}")
            }
            MassfError::SnapshotVersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} is not supported (expected {expected})"
            ),
            MassfError::SnapshotIo { path, reason } => {
                write!(f, "snapshot I/O error on {path}: {reason}")
            }
            MassfError::StaleEventHandle { index, gen } => write!(
                f,
                "stale event handle: slot {index} generation {gen} was already taken"
            ),
        }
    }
}

impl std::error::Error for MassfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MassfError::Unroutable { src: 3, dst: 9 };
        assert_eq!(e.to_string(), "no route from node 3 to node 9");
        let e = MassfError::NotAdjacent { as_a: 1, as_b: 2 };
        assert!(e.to_string().contains("not adjacent"));
        let e = MassfError::InvalidFaultScript("link 99 out of range".into());
        assert!(e.to_string().contains("link 99"));
        let e = MassfError::SnapshotCorrupt {
            section: "events".into(),
            reason: "crc mismatch".into(),
        };
        assert!(e.to_string().contains("events"));
        assert!(e.to_string().contains("crc mismatch"));
        let e = MassfError::SnapshotVersionMismatch {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = MassfError::SnapshotIo {
            path: "/tmp/x.snap".into(),
            reason: "permission denied".into(),
        };
        assert!(e.to_string().contains("/tmp/x.snap"));
        let e = MassfError::StaleEventHandle { index: 4, gen: 7 };
        assert!(e.to_string().contains("slot 4"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MassfError::UnknownLink(1));
    }
}
