//! The workspace-shared structured error type.
//!
//! `MassfError` lives here — at the bottom of the crate stack — so that
//! every layer above (`massf-routing`, `massf-faults`, `massf-netsim`,
//! `massf-core`) can return it without a dependency cycle. `massf-core`
//! re-exports it from `crates/core/src/error.rs` as the user-facing
//! entry point.

use std::fmt;

/// Structured errors for fault-path and configuration code. Library
/// crates return `Result<_, MassfError>` from fallible operations
/// instead of panicking, so fault injection and CLI layers can react
/// (reroute, abort a flow, print usage) rather than crash the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MassfError {
    /// No path exists between the endpoints (partition or BGP policy).
    Unroutable { src: u32, dst: u32 },
    /// A node id outside the network (or outside the routing domain).
    UnknownNode(u32),
    /// A link id outside the network.
    UnknownLink(u32),
    /// The two ASes are not adjacent in the AS-level graph.
    NotAdjacent { as_a: usize, as_b: usize },
    /// A routing process exceeded its convergence-round budget.
    NonConvergence { rounds: usize, budget: usize },
    /// A fault script references invalid entities or is inconsistent
    /// (e.g. `LinkUp` for a link that is already up).
    InvalidFaultScript(String),
    /// Invalid configuration or command-line arguments.
    InvalidConfig(String),
    /// A parallel run emitted a cross-partition event inside the current
    /// synchronization window: the window length exceeds the partition
    /// cut's minimum link latency, so conservative execution is unsound.
    /// Carries the offending partition, the violating event's timestamp,
    /// and the window length that was in force.
    LookaheadViolation {
        partition: u32,
        event_time_ns: u64,
        window_ns: u64,
    },
}

impl fmt::Display for MassfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MassfError::Unroutable { src, dst } => {
                write!(f, "no route from node {src} to node {dst}")
            }
            MassfError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            MassfError::UnknownLink(id) => write!(f, "unknown link id {id}"),
            MassfError::NotAdjacent { as_a, as_b } => {
                write!(f, "AS {as_a} and AS {as_b} are not adjacent")
            }
            MassfError::NonConvergence { rounds, budget } => {
                write!(f, "no convergence after {rounds} rounds (budget {budget})")
            }
            MassfError::InvalidFaultScript(msg) => write!(f, "invalid fault script: {msg}"),
            MassfError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MassfError::LookaheadViolation {
                partition,
                event_time_ns,
                window_ns,
            } => write!(
                f,
                "lookahead violation: partition {partition} scheduled a cross-partition \
                 event at {event_time_ns} ns inside the current {window_ns} ns window \
                 (window exceeds the partition's MLL?)"
            ),
        }
    }
}

impl std::error::Error for MassfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MassfError::Unroutable { src: 3, dst: 9 };
        assert_eq!(e.to_string(), "no route from node 3 to node 9");
        let e = MassfError::NotAdjacent { as_a: 1, as_b: 2 };
        assert!(e.to_string().contains("not adjacent"));
        let e = MassfError::InvalidFaultScript("link 99 out of range".into());
        assert!(e.to_string().contains("link 99"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MassfError::UnknownLink(1));
    }
}
