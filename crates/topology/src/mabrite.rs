//! The *maBrite* multi-AS generator (paper Section 5.1.2, steps 1–3 and 6).
//!
//! Builds on [`crate::ashier::AsGraph`] for AS-level structure, then:
//!
//! * gives every AS a geographic home region (so intra-AS links are short
//!   and inter-AS links span larger distances — ASes are regional in
//!   practice),
//! * creates a power-law router topology *inside* every AS (step 6a),
//! * realizes each inter-AS adjacency as a link between randomly chosen
//!   border routers of the two ASes,
//! * attaches hosts to routers of Stub ASes only (the paper attaches its
//!   10,000 background/agent hosts to Stub ASes).
//!
//! Routing-policy configuration (steps 4–5) lives in `massf-routing`,
//! driven by the [`AsGraph`] relationships embedded here.

use crate::ashier::AsGraph;
use crate::brite::{attach_hosts, grow_powerlaw_routers, place_points};
use crate::config::MultiAsTopologyConfig;
use crate::geom::{link_latency_ms, Point};
use crate::graph::{AsId, Network, NodeId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A generated multi-AS network together with its AS-level structure.
#[derive(Debug, Clone)]
pub struct MultiAsNetwork {
    /// The full router/host/link graph. Node `as_id`s index into `as_graph`.
    pub network: Network,
    /// AS-level adjacency, classes, and business relationships.
    pub as_graph: AsGraph,
    /// `routers_of[a]` lists the routers of AS `a` in creation order.
    pub routers_of: Vec<Vec<NodeId>>,
}

impl MultiAsNetwork {
    /// Border routers of AS `a` (those terminating an inter-AS link).
    pub fn border_routers(&self, a: usize) -> Vec<NodeId> {
        self.routers_of[a]
            .iter()
            .copied()
            .filter(|&r| self.network.nodes[r.index()].border)
            .collect()
    }
}

/// Generate a multi-AS Internet-like network per the paper's Section 5.2.1
/// setup (100 ASes × 200 routers at paper scale).
pub fn generate_multi_as_network(cfg: &MultiAsTopologyConfig) -> MultiAsNetwork {
    assert!(cfg.as_count >= 3, "need at least 3 ASes");
    assert!(cfg.routers_per_as >= 2, "need at least 2 routers per AS");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // AS-level structure (steps 1–3).
    let as_graph = AsGraph::generate(
        cfg.as_count,
        cfg.as_links_per_new_as,
        cfg.core_fraction,
        cfg.seed ^ 0xA5A5_A5A5,
    );

    // Home region per AS: uniform centers over the area. Core ASes sit
    // closer to the middle (long-haul providers), stubs anywhere.
    let centers: Vec<Point> = (0..cfg.as_count)
        .map(|_| {
            Point::new(
                rng.gen_range(0.0..cfg.area_miles),
                rng.gen_range(0.0..cfg.area_miles),
            )
        })
        .collect();

    let mut network = Network::new();
    let mut routers_of: Vec<Vec<NodeId>> = Vec::with_capacity(cfg.as_count);

    // Per-AS router clouds (step 6a: power law inside each AS).
    for (a, center) in centers.iter().enumerate().take(cfg.as_count) {
        let positions = place_points(
            &mut rng,
            cfg.routers_per_as,
            cfg.as_radius_miles * 2.0,
            0.8,
            3,
            cfg.as_radius_miles / 4.0,
        )
        .into_iter()
        .map(|p| {
            Point::new(
                (center.x + p.x - cfg.as_radius_miles).clamp(0.0, cfg.area_miles),
                (center.y + p.y - cfg.as_radius_miles).clamp(0.0, cfg.area_miles),
            )
        })
        .collect::<Vec<_>>();
        let routers = grow_powerlaw_routers(
            &mut network,
            &mut rng,
            &positions,
            AsId(a as u16),
            cfg.links_per_new_router,
            cfg.backbone_bandwidth_bps,
            cfg.edge_bandwidth_bps,
        );
        routers_of.push(routers);
    }

    // Inter-AS links: one physical link per AS-level adjacency, between
    // the highest-degree (hub) routers of each side — real ISPs peer at
    // well-connected POPs. Jitter the choice so multiple adjacencies of
    // one AS do not all land on a single router.
    for e in &as_graph.edges {
        let pick = |routers: &[NodeId], rng: &mut ChaCha8Rng, net: &Network| -> NodeId {
            let mut best: Vec<NodeId> = routers.to_vec();
            best.sort_by_key(|&r| std::cmp::Reverse(net.degree(r)));
            let top = &best[..best.len().min(4)];
            top[rng.gen_range(0..top.len())]
        };
        let ra = pick(&routers_of[e.a], &mut rng, &network);
        let rb = pick(&routers_of[e.b], &mut rng, &network);
        let lat = link_latency_ms(
            &network.nodes[ra.index()].position,
            &network.nodes[rb.index()].position,
        );
        network.add_link(ra, rb, cfg.inter_as_bandwidth_bps, lat);
    }

    // Hosts on Stub ASes only.
    let stubs = as_graph.stub_ases();
    if !stubs.is_empty() && cfg.hosts > 0 {
        // Round-robin over stubs with a random remainder so host counts
        // are near-even but not perfectly regular.
        let base = cfg.hosts / stubs.len();
        let mut remainder = cfg.hosts % stubs.len();
        for &a in &stubs {
            let extra = if remainder > 0 {
                remainder -= 1;
                1
            } else {
                0
            };
            let count = base + extra;
            if count > 0 {
                attach_hosts(
                    &mut network,
                    &mut rng,
                    &routers_of[a],
                    count,
                    cfg.host_bandwidth_bps,
                );
            }
        }
    }

    debug_assert!(network.is_connected());
    MultiAsNetwork {
        network,
        as_graph,
        routers_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ashier::AsClass;
    use crate::graph::NodeKind;

    fn gen() -> MultiAsNetwork {
        generate_multi_as_network(&MultiAsTopologyConfig::tiny())
    }

    #[test]
    fn produces_requested_shape() {
        let cfg = MultiAsTopologyConfig::tiny();
        let m = gen();
        assert_eq!(m.as_graph.n, cfg.as_count);
        assert_eq!(m.network.router_count(), cfg.as_count * cfg.routers_per_as);
        assert_eq!(m.network.host_count(), cfg.hosts);
    }

    #[test]
    fn network_is_connected() {
        assert!(gen().network.is_connected());
    }

    #[test]
    fn inter_as_links_match_as_graph() {
        let m = gen();
        let inter = m.network.links.iter().filter(|l| l.inter_as).count();
        assert_eq!(inter, m.as_graph.edges.len());
    }

    #[test]
    fn every_as_has_its_routers() {
        let m = gen();
        for (a, routers) in m.routers_of.iter().enumerate() {
            for &r in routers {
                assert_eq!(m.network.nodes[r.index()].as_id, AsId(a as u16));
                assert_eq!(m.network.nodes[r.index()].kind, NodeKind::Router);
            }
        }
    }

    #[test]
    fn hosts_only_on_stub_ases() {
        let m = gen();
        for h in m.network.host_ids() {
            let as_id = m.network.nodes[h.index()].as_id;
            assert_eq!(
                m.as_graph.classes[as_id.0 as usize],
                AsClass::Stub,
                "host {h:?} attached to non-stub AS {as_id:?}"
            );
        }
    }

    #[test]
    fn every_non_isolated_as_has_border_routers() {
        let m = gen();
        for a in 0..m.as_graph.n {
            assert!(
                !m.border_routers(a).is_empty(),
                "AS {a} has no border router"
            );
        }
    }

    #[test]
    fn intra_as_links_shorter_than_typical_inter_as() {
        let m = gen();
        let mean = |iter: &mut dyn Iterator<Item = f64>| -> f64 {
            let v: Vec<f64> = iter.collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let intra = mean(
            &mut m
                .network
                .links
                .iter()
                .filter(|l| !l.inter_as)
                .map(|l| l.latency_ms),
        );
        let inter = mean(
            &mut m
                .network
                .links
                .iter()
                .filter(|l| l.inter_as)
                .map(|l| l.latency_ms),
        );
        assert!(
            intra < inter,
            "mean intra-AS latency {intra:.3} ms should be below inter-AS {inter:.3} ms"
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = gen();
        let b = gen();
        assert_eq!(a.network.link_count(), b.network.link_count());
        for (x, y) in a.network.links.iter().zip(&b.network.links) {
            assert_eq!((x.a, x.b), (y.a, y.b));
        }
    }
}
