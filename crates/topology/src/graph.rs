//! The core network graph: routers, hosts, and links.
//!
//! A [`Network`] is an undirected multigraph. Every node carries a
//! geographic [`Point`], an owning AS number, and a kind (router or host).
//! Every link carries bandwidth (bits/s) and propagation latency (ms).
//! Adjacency is stored per node for O(degree) neighborhood scans, which
//! the partitioners and routing protocols rely on.

use crate::geom::Point;
use serde::{Deserialize, Serialize};

/// Identifier of a node (router or host) in a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index into [`Network::nodes`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a link in a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The link's index into [`Network::links`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Autonomous System number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AsId(pub u16);

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A packet-forwarding router.
    Router,
    /// An end host (traffic source/sink); attaches to exactly one router.
    Host,
}

/// A node in the network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub id: NodeId,
    pub kind: NodeKind,
    /// Geographic position in miles.
    pub position: Point,
    /// Owning AS. Single-AS networks use `AsId(0)` throughout.
    pub as_id: AsId,
    /// True for routers that terminate an inter-AS link.
    pub border: bool,
}

/// An undirected link between two nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    pub id: LinkId,
    pub a: NodeId,
    pub b: NodeId,
    /// Capacity in bits per second (per direction).
    pub bandwidth_bps: f64,
    /// One-way propagation latency in milliseconds.
    pub latency_ms: f64,
    /// True if the endpoints belong to different ASes.
    pub inter_as: bool,
}

impl Link {
    /// The endpoint of this link that is not `from`.
    ///
    /// # Panics
    /// Panics if `from` is not an endpoint of this link.
    #[inline]
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else {
            debug_assert_eq!(from, self.b, "node {from:?} is not on link {:?}", self.id);
            self.a
        }
    }
}

/// An undirected network of routers, hosts, and links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Network {
    pub nodes: Vec<Node>,
    pub links: Vec<Link>,
    /// `adjacency[n]` lists the links incident to node `n`.
    adjacency: Vec<Vec<LinkId>>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Number of nodes (routers + hosts).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of router nodes.
    pub fn router_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Router)
            .count()
    }

    /// Number of host nodes.
    pub fn host_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Host)
            .count()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, kind: NodeKind, position: Point, as_id: AsId) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            kind,
            position,
            as_id,
            border: false,
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Add an undirected link, returning its id. Latency must be positive:
    /// a conservative engine derives its lookahead from link latencies.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist, endpoints are equal, or
    /// `latency_ms <= 0`.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth_bps: f64,
        latency_ms: f64,
    ) -> LinkId {
        assert!(a.index() < self.nodes.len(), "endpoint {a:?} out of range");
        assert!(b.index() < self.nodes.len(), "endpoint {b:?} out of range");
        assert_ne!(a, b, "self-loop links are not allowed");
        assert!(latency_ms > 0.0, "link latency must be positive");
        assert!(bandwidth_bps > 0.0, "link bandwidth must be positive");
        let inter_as = self.nodes[a.index()].as_id != self.nodes[b.index()].as_id;
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            a,
            b,
            bandwidth_bps,
            latency_ms,
            inter_as,
        });
        self.adjacency[a.index()].push(id);
        self.adjacency[b.index()].push(id);
        if inter_as {
            self.nodes[a.index()].border = true;
            self.nodes[b.index()].border = true;
        }
        id
    }

    /// Links incident to `node`.
    #[inline]
    pub fn incident(&self, node: NodeId) -> &[LinkId] {
        &self.adjacency[node.index()]
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Iterate over `(neighbor, link)` pairs of `node`.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, &Link)> + '_ {
        self.adjacency[node.index()].iter().map(move |&lid| {
            let link = &self.links[lid.index()];
            (link.other(node), link)
        })
    }

    /// Does an edge already exist between `a` and `b`?
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a.index()]
            .iter()
            .any(|&lid| self.links[lid.index()].other(a) == b)
    }

    /// Total bandwidth (bits/s) in and out of `node` — the TOP vertex
    /// weight of the paper (Section 3.3).
    pub fn total_bandwidth(&self, node: NodeId) -> f64 {
        self.adjacency[node.index()]
            .iter()
            .map(|&lid| self.links[lid.index()].bandwidth_bps)
            .sum()
    }

    /// The attachment router of a host (its unique router neighbor).
    ///
    /// Returns `None` for routers or unattached hosts.
    pub fn host_attachment(&self, host: NodeId) -> Option<NodeId> {
        if self.nodes[host.index()].kind != NodeKind::Host {
            return None;
        }
        self.neighbors(host)
            .find(|(n, _)| self.nodes[n.index()].kind == NodeKind::Router)
            .map(|(n, _)| n)
    }

    /// Smallest link latency in the network (ms). `None` if there are no
    /// links. This is the global lower bound on any partition's MLL.
    pub fn min_link_latency_ms(&self) -> Option<f64> {
        self.links
            .iter()
            .map(|l| l.latency_ms)
            .min_by(|x, y| x.partial_cmp(y).expect("latencies are finite"))
    }

    /// All node ids of routers.
    pub fn router_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Router)
            .map(|n| n.id)
            .collect()
    }

    /// All node ids of hosts.
    pub fn host_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Host)
            .map(|n| n.id)
            .collect()
    }

    /// All node ids belonging to AS `as_id`.
    pub fn nodes_in_as(&self, as_id: AsId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.as_id == as_id)
            .map(|n| n.id)
            .collect()
    }

    /// Distinct AS numbers present, ascending.
    pub fn as_ids(&self) -> Vec<AsId> {
        let mut ids: Vec<AsId> = self.nodes.iter().map(|n| n.as_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Check whether the network is connected (over routers and hosts),
    /// via BFS from node 0. Empty networks count as connected.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(NodeId(0));
        let mut count = 1usize;
        while let Some(n) = queue.pop_front() {
            for (m, _) in self.neighbors(n) {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    count += 1;
                    queue.push_back(m);
                }
            }
        }
        count == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> Network {
        // hub (router) with 3 router leaves and 1 host leaf
        let mut net = Network::new();
        let hub = net.add_node(NodeKind::Router, Point::new(0.0, 0.0), AsId(0));
        for i in 0..3 {
            let leaf = net.add_node(NodeKind::Router, Point::new(i as f64 + 1.0, 0.0), AsId(0));
            net.add_link(hub, leaf, 1e9, 0.5 + i as f64);
        }
        let host = net.add_node(NodeKind::Host, Point::new(0.0, 1.0), AsId(0));
        net.add_link(host, hub, 1e8, 0.1);
        net
    }

    #[test]
    fn counts() {
        let net = star();
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.link_count(), 4);
        assert_eq!(net.router_count(), 4);
        assert_eq!(net.host_count(), 1);
    }

    #[test]
    fn adjacency_and_degree() {
        let net = star();
        assert_eq!(net.degree(NodeId(0)), 4);
        assert_eq!(net.degree(NodeId(1)), 1);
        let neighbors: Vec<NodeId> = net.neighbors(NodeId(0)).map(|(n, _)| n).collect();
        assert_eq!(neighbors.len(), 4);
        assert!(neighbors.contains(&NodeId(4)));
    }

    #[test]
    fn link_other_endpoint() {
        let net = star();
        let l = &net.links[0];
        assert_eq!(l.other(l.a), l.b);
        assert_eq!(l.other(l.b), l.a);
    }

    #[test]
    fn host_attachment_finds_router() {
        let net = star();
        assert_eq!(net.host_attachment(NodeId(4)), Some(NodeId(0)));
        assert_eq!(net.host_attachment(NodeId(0)), None);
    }

    #[test]
    fn min_link_latency() {
        let net = star();
        assert_eq!(net.min_link_latency_ms(), Some(0.1));
        assert_eq!(Network::new().min_link_latency_ms(), None);
    }

    #[test]
    fn total_bandwidth_sums_incident_links() {
        let net = star();
        assert!((net.total_bandwidth(NodeId(0)) - (3.0 * 1e9 + 1e8)).abs() < 1.0);
    }

    #[test]
    fn inter_as_links_mark_border_routers() {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Router, Point::new(0.0, 0.0), AsId(1));
        let b = net.add_node(NodeKind::Router, Point::new(10.0, 0.0), AsId(2));
        net.add_link(a, b, 1e9, 1.0);
        assert!(net.links[0].inter_as);
        assert!(net.nodes[0].border && net.nodes[1].border);
        assert_eq!(net.as_ids(), vec![AsId(1), AsId(2)]);
    }

    #[test]
    fn connectivity() {
        let mut net = star();
        assert!(net.is_connected());
        net.add_node(NodeKind::Router, Point::new(99.0, 99.0), AsId(0));
        assert!(!net.is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Router, Point::new(0.0, 0.0), AsId(0));
        net.add_link(a, a, 1e9, 1.0);
    }

    #[test]
    #[should_panic(expected = "latency must be positive")]
    fn zero_latency_rejected() {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Router, Point::new(0.0, 0.0), AsId(0));
        let b = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
        net.add_link(a, b, 1e9, 0.0);
    }
}
