//! # massf-topology
//!
//! Network topology model and generators for the `massf-rs` reproduction of
//! *Realistic Large-Scale Online Network Simulation* (Liu & Chien, SC 2004).
//!
//! This crate provides:
//!
//! * A typed network graph ([`Network`]) of routers, hosts, and links with
//!   geographic placement, link bandwidth, and propagation latency.
//! * A BRITE-style degree-based power-law generator ([`brite`]) for large
//!   flat (single-AS) router topologies spread over a geographic area,
//!   following the paper's Section 4.2 setup (20,000 routers over a
//!   5000 mile × 5000 mile area).
//! * The *maBrite* multi-AS generator ([`mabrite`]) of Section 5.1.2:
//!   a power-law AS-level graph, AS classification into Core / Regional
//!   ISP / Stub, provider–customer and peer–peer relationship assignment,
//!   and per-AS router topologies with border routers.
//!
//! Latencies are derived from planar distance at the speed of light in
//! fiber, so that dense metro clusters produce the small link latencies
//! whose interaction with synchronization cost motivates the paper's
//! hierarchical partitioning (HPROF).

#![forbid(unsafe_code)]

pub mod ashier;
pub mod brite;
pub mod config;
pub mod error;
pub mod geom;
pub mod graph;
pub mod mabrite;

pub use ashier::{AsClass, AsGraph, AsRelationship};
pub use brite::generate_flat_network;
pub use config::{FlatTopologyConfig, MultiAsTopologyConfig};
pub use error::MassfError;
pub use geom::{propagation_delay_ms, Point};
pub use graph::{AsId, Link, LinkId, Network, Node, NodeId, NodeKind};
pub use mabrite::generate_multi_as_network;
