//! BRITE-style degree-based power-law topology generation.
//!
//! Following BRITE (Medina et al., MASCOTS'01) as adapted by the paper:
//! routers join one at a time and attach `m` links by *preferential
//! attachment* (probability proportional to current degree), which yields
//! a power-law degree distribution (Faloutsos³, SIGCOMM'99). We add the
//! geographic dimension the paper needs: most routers land inside dense
//! metro clusters, so that many links are short (small latency) while the
//! backbone links spanning the 5000-mile area are long. The resulting
//! latency spectrum is exactly what makes flat partitioning achieve a tiny
//! MLL on large networks (Section 3.4.1).

use crate::config::FlatTopologyConfig;
use crate::geom::{link_latency_ms, Point};
use crate::graph::{AsId, Network, NodeId, NodeKind};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Place `count` points: a `metro_fraction` share inside randomly-centered
/// metro discs, the rest uniform over the square.
pub(crate) fn place_points(
    rng: &mut impl Rng,
    count: usize,
    area: f64,
    metro_fraction: f64,
    metro_count: usize,
    metro_radius: f64,
) -> Vec<Point> {
    let centers: Vec<Point> = (0..metro_count.max(1))
        .map(|_| Point::new(rng.gen_range(0.0..area), rng.gen_range(0.0..area)))
        .collect();
    (0..count)
        .map(|_| {
            if rng.gen_bool(metro_fraction.clamp(0.0, 1.0)) {
                let c = centers[rng.gen_range(0..centers.len())];
                // Uniform in disc.
                let r = metro_radius * rng.gen::<f64>().sqrt();
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                Point::new(
                    (c.x + r * theta.cos()).clamp(0.0, area),
                    (c.y + r * theta.sin()).clamp(0.0, area),
                )
            } else {
                Point::new(rng.gen_range(0.0..area), rng.gen_range(0.0..area))
            }
        })
        .collect()
}

/// Preferential-attachment target selection: pick an existing node with
/// probability proportional to degree + 1 (the +1 keeps degree-0 seeds
/// reachable), excluding `exclude` and nodes already linked to it.
fn pick_preferential(
    rng: &mut impl Rng,
    net: &Network,
    candidates: &[NodeId],
    exclude: NodeId,
) -> Option<NodeId> {
    let total: usize = candidates
        .iter()
        .filter(|&&c| c != exclude && !net.has_link(c, exclude))
        .map(|&c| net.degree(c) + 1)
        .sum();
    if total == 0 {
        return None;
    }
    let mut ticket = rng.gen_range(0..total);
    for &c in candidates {
        if c == exclude || net.has_link(c, exclude) {
            continue;
        }
        let w = net.degree(c) + 1;
        if ticket < w {
            return Some(c);
        }
        ticket -= w;
    }
    None
}

/// Grow a power-law router graph over the given placed positions inside
/// `net`, assigning bandwidth by degree tier. Returns the created router
/// ids, in creation order. Used by both the flat generator and (per AS)
/// by maBrite.
pub(crate) fn grow_powerlaw_routers(
    net: &mut Network,
    rng: &mut impl Rng,
    positions: &[Point],
    as_id: AsId,
    links_per_new: usize,
    backbone_bw: f64,
    edge_bw: f64,
) -> Vec<NodeId> {
    let n = positions.len();
    assert!(n >= 2, "need at least two routers");
    let m = links_per_new.max(1);
    let mut routers = Vec::with_capacity(n);
    for &p in positions {
        routers.push(net.add_node(NodeKind::Router, p, as_id));
    }
    // Seed: connect router 1 to router 0.
    {
        let lat = link_latency_ms(&positions[0], &positions[1]);
        net.add_link(routers[0], routers[1], backbone_bw, lat);
    }
    for i in 2..n {
        let new = routers[i];
        let want = m.min(i);
        let mut added = 0;
        while added < want {
            match pick_preferential(rng, net, &routers[..i], new) {
                Some(target) => {
                    let lat = link_latency_ms(&positions[i], &net.nodes[target.index()].position);
                    // Bandwidth tier: links toward high-degree (backbone)
                    // routers get backbone capacity.
                    let bw = if net.degree(target) >= 2 * m + 2 {
                        backbone_bw
                    } else {
                        edge_bw
                    };
                    net.add_link(new, target, bw, lat);
                    added += 1;
                }
                None => break, // all candidates already linked
            }
        }
    }
    routers
}

/// Attach `hosts` host nodes to the given routers, preferring low-degree
/// (edge) routers as real access networks do. Each host gets one access
/// link whose latency reflects a short local loop.
pub(crate) fn attach_hosts(
    net: &mut Network,
    rng: &mut impl Rng,
    routers: &[NodeId],
    hosts: usize,
    host_bw: f64,
) -> Vec<NodeId> {
    assert!(!routers.is_empty());
    // Candidate pool: the half of routers with the smallest degree.
    let mut by_degree: Vec<NodeId> = routers.to_vec();
    by_degree.sort_by_key(|&r| net.degree(r));
    let pool = &by_degree[..by_degree.len().div_ceil(2)];
    (0..hosts)
        .map(|_| {
            let r = pool[rng.gen_range(0..pool.len())];
            let rp = net.nodes[r.index()].position;
            // Hosts sit 0.5–5 miles from their router.
            let d = rng.gen_range(0.5..5.0);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let hp = Point::new(rp.x + d * theta.cos(), rp.y + d * theta.sin());
            let h = net.add_node(NodeKind::Host, hp, net.nodes[r.index()].as_id);
            net.add_link(h, r, host_bw, link_latency_ms(&hp, &rp));
            h
        })
        .collect()
}

/// Generate a flat single-AS network per the paper's Section 4.2 setup.
///
/// The returned network is connected; all nodes carry `AsId(0)`.
pub fn generate_flat_network(cfg: &FlatTopologyConfig) -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut net = Network::new();
    let positions = place_points(
        &mut rng,
        cfg.routers,
        cfg.area_miles,
        cfg.metro_fraction,
        cfg.metro_count,
        cfg.metro_radius_miles,
    );
    let routers = grow_powerlaw_routers(
        &mut net,
        &mut rng,
        &positions,
        AsId(0),
        cfg.links_per_new_router,
        cfg.backbone_bandwidth_bps,
        cfg.edge_bandwidth_bps,
    );
    attach_hosts(
        &mut net,
        &mut rng,
        &routers,
        cfg.hosts,
        cfg.host_bandwidth_bps,
    );
    debug_assert!(net.is_connected());
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_tiny() -> Network {
        generate_flat_network(&FlatTopologyConfig::tiny())
    }

    #[test]
    fn produces_requested_counts() {
        let cfg = FlatTopologyConfig::tiny();
        let net = gen_tiny();
        assert_eq!(net.router_count(), cfg.routers);
        assert_eq!(net.host_count(), cfg.hosts);
    }

    #[test]
    fn network_is_connected() {
        assert!(gen_tiny().is_connected());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = gen_tiny();
        let b = gen_tiny();
        assert_eq!(a.link_count(), b.link_count());
        for (la, lb) in a.links.iter().zip(&b.links) {
            assert_eq!((la.a, la.b), (lb.a, lb.b));
            assert_eq!(la.latency_ms, lb.latency_ms);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = gen_tiny();
        let mut cfg = FlatTopologyConfig::tiny();
        cfg.seed ^= 0xDEAD_BEEF;
        let b = generate_flat_network(&cfg);
        let same = a
            .links
            .iter()
            .zip(&b.links)
            .all(|(x, y)| (x.a, x.b) == (y.a, y.b));
        assert!(!same, "distinct seeds should give distinct graphs");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Power-law graphs have a max degree far above the mean.
        let net = generate_flat_network(&FlatTopologyConfig {
            routers: 800,
            hosts: 0,
            ..FlatTopologyConfig::tiny()
        });
        let degrees: Vec<usize> = net.router_ids().iter().map(|&r| net.degree(r)).collect();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        let max = *degrees.iter().max().expect("routers exist");
        assert!(
            (max as f64) > 4.0 * mean,
            "max degree {max} should dominate mean {mean:.2}"
        );
    }

    #[test]
    fn mean_degree_tracks_links_per_new_router() {
        let cfg = FlatTopologyConfig {
            routers: 500,
            hosts: 0,
            ..FlatTopologyConfig::tiny()
        };
        let net = generate_flat_network(&cfg);
        let mean = 2.0 * net.link_count() as f64 / net.router_count() as f64;
        let target = 2.0 * cfg.links_per_new_router as f64;
        assert!(
            (mean - target).abs() < 0.5,
            "mean degree {mean:.2} vs target {target}"
        );
    }

    #[test]
    fn latency_spectrum_has_short_and_long_links() {
        let net = gen_tiny();
        let min = net.min_link_latency_ms().expect("links exist");
        let max = net
            .links
            .iter()
            .map(|l| l.latency_ms)
            .fold(0.0f64, f64::max);
        // Metro links are sub-ms; backbone links span hundreds of miles.
        assert!(min < 0.5, "min latency {min}");
        assert!(max > 1.0, "max latency {max}");
    }

    #[test]
    fn all_nodes_in_as_zero() {
        let net = gen_tiny();
        assert_eq!(net.as_ids(), vec![AsId(0)]);
        assert!(net.links.iter().all(|l| !l.inter_as));
    }

    #[test]
    fn hosts_have_single_router_attachment() {
        let net = gen_tiny();
        for h in net.host_ids() {
            assert_eq!(net.degree(h), 1);
            assert!(net.host_attachment(h).is_some());
        }
    }

    #[test]
    fn positions_within_area() {
        let cfg = FlatTopologyConfig::tiny();
        let net = gen_tiny();
        for node in &net.nodes {
            if node.kind == NodeKind::Router {
                assert!(node.position.x >= 0.0 && node.position.x <= cfg.area_miles);
                assert!(node.position.y >= 0.0 && node.position.y <= cfg.area_miles);
            }
        }
    }
}
