//! # massf-parutil
//!
//! The workspace-shared parallel-execution layer: a scoped-thread
//! worker pool with deterministic, order-preserving `par_map`
//! primitives, plus the thread-count plumbing every binary shares.
//!
//! ## Thread-count resolution
//!
//! Highest priority first:
//!
//! 1. a thread-local override installed by [`with_threads`] (used by
//!    tests and benches to compare 1-thread vs N-thread runs in-process
//!    without races between concurrently running tests);
//! 2. the process-global override installed by [`set_threads`] (the
//!    figure binaries' `--threads` flag);
//! 3. the `MASSF_THREADS` environment variable;
//! 4. [`std::thread::available_parallelism`].
//!
//! ## Determinism
//!
//! Every primitive here is *order-preserving*: `par_map(xs, f)` returns
//! exactly `xs.iter().map(f).collect()` — the work distribution over
//! threads is dynamic (chunk stealing off an atomic cursor), but result
//! `i` always lands in slot `i`. Callers that keep `f` a pure function
//! of its input therefore get bit-identical output at every thread
//! count, which the determinism regression tests in `tests/` verify for
//! the HPROF sweep and the routing table builds.

#![forbid(unsafe_code)]

use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-global thread override; 0 = unset.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Thread-local override; 0 = unset.
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Install the process-global thread count (the `--threads` flag).
/// `0` clears the override.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Run `f` with the calling thread's worker count pinned to `n`.
///
/// The override only affects parallel sections *started from this
/// thread* (worker threads spawned inside them still execute), so
/// concurrent tests with different pins never interfere.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    LOCAL_THREADS.with(|c| {
        let prev = c.replace(n.max(1));
        let out = f();
        c.set(prev);
        out
    })
}

/// The effective worker count for parallel sections started from the
/// calling thread (see the crate docs for the resolution order).
pub fn current_threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local > 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(v) = std::env::var("MASSF_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Size of the chunks workers claim from the shared cursor: small
/// enough to balance skewed workloads, large enough to amortize the
/// cursor contention.
fn chunk_size(n_items: usize, threads: usize) -> usize {
    n_items.div_ceil(threads * 4).max(1)
}

/// Map `f` over `0..n`, in parallel, preserving index order.
///
/// Equivalent to `(0..n).map(f).collect()`; `f` runs concurrently on
/// up to [`current_threads`] scoped workers. Panics in `f` propagate.
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = chunk_size(n, threads);
    let cursor = AtomicUsize::new(0);
    // Workers emit (chunk_start, results) pairs; reassembled in index
    // order below, so dynamic scheduling never reorders output.
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let results: Vec<R> = (start..end).map(&f).collect();
                parts.lock().push((start, results));
            });
        }
    });
    let mut parts = parts.into_inner();
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, mut results) in parts {
        out.append(&mut results);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Map `f` over a slice, in parallel, preserving order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Split `0..n` into at most `pieces` near-equal contiguous ranges
/// (used to hand loop ranges to workers without a per-index closure).
pub fn split_ranges(n: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    let pieces = pieces.clamp(1, n.max(1));
    let base = n / pieces;
    let extra = n % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Map `f` over near-equal contiguous chunks of `0..n` — one call per
/// chunk, results concatenated in range order. The chunked analogue of
/// [`par_map_indexed`] for loops whose per-index cost is tiny (e.g.
/// scanning edges during graph contraction).
pub fn par_map_chunks<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
{
    let threads = current_threads();
    if threads <= 1 || n <= 1 {
        return f(0..n);
    }
    // More pieces than workers so a slow chunk doesn't serialize the
    // tail; order restored by par_map's index preservation.
    let ranges = split_ranges(n, threads * 4);
    let nested = par_map(&ranges, |r| f(r.clone()));
    nested.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = with_threads(4, || par_map(&items, |&x| x * 3));
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_matches_sequential_at_every_thread_count() {
        let reference: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = with_threads(threads, || par_map_indexed(257, |i| i * i));
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = with_threads(4, || par_map_indexed(0, |_| 1));
        assert!(empty.is_empty());
        let one = with_threads(4, || par_map_indexed(1, |i| i + 41));
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn with_threads_nests_and_restores() {
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
        });
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for (n, pieces) in [(10, 3), (3, 10), (0, 4), (16, 4), (17, 4)] {
            let ranges = split_ranges(n, pieces);
            let mut covered = 0;
            let mut expect_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expect_start, "contiguous");
                covered += r.len();
                expect_start = r.end;
            }
            assert_eq!(covered, n, "n={n} pieces={pieces}");
        }
    }

    #[test]
    fn par_map_chunks_concatenates_in_order() {
        let out = with_threads(4, || {
            par_map_chunks(100, |r| r.map(|i| i as u64).collect::<Vec<_>>())
        });
        assert_eq!(out, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_workloads_still_ordered() {
        // Later indices are much cheaper: dynamic chunking will finish
        // out of submission order; output must not.
        let out = with_threads(4, || {
            par_map_indexed(64, |i| {
                let spins = if i < 4 { 200_000 } else { 10 };
                let mut acc = i as u64;
                for k in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                (i, acc)
            })
        });
        for (slot, &(i, _)) in out.iter().enumerate() {
            assert_eq!(slot, i);
        }
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(2, || {
                par_map_indexed(8, |i| {
                    if i == 5 {
                        panic!("worker failure");
                    }
                    i
                })
            })
        });
        assert!(result.is_err());
    }
}
