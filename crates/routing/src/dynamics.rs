//! Dynamic BGP: update propagation, withdrawals, and the beacon study.
//!
//! The paper's Section 7 proposes validating the generated BGP
//! configuration against *BGP beacons* (Mao et al., IMC'03): prefixes
//! that are announced and withdrawn on a fixed schedule while observers
//! record the resulting update churn. This module implements the
//! machinery: a full per-neighbor Adj-RIB-In per speaker, incremental
//! best-route selection, and round-based update propagation — so a
//! prefix can be withdrawn and re-announced after convergence and the
//! resulting message counts, convergence times, and path exploration
//! measured (the classic labovitz-style path hunting is visible in the
//! withdrawal message counts).

// simlint: allow-file(cast-lossy) -- AS numbers here are usize graph indices < AsGraph::n, which the topology layer caps at u16::MAX
use crate::bgp::BgpRoute;
use crate::policy::{export_allowed, local_preference};
use massf_topology::{AsGraph, AsRelationship};
use std::collections::{BTreeMap, VecDeque};

/// One BGP speaker's state for a single destination prefix.
#[derive(Debug, Clone, Default)]
struct PrefixState {
    /// Candidate routes per neighbor (Adj-RIB-In): `(neighbor, route)`.
    candidates: Vec<(usize, BgpRoute)>,
    /// Currently selected best route (None = unreachable).
    best: Option<BgpRoute>,
}

/// An update message: `None` route = withdrawal.
#[derive(Debug, Clone)]
struct Update {
    from: usize,
    to: usize,
    route: Option<BgpRoute>,
}

/// Statistics from one propagation episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Convergence {
    /// Synchronous rounds until silence.
    pub rounds: usize,
    /// Total update messages exchanged.
    pub messages: usize,
    /// Messages that were withdrawals.
    pub withdrawals: usize,
}

/// Dynamic BGP state for one destination prefix (the beacon) over an AS
/// graph. All other prefixes are irrelevant to beacon dynamics, so the
/// simulator tracks exactly one.
pub struct BeaconSim<'a> {
    graph: &'a AsGraph,
    /// The AS originating the beacon prefix.
    pub origin: usize,
    state: Vec<PrefixState>,
    /// Adj-RIB-Out: `sent[a][b]` = AS path last announced by `a` to `b`.
    /// Withdrawals are only sent to neighbors that hold an announcement.
    /// BTreeMap, not HashMap: `withdraw()` iterates the keys to build
    /// the initial withdrawal burst, and that order must not depend on
    /// hasher state or the Update sequence differs run to run.
    sent: Vec<BTreeMap<usize, Vec<u16>>>,
    announced: bool,
}

impl<'a> BeaconSim<'a> {
    /// A beacon originated by `origin`, initially withdrawn everywhere.
    pub fn new(graph: &'a AsGraph, origin: usize) -> Self {
        assert!(origin < graph.n);
        BeaconSim {
            graph,
            origin,
            state: vec![PrefixState::default(); graph.n],
            sent: vec![BTreeMap::new(); graph.n],
            announced: false,
        }
    }

    /// Is the beacon currently announced?
    pub fn is_announced(&self) -> bool {
        self.announced
    }

    /// The AS path selected by `a` toward the beacon, if any.
    pub fn path_of(&self, a: usize) -> Option<&[u16]> {
        self.state[a].best.as_ref().map(|r| r.as_path.as_slice())
    }

    /// Number of ASes that currently have a route to the beacon
    /// (excluding the origin itself).
    pub fn reachable_count(&self) -> usize {
        (0..self.graph.n)
            .filter(|&a| a != self.origin && self.state[a].best.is_some())
            .count()
    }

    /// Announce the beacon and propagate to convergence.
    pub fn announce(&mut self) -> Convergence {
        assert!(!self.announced, "already announced");
        self.announced = true;
        let origin = self.origin;
        let neighbors: Vec<usize> = self
            .graph
            .neighbors(origin)
            .filter(|&(_, rel)| export_allowed(None, rel))
            .map(|(b, _)| b)
            .collect();
        let initial: Vec<Update> = neighbors
            .iter()
            .map(|&b| {
                self.sent[origin].insert(b, vec![origin as u16]);
                Update {
                    from: origin,
                    to: b,
                    route: Some(BgpRoute {
                        as_path: vec![origin as u16],
                        local_pref: 0, // import policy assigns it
                        learned_from: None,
                    }),
                }
            })
            .collect();
        self.propagate(initial)
    }

    /// Withdraw the beacon and propagate to convergence.
    pub fn withdraw(&mut self) -> Convergence {
        assert!(self.announced, "not announced");
        self.announced = false;
        let origin = self.origin;
        let holders: Vec<usize> = self.sent[origin].keys().copied().collect();
        self.sent[origin].clear();
        let initial: Vec<Update> = holders
            .into_iter()
            .map(|b| Update {
                from: origin,
                to: b,
                route: None,
            })
            .collect();
        self.propagate(initial)
    }

    /// Relationship of `a` toward `b`.
    fn rel(&self, a: usize, b: usize) -> AsRelationship {
        self.graph
            .neighbors(a)
            .find(|&(x, _)| x == b)
            .map(|(_, r)| r)
            .expect("adjacent ASes")
    }

    /// Process updates in synchronous rounds until silence.
    fn propagate(&mut self, initial: Vec<Update>) -> Convergence {
        let mut queue: VecDeque<Update> = initial.into_iter().collect();
        let mut stats = Convergence {
            rounds: 0,
            messages: 0,
            withdrawals: 0,
        };
        while !queue.is_empty() {
            stats.rounds += 1;
            assert!(
                stats.rounds <= 16 * self.graph.n + 16,
                "beacon propagation failed to converge"
            );
            let mut next: Vec<Update> = Vec::new();
            for update in queue.drain(..) {
                stats.messages += 1;
                if update.route.is_none() {
                    stats.withdrawals += 1;
                }
                let a = update.to;
                if a == self.origin {
                    continue; // the origin ignores routes to itself
                }
                // Import: replace the sender's Adj-RIB-In slot.
                let rel_to_sender = self.rel(a, update.from);
                let imported = update.route.and_then(|mut r| {
                    // Loop prevention.
                    if r.as_path.contains(&(a as u16)) {
                        return None;
                    }
                    r.local_pref = local_preference(rel_to_sender);
                    r.learned_from = Some(rel_to_sender);
                    Some(r)
                });
                let slot = &mut self.state[a];
                slot.candidates.retain(|(n, _)| *n != update.from);
                if let Some(r) = imported {
                    slot.candidates.push((update.from, r));
                }
                // Decision: best among candidates.
                let new_best = slot
                    .candidates
                    .iter()
                    .map(|(_, r)| r)
                    .fold(None::<&BgpRoute>, |acc, r| match acc {
                        None => Some(r),
                        Some(b) => {
                            if r.better_than(b) {
                                Some(r)
                            } else {
                                Some(b)
                            }
                        }
                    })
                    .cloned();
                if new_best == slot.best {
                    continue; // no change, no announcements
                }
                slot.best = new_best;
                // Export the new state to eligible neighbors.
                let best = self.state[a].best.clone();
                let neighbors: Vec<(usize, AsRelationship)> = self.graph.neighbors(a).collect();
                for (b, rel_a_to_b) in neighbors {
                    let exported = best.as_ref().and_then(|r| {
                        if !export_allowed(r.learned_from, rel_a_to_b) {
                            return None;
                        }
                        if r.as_path.contains(&(b as u16)) {
                            return None;
                        }
                        let mut path = Vec::with_capacity(r.as_path.len() + 1);
                        path.push(a as u16);
                        path.extend_from_slice(&r.as_path);
                        Some(BgpRoute {
                            as_path: path,
                            local_pref: 0,
                            learned_from: None, // set on import
                        })
                    });
                    // Adj-RIB-Out suppression: announce only changes;
                    // withdraw only from neighbors holding a route.
                    match exported {
                        Some(route) => {
                            let prev = self.sent[a].insert(b, route.as_path.clone());
                            if prev.as_deref() != Some(route.as_path.as_slice()) {
                                next.push(Update {
                                    from: a,
                                    to: b,
                                    route: Some(route),
                                });
                            }
                        }
                        None => {
                            if self.sent[a].remove(&b).is_some() {
                                next.push(Update {
                                    from: a,
                                    to: b,
                                    route: None,
                                });
                            }
                        }
                    }
                }
            }
            queue.extend(next);
        }
        stats
    }
}

/// Run a full beacon schedule: `cycles` × (announce, withdraw), as the
/// real beacon infrastructure does daily, returning per-episode
/// convergence stats in order (announce₀, withdraw₀, announce₁, …).
pub fn beacon_schedule(graph: &AsGraph, origin: usize, cycles: usize) -> Vec<Convergence> {
    let mut sim = BeaconSim::new(graph, origin);
    let mut episodes = Vec::with_capacity(2 * cycles);
    for _ in 0..cycles {
        episodes.push(sim.announce());
        episodes.push(sim.withdraw());
    }
    episodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::{is_valley_free, BgpRib};

    fn graph(n: usize, seed: u64) -> AsGraph {
        AsGraph::generate(n, 2, 0.1, seed)
    }

    #[test]
    fn announce_reaches_every_as() {
        let g = graph(30, 1);
        for origin in [0, 5, 29] {
            let mut sim = BeaconSim::new(&g, origin);
            let stats = sim.announce();
            assert_eq!(
                sim.reachable_count(),
                g.n - 1,
                "origin {origin}: beacon not fully propagated"
            );
            assert!(stats.messages >= g.n - 1);
            assert_eq!(stats.withdrawals, 0);
        }
    }

    #[test]
    fn withdraw_removes_every_route() {
        let g = graph(25, 2);
        let mut sim = BeaconSim::new(&g, 3);
        sim.announce();
        let stats = sim.withdraw();
        assert_eq!(sim.reachable_count(), 0);
        assert!(stats.withdrawals > 0);
    }

    #[test]
    fn dynamic_convergence_matches_static_rib() {
        // After an announce episode, every AS's selected path must equal
        // the path the synchronous whole-table computation selects.
        let g = graph(20, 7);
        let rib = BgpRib::compute(&g);
        for origin in 0..g.n {
            let mut sim = BeaconSim::new(&g, origin);
            sim.announce();
            for a in 0..g.n {
                if a == origin {
                    continue;
                }
                assert_eq!(
                    sim.path_of(a),
                    rib.as_path(a, origin),
                    "AS {a} → beacon {origin} disagrees with static RIB"
                );
            }
        }
    }

    #[test]
    fn beacon_paths_are_valley_free() {
        let g = graph(35, 11);
        let mut sim = BeaconSim::new(&g, 0);
        sim.announce();
        for a in 1..g.n {
            if let Some(p) = sim.path_of(a) {
                let mut full = vec![a];
                full.extend(p.iter().map(|&x| x as usize));
                assert!(is_valley_free(&g, &full), "{full:?}");
            }
        }
    }

    #[test]
    fn withdrawal_exhibits_path_exploration() {
        // Withdrawal churn (path hunting) generally costs at least as
        // many messages as the clean announcement on multi-homed
        // topologies — the beacon observation the paper cites.
        let g = graph(40, 13);
        let episodes = beacon_schedule(&g, 1, 1);
        let (announce, withdraw) = (episodes[0], episodes[1]);
        assert!(
            withdraw.messages + 5 >= announce.messages,
            "withdraw {} vs announce {}",
            withdraw.messages,
            announce.messages
        );
    }

    #[test]
    fn schedule_is_periodic() {
        // Repeated cycles produce identical episode stats: the protocol
        // state returns to baseline after each withdrawal.
        let g = graph(30, 17);
        let episodes = beacon_schedule(&g, 2, 3);
        assert_eq!(episodes[0], episodes[2]);
        assert_eq!(episodes[2], episodes[4]);
        assert_eq!(episodes[1], episodes[3]);
        assert_eq!(episodes[3], episodes[5]);
    }

    #[test]
    fn announce_then_withdraw_is_idempotent_on_state() {
        let g = graph(22, 19);
        let mut sim = BeaconSim::new(&g, 4);
        sim.announce();
        sim.withdraw();
        for a in 0..g.n {
            assert!(sim.path_of(a).is_none());
        }
        // Can re-announce.
        sim.announce();
        assert_eq!(sim.reachable_count(), g.n - 1);
    }

    #[test]
    #[should_panic(expected = "already announced")]
    fn double_announce_rejected() {
        let g = graph(10, 23);
        let mut sim = BeaconSim::new(&g, 0);
        sim.announce();
        sim.announce();
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Fault-dynamics invariant: on *any* random AS graph,
        /// withdraw → re-announce converges within the round budget and
        /// returns the protocol to its baseline state (same episode
        /// stats, full reachability restored).
        #[test]
        fn withdraw_reannounce_always_converges(
            n in 4usize..32,
            seed in 0u64..10_000,
            origin_raw in 0usize..1024,
        ) {
            let g = AsGraph::generate(n, 2, 0.1, seed);
            let origin = origin_raw % g.n;
            let budget = 16 * g.n + 16;
            let mut sim = BeaconSim::new(&g, origin);

            let a1 = sim.announce();
            prop_assert!(a1.rounds <= budget, "announce: {} rounds", a1.rounds);
            prop_assert_eq!(sim.reachable_count(), g.n - 1);

            let w = sim.withdraw();
            prop_assert!(w.rounds <= budget, "withdraw: {} rounds", w.rounds);
            prop_assert_eq!(sim.reachable_count(), 0);

            let a2 = sim.announce();
            prop_assert!(a2.rounds <= budget, "re-announce: {} rounds", a2.rounds);
            prop_assert_eq!(sim.reachable_count(), g.n - 1);
            // Withdrawal fully reset protocol state: the re-announce
            // episode is indistinguishable from the first.
            prop_assert_eq!(a1, a2);
        }
    }
}
