//! Deterministic, epoch-aware path cache (NIx-vector style route
//! memoization — DESIGN.md §3 item 11).
//!
//! Every flow setup, datagram, and fault-epoch RTO failover resolves a
//! full node-level path; workloads re-ask for the same `(src, dst)`
//! pairs constantly. [`RouteCache`] memoizes `(src, dst) → Arc<[NodeId]>`
//! in front of any [`PathResolver`] so repeated pairs skip Dijkstra and
//! BGP leg stitching entirely and hand out the shared `Arc` without
//! copying.
//!
//! ## Determinism
//!
//! The cache is *sharded by source node* and uses a *stamp-based LRU*
//! (monotone per-shard counter + lazy-deletion queue): eviction order is
//! a pure function of the query sequence, never of hasher iteration
//! order (the `HashMap` is only ever point-looked-up, respecting
//! simlint's D1 rule). Because the simulator only resolves routes from
//! the event handler of the *source* LP, each shard sees exactly the
//! same query sequence at any thread count or partitioning — so cache
//! contents, hit/miss/evict counters, and returned paths are
//! bit-identical across sequential, windowed, and parallel runs.
//!
//! ## Fault epochs
//!
//! Keys embed the fault-epoch index. Each epoch owns its resolver (see
//! `crates/faults`), so entries of a previous epoch can never be served
//! in a later one — invalidation by construction, no flushes. Negative
//! results (`None`: destination unreachable under BGP policy or a fault)
//! are cached too.

use crate::resolver::PathResolver;
use massf_topology::{MassfError, NodeId};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Route-cache observability counters. Deterministic for a fixed query
/// sequence; merged across partitions like any other profile counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that fell through to the resolver.
    pub misses: u64,
    /// Entries evicted to respect the per-source capacity.
    pub evictions: u64,
}

impl RouteCacheStats {
    /// Accumulate another shard's counters.
    pub fn merge(&mut self, other: &RouteCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    /// Hits / (hits + misses), or 0 when nothing was queried.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached resolution; `path` is `None` for cached-negative entries.
struct CacheEntry {
    path: Option<Arc<[NodeId]>>,
    /// Stamp of the entry's latest use; queue records with an older
    /// stamp are stale and skipped by eviction/compaction.
    stamp: u64,
}

/// Per-source cache shard: point-lookup map plus a lazy-deletion LRU
/// queue ordered by use stamp.
#[derive(Default)]
struct Shard {
    map: HashMap<u64, CacheEntry>,
    queue: VecDeque<(u64, u64)>, // (stamp, key), oldest first
    stamp: u64,
}

impl Shard {
    /// Drop stale queue records once the queue outgrows the live set by
    /// 4× (amortized O(1) per operation; keeps memory bounded under
    /// heavy hit traffic, which appends a queue record per hit).
    fn compact(&mut self, capacity: usize) {
        if self.queue.len() > capacity.saturating_mul(4).max(64) {
            let map = &self.map;
            self.queue
                .retain(|&(s, k)| map.get(&k).is_some_and(|e| e.stamp == s));
        }
    }
}

/// A bounded, sharded, deterministic-LRU cache of resolved paths keyed
/// by `(epoch, src, dst)`. See the module docs for the determinism and
/// epoch-invalidation arguments.
pub struct RouteCache {
    shards: Vec<Shard>,
    /// Max live entries per source shard; 0 disables the cache (every
    /// query is a pass-through and no counters move).
    capacity: usize,
}

impl RouteCache {
    /// A cache over `node_count` source shards holding at most
    /// `per_src_capacity` destinations each (`0` disables caching).
    /// Empty shards allocate nothing.
    pub fn new(node_count: usize, per_src_capacity: usize) -> Self {
        let shards = if per_src_capacity == 0 {
            Vec::new()
        } else {
            (0..node_count).map(|_| Shard::default()).collect()
        };
        RouteCache {
            shards,
            capacity: per_src_capacity,
        }
    }

    /// Is caching enabled (capacity > 0)?
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up `(epoch, src, dst)`; on a miss, resolve via `resolve`,
    /// cache the result (evicting the source's least-recently-used
    /// entry at capacity), and return it. Counters accrue to `stats`.
    pub fn get_or_insert_with(
        &mut self,
        stats: &mut RouteCacheStats,
        epoch: u32,
        src: NodeId,
        dst: NodeId,
        resolve: impl FnOnce() -> Option<Arc<[NodeId]>>,
    ) -> Option<Arc<[NodeId]>> {
        if self.capacity == 0 {
            return resolve();
        }
        let shard = &mut self.shards[src.index()];
        let key = (u64::from(epoch) << 32) | u64::from(dst.0);
        shard.stamp += 1;
        let stamp = shard.stamp;
        if let Some(entry) = shard.map.get_mut(&key) {
            stats.hits += 1;
            entry.stamp = stamp;
            let path = entry.path.clone();
            shard.queue.push_back((stamp, key));
            shard.compact(self.capacity);
            return path;
        }
        stats.misses += 1;
        let path = resolve();
        if shard.map.len() >= self.capacity {
            // Evict the least-recently-used live entry, skipping queue
            // records superseded by a later use of the same key.
            while let Some((s, k)) = shard.queue.pop_front() {
                if shard.map.get(&k).is_some_and(|e| e.stamp == s) {
                    shard.map.remove(&k);
                    stats.evictions += 1;
                    break;
                }
            }
        }
        shard.map.insert(
            key,
            CacheEntry {
                path: path.clone(),
                stamp,
            },
        );
        shard.queue.push_back((stamp, key));
        shard.compact(self.capacity);
        path
    }

    /// Export the cache's complete state for checkpointing. The output
    /// is canonical (a pure function of the query sequence, never of
    /// hasher order): live entries are recovered by walking the
    /// lazy-deletion queue and point-looking-up each record — every
    /// live entry's latest-stamp record is in the queue by invariant
    /// (inserts and hits push one; compaction retains exactly the live
    /// records) — so entries come out in LRU order without iterating
    /// the `HashMap`.
    pub fn export_state(&self) -> RouteCacheState {
        let shards = self
            .shards
            .iter()
            .map(|shard| {
                let mut entries = Vec::with_capacity(shard.map.len());
                for &(s, k) in &shard.queue {
                    if let Some(e) = shard.map.get(&k) {
                        if e.stamp == s {
                            entries.push(RouteCacheEntryState {
                                key: k,
                                stamp: s,
                                path: e.path.as_ref().map(|p| p.to_vec()),
                            });
                        }
                    }
                }
                RouteCacheShardState {
                    entries,
                    queue: shard.queue.iter().copied().collect(),
                    stamp: shard.stamp,
                }
            })
            .collect();
        RouteCacheState {
            capacity: self.capacity as u64,
            shards,
        }
    }

    /// Rebuild a cache from an exported state. The input may come from
    /// a snapshot file, so it is validated structurally; inconsistent
    /// states yield [`MassfError::SnapshotCorrupt`] instead of
    /// panicking or silently diverging later.
    pub fn from_state(state: &RouteCacheState) -> Result<RouteCache, MassfError> {
        let bad = |reason: String| MassfError::SnapshotCorrupt {
            section: "route-cache".into(),
            reason,
        };
        let capacity =
            usize::try_from(state.capacity).map_err(|_| bad("capacity exceeds usize".into()))?;
        if capacity == 0 && !state.shards.is_empty() {
            return Err(bad("disabled cache must have no shards".into()));
        }
        let mut shards = Vec::with_capacity(state.shards.len());
        for (i, s) in state.shards.iter().enumerate() {
            let mut map = HashMap::with_capacity(s.entries.len());
            for e in &s.entries {
                if e.stamp > s.stamp {
                    return Err(bad(format!(
                        "shard {i}: entry stamp {} beyond shard stamp {}",
                        e.stamp, s.stamp
                    )));
                }
                if map
                    .insert(
                        e.key,
                        CacheEntry {
                            path: e.path.as_ref().map(|p| Arc::from(p.as_slice())),
                            stamp: e.stamp,
                        },
                    )
                    .is_some()
                {
                    return Err(bad(format!("shard {i}: duplicate key {:#x}", e.key)));
                }
            }
            if map.len() > capacity {
                return Err(bad(format!(
                    "shard {i}: {} live entries exceed capacity {capacity}",
                    map.len()
                )));
            }
            let mut prev_stamp = 0u64;
            for &(stamp, _) in &s.queue {
                if stamp > s.stamp {
                    return Err(bad(format!(
                        "shard {i}: queue stamp {stamp} beyond shard stamp {}",
                        s.stamp
                    )));
                }
                if stamp < prev_stamp {
                    return Err(bad(format!("shard {i}: queue stamps not ascending")));
                }
                prev_stamp = stamp;
            }
            // Every live entry's latest-stamp record must be queued, or
            // it could never be evicted (the export invariant).
            for e in &s.entries {
                if !s.queue.contains(&(e.stamp, e.key)) {
                    return Err(bad(format!(
                        "shard {i}: live entry {:#x} missing from queue",
                        e.key
                    )));
                }
            }
            shards.push(Shard {
                map,
                queue: s.queue.iter().copied().collect(),
                stamp: s.stamp,
            });
        }
        Ok(RouteCache { shards, capacity })
    }
}

/// One live cache entry in an exported [`RouteCacheState`]; `path` is
/// `None` for cached-negative entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteCacheEntryState {
    /// `(epoch << 32) | dst` lookup key.
    pub key: u64,
    /// Stamp of the entry's latest use.
    pub stamp: u64,
    /// The memoized path, `None` when the destination was unreachable.
    pub path: Option<Vec<NodeId>>,
}

/// One shard of an exported [`RouteCacheState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteCacheShardState {
    /// Live entries in LRU (ascending-stamp) order.
    pub entries: Vec<RouteCacheEntryState>,
    /// The full lazy-deletion queue `(stamp, key)`, stale records
    /// included — eviction behavior round-trips exactly.
    pub queue: Vec<(u64, u64)>,
    /// The shard's monotone use counter.
    pub stamp: u64,
}

/// The complete, canonical state of a [`RouteCache`]: continuing from
/// `RouteCache::from_state(&c.export_state())` behaves identically to
/// continuing from `c` for every future query sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteCacheState {
    /// Per-source capacity the cache was built with (0 = disabled).
    pub capacity: u64,
    /// One state per source shard (empty when disabled).
    pub shards: Vec<RouteCacheShardState>,
}

/// A [`PathResolver`] wrapper memoizing its inner resolver through a
/// [`RouteCache`] (epoch 0 only — for epoch-aware simulation runs the
/// netsim world drives a `RouteCache` directly; this wrapper serves
/// standalone consumers such as benches and property tests).
pub struct CachedResolver<R> {
    inner: R,
    cache: Mutex<(RouteCache, RouteCacheStats)>,
}

impl<R: PathResolver> CachedResolver<R> {
    /// Wrap `inner`, caching up to `per_src_capacity` destinations per
    /// source over `node_count` sources (`0` disables caching).
    pub fn new(inner: R, node_count: usize, per_src_capacity: usize) -> Self {
        CachedResolver {
            inner,
            cache: Mutex::new((
                RouteCache::new(node_count, per_src_capacity),
                RouteCacheStats::default(),
            )),
        }
    }

    /// The wrapped resolver.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> RouteCacheStats {
        self.cache.lock().1
    }
}

impl<R: PathResolver> PathResolver for CachedResolver<R> {
    fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.route_arc(src, dst).map(|p| p.to_vec())
    }

    fn route_arc(&self, src: NodeId, dst: NodeId) -> Option<Arc<[NodeId]>> {
        let guard = &mut *self.cache.lock();
        let (cache, stats) = guard;
        cache.get_or_insert_with(stats, 0, src, dst, || self.inner.route_arc(src, dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A resolver that returns `src → dst` for even dst ids, `None` for
    /// odd, counting invocations.
    struct Toy {
        calls: std::sync::atomic::AtomicU64,
    }

    impl Toy {
        fn new() -> Self {
            Toy {
                calls: std::sync::atomic::AtomicU64::new(0),
            }
        }
        fn calls(&self) -> u64 {
            self.calls.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    impl PathResolver for Toy {
        fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
            self.calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            dst.0.is_multiple_of(2).then(|| vec![src, dst])
        }
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn hit_returns_same_arc_without_resolving() {
        let r = CachedResolver::new(Toy::new(), 8, 4);
        let a = r.route_arc(n(0), n(2)).expect("even dst routes");
        let b = r.route_arc(n(0), n(2)).expect("even dst routes");
        assert!(Arc::ptr_eq(&a, &b), "hit must hand out the shared Arc");
        assert_eq!(r.inner().calls(), 1);
        assert_eq!(
            r.stats(),
            RouteCacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn negative_results_are_cached() {
        let r = CachedResolver::new(Toy::new(), 8, 4);
        assert_eq!(r.route_arc(n(0), n(3)), None);
        assert_eq!(r.route_arc(n(0), n(3)), None);
        assert_eq!(r.inner().calls(), 1, "None must be memoized too");
        assert_eq!(r.stats().hits, 1);
    }

    #[test]
    fn capacity_zero_disables_and_counts_nothing() {
        let r = CachedResolver::new(Toy::new(), 8, 0);
        for _ in 0..3 {
            let _ = r.route_arc(n(0), n(2));
        }
        assert_eq!(r.inner().calls(), 3);
        assert_eq!(r.stats(), RouteCacheStats::default());
    }

    #[test]
    fn capacity_one_evicts_lru() {
        let r = CachedResolver::new(Toy::new(), 8, 1);
        let _ = r.route_arc(n(0), n(2)); // miss
        let _ = r.route_arc(n(0), n(4)); // miss, evicts dst 2
        let _ = r.route_arc(n(0), n(2)); // miss again
        assert_eq!(r.inner().calls(), 3);
        assert_eq!(
            r.stats(),
            RouteCacheStats {
                hits: 0,
                misses: 3,
                evictions: 2
            }
        );
    }

    #[test]
    fn lru_respects_recency_not_insertion_order() {
        let r = CachedResolver::new(Toy::new(), 8, 2);
        let _ = r.route_arc(n(0), n(2)); // miss: {2}
        let _ = r.route_arc(n(0), n(4)); // miss: {2, 4}
        let _ = r.route_arc(n(0), n(2)); // hit — 2 is now most recent
        let _ = r.route_arc(n(0), n(6)); // miss: evicts 4, not 2
        let _ = r.route_arc(n(0), n(2)); // must still hit
        assert_eq!(
            r.stats(),
            RouteCacheStats {
                hits: 2,
                misses: 3,
                evictions: 1
            }
        );
    }

    #[test]
    fn shards_are_independent_per_source() {
        let r = CachedResolver::new(Toy::new(), 8, 1);
        let _ = r.route_arc(n(0), n(2));
        let _ = r.route_arc(n(1), n(2)); // different shard: own miss
        let _ = r.route_arc(n(0), n(2)); // still cached in shard 0
        assert_eq!(
            r.stats(),
            RouteCacheStats {
                hits: 1,
                misses: 2,
                evictions: 0
            }
        );
    }

    #[test]
    fn epochs_partition_the_key_space() {
        let mut cache = RouteCache::new(4, 8);
        let mut stats = RouteCacheStats::default();
        let resolve = || Some(Arc::from(vec![n(0), n(2)]));
        let _ = cache.get_or_insert_with(&mut stats, 0, n(0), n(2), resolve);
        let _ = cache.get_or_insert_with(&mut stats, 1, n(0), n(2), resolve);
        let _ = cache.get_or_insert_with(&mut stats, 0, n(0), n(2), resolve);
        assert_eq!(stats.misses, 2, "epoch 1 must not see epoch 0's entry");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn heavy_hit_traffic_keeps_queue_bounded() {
        let r = CachedResolver::new(Toy::new(), 2, 2);
        for _ in 0..10_000 {
            let _ = r.route_arc(n(0), n(2));
        }
        let guard = r.cache.lock();
        let shard = &guard.0.shards[0];
        assert!(
            shard.queue.len() <= 64 + 1,
            "lazy-deletion queue must stay bounded, got {}",
            shard.queue.len()
        );
    }

    #[test]
    fn export_import_roundtrip_preserves_behavior_and_bytes() {
        let mut cache = RouteCache::new(4, 2);
        let mut stats = RouteCacheStats::default();
        let resolve = |d: u32| move || Some(Arc::from(vec![n(0), n(d)]));
        let _ = cache.get_or_insert_with(&mut stats, 0, n(0), n(2), resolve(2));
        let _ = cache.get_or_insert_with(&mut stats, 0, n(0), n(4), resolve(4));
        let _ = cache.get_or_insert_with(&mut stats, 0, n(0), n(2), resolve(2)); // hit
        let _ = cache.get_or_insert_with(&mut stats, 1, n(3), n(6), resolve(6));

        let state = cache.export_state();
        let mut restored = RouteCache::from_state(&state).expect("valid state");
        assert_eq!(
            restored.export_state(),
            state,
            "export → import → export must be identical"
        );

        // The restored cache answers and evicts exactly like the
        // original: dst 6 misses and evicts dst 4 (the LRU), dst 2 hits.
        let mut s1 = RouteCacheStats::default();
        let mut s2 = RouteCacheStats::default();
        for (c, s) in [(&mut cache, &mut s1), (&mut restored, &mut s2)] {
            let _ = c.get_or_insert_with(s, 0, n(0), n(6), resolve(6));
            let _ = c.get_or_insert_with(s, 0, n(0), n(2), resolve(2));
            let _ = c.get_or_insert_with(s, 0, n(0), n(4), resolve(4));
        }
        assert_eq!(s1, s2, "post-restore behavior must be bit-identical");
        assert_eq!(cache.export_state(), restored.export_state());
    }

    #[test]
    fn corrupt_cache_states_are_rejected() {
        let mut cache = RouteCache::new(2, 2);
        let mut stats = RouteCacheStats::default();
        let _ = cache.get_or_insert_with(&mut stats, 0, n(0), n(1), || Some(Arc::from(vec![n(0)])));
        let good = cache.export_state();

        let mut bad = good.clone();
        bad.shards[0].stamp = 0; // entry stamp now exceeds shard stamp
        assert!(matches!(
            RouteCache::from_state(&bad),
            Err(MassfError::SnapshotCorrupt { .. })
        ));

        let mut bad = good.clone();
        let dup = bad.shards[0].entries[0].clone();
        bad.shards[0].entries.push(dup);
        assert!(RouteCache::from_state(&bad).is_err(), "duplicate key");

        let mut bad = good.clone();
        bad.shards[0].queue.clear();
        assert!(
            RouteCache::from_state(&bad).is_err(),
            "live entry must be queued"
        );

        let mut bad = good;
        bad.capacity = 0;
        assert!(
            RouteCache::from_state(&bad).is_err(),
            "disabled cache cannot carry shards"
        );
    }

    #[test]
    fn stats_merge_sums() {
        let mut a = RouteCacheStats {
            hits: 1,
            misses: 2,
            evictions: 3,
        };
        a.merge(&RouteCacheStats {
            hits: 10,
            misses: 20,
            evictions: 30,
        });
        assert_eq!(
            a,
            RouteCacheStats {
                hits: 11,
                misses: 22,
                evictions: 33
            }
        );
        assert!((a.hit_rate() - 11.0 / 33.0).abs() < 1e-12);
        assert_eq!(RouteCacheStats::default().hit_rate(), 0.0);
    }
}
