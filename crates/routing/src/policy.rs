//! BGP routing-policy configuration from AS relationships.
//!
//! Implements steps 4–5 of the paper's automatic configuration procedure
//! (Section 5.1.2), which encode the standard commercial rules inferred
//! by Wang & Gao (IMC'03):
//!
//! * **Import** (step 4): accept all routes; set local preference by the
//!   next-hop AS relationship — customer routes highest, then peer, then
//!   provider.
//! * **Export** (step 5): to a provider or peer, export only local and
//!   customer routes; to a customer, export everything. These rules make
//!   every permitted path *valley-free*.

use massf_topology::AsRelationship;

/// Local preference for a route learned from a customer.
pub const LOCAL_PREF_CUSTOMER: u32 = 100;
/// Local preference for a route learned from a peer.
pub const LOCAL_PREF_PEER: u32 = 90;
/// Local preference for a route learned from a provider.
pub const LOCAL_PREF_PROVIDER: u32 = 80;

/// Import policy: local preference assigned to a route learned from a
/// neighbor with the given relationship (the relationship is *ours
/// toward the neighbor*, so a route from a customer arrives over an edge
/// where we are the provider).
pub fn local_preference(our_relationship_to_neighbor: AsRelationship) -> u32 {
    match our_relationship_to_neighbor {
        // We are their provider ⇒ they are our customer.
        AsRelationship::ProviderOf => LOCAL_PREF_CUSTOMER,
        AsRelationship::PeerPeer => LOCAL_PREF_PEER,
        // We are their customer ⇒ they are our provider.
        AsRelationship::CustomerOf => LOCAL_PREF_PROVIDER,
    }
}

/// Export policy: may a route *learned from* `learned_from` be exported
/// to a neighbor with relationship `export_to`? Locally originated
/// routes pass `None` as `learned_from`.
///
/// Both relationship arguments are ours toward the respective neighbor.
pub fn export_allowed(learned_from: Option<AsRelationship>, export_to: AsRelationship) -> bool {
    match export_to {
        // To customers: export everything (gives them full reach).
        AsRelationship::ProviderOf => true,
        // To providers and peers: only local and customer routes.
        AsRelationship::CustomerOf | AsRelationship::PeerPeer => matches!(
            learned_from,
            None | Some(AsRelationship::ProviderOf) // from our customer
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_topology::AsRelationship::*;

    #[test]
    fn preference_order_customer_peer_provider() {
        assert!(local_preference(ProviderOf) > local_preference(PeerPeer));
        assert!(local_preference(PeerPeer) > local_preference(CustomerOf));
    }

    #[test]
    fn local_routes_export_everywhere() {
        for rel in [ProviderOf, CustomerOf, PeerPeer] {
            assert!(export_allowed(None, rel));
        }
    }

    #[test]
    fn customer_routes_export_everywhere() {
        // Routes learned from our customers (we are ProviderOf them).
        for rel in [ProviderOf, CustomerOf, PeerPeer] {
            assert!(export_allowed(Some(ProviderOf), rel));
        }
    }

    #[test]
    fn provider_and_peer_routes_only_flow_downhill() {
        // Learned from provider (we are CustomerOf): only to customers.
        assert!(export_allowed(Some(CustomerOf), ProviderOf));
        assert!(!export_allowed(Some(CustomerOf), CustomerOf));
        assert!(!export_allowed(Some(CustomerOf), PeerPeer));
        // Learned from peer: only to customers.
        assert!(export_allowed(Some(PeerPeer), ProviderOf));
        assert!(!export_allowed(Some(PeerPeer), CustomerOf));
        assert!(!export_allowed(Some(PeerPeer), PeerPeer));
    }
}
