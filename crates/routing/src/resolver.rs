//! End-to-end path resolution for the packet simulator.
//!
//! The simulator forwards packets hop by hop; the resolver computes, at
//! flow-setup time, the node-level path a packet will take (NIx-vector
//! style — see DESIGN.md substitution #5). Two implementations:
//!
//! * [`FlatResolver`]: the paper's single-AS world — one OSPF domain
//!   over the whole network.
//! * [`MultiAsResolver`]: the multi-AS world — OSPF inside each AS, BGP
//!   across ASes, and (step 6 of Section 5.1.2) *default routing* in
//!   stub ASes: a stub forwards any non-local destination to its primary
//!   provider instead of holding full BGP tables.

// simlint: allow-file(cast-lossy) -- AS numbers here are usize graph indices < AsGraph::n, which the topology layer caps at u16::MAX
use crate::bgp::BgpRib;
use crate::ospf::{CostMetric, OspfDomain};
use massf_topology::mabrite::MultiAsNetwork;
use massf_topology::{AsClass, MassfError, MultiAsTopologyConfig, Network, NodeId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Resolves full node-level paths between any two nodes.
pub trait PathResolver: Send + Sync {
    /// The path `src → … → dst` inclusive of both endpoints, or `None`
    /// when `dst` is unreachable from `src` (possible under BGP policy).
    fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>>;

    /// Like [`PathResolver::route`], returning the path as a shared
    /// slice (what the packet simulator stores per flow). The default
    /// wraps `route`; caching resolvers override it to hand out the
    /// memoized `Arc` without copying.
    fn route_arc(&self, src: NodeId, dst: NodeId) -> Option<Arc<[NodeId]>> {
        self.route(src, dst).map(Arc::from)
    }
}

impl<R: PathResolver + ?Sized> PathResolver for &R {
    fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        (**self).route(src, dst)
    }
    fn route_arc(&self, src: NodeId, dst: NodeId) -> Option<Arc<[NodeId]>> {
        (**self).route_arc(src, dst)
    }
}

impl<R: PathResolver + ?Sized> PathResolver for Arc<R> {
    fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        (**self).route(src, dst)
    }
    fn route_arc(&self, src: NodeId, dst: NodeId) -> Option<Arc<[NodeId]>> {
        (**self).route_arc(src, dst)
    }
}

/// Single-domain OSPF resolution (the paper's Section 4 network).
pub struct FlatResolver {
    domain: OspfDomain,
}

impl FlatResolver {
    /// Cover every node of `net` with one OSPF domain.
    pub fn new(net: &Network, metric: CostMetric) -> Self {
        let members = net.nodes.iter().map(|n| n.id).collect();
        FlatResolver {
            domain: OspfDomain::new(net, members, metric),
        }
    }

    /// Access the underlying OSPF domain.
    pub fn domain(&self) -> &OspfDomain {
        &self.domain
    }
}

impl PathResolver for FlatResolver {
    fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.domain.path(src, dst)
    }
}

/// BGP + OSPF resolution for multi-AS networks.
pub struct MultiAsResolver {
    /// One OSPF domain per AS (routers + hosts of that AS).
    domains: Vec<OspfDomain>,
    rib: BgpRib,
    /// AS of every node.
    as_of: Vec<u16>,
    /// For each adjacent AS pair `(a, b)` (both orders), the chosen
    /// inter-AS link endpoints `(border in a, border in b)`. Ordered
    /// map for consistency with the other deterministic-critical state
    /// (only ever point-looked-up, but iteration must stay safe to add).
    gateways: BTreeMap<(u16, u16), (NodeId, NodeId)>,
    /// Primary (and implicit backup) provider per AS, for stub default
    /// routing; `u16::MAX` when the AS has no provider.
    primary_provider: Vec<u16>,
    /// Is the AS a stub (uses default routing when enabled)?
    is_stub: Vec<bool>,
    /// Step 6d: stubs forward non-local traffic to their default
    /// provider instead of consulting BGP.
    pub stub_default_routing: bool,
}

impl MultiAsResolver {
    /// Build from a generated multi-AS network. `cfg` is only used for
    /// documentation-parity; pass the config used for generation.
    pub fn new(m: &MultiAsNetwork, metric: CostMetric, _cfg: &MultiAsTopologyConfig) -> Self {
        Self::with_options(m, metric, true)
    }

    /// Build with explicit control over stub default routing.
    pub fn with_options(
        m: &MultiAsNetwork,
        metric: CostMetric,
        stub_default_routing: bool,
    ) -> Self {
        let net = &m.network;
        let n_as = m.as_graph.n;
        // Each AS's OSPF domain is built independently (membership scan
        // + adjacency extraction), so they fan out across the shared
        // worker pool; index order is preserved, keeping domain `a` at
        // slot `a`.
        let domains: Vec<OspfDomain> = massf_parutil::par_map_indexed(n_as, |a| {
            let members = net.nodes_in_as(massf_topology::AsId(a as u16));
            OspfDomain::new(net, members, metric)
        });
        let rib = BgpRib::compute(&m.as_graph);
        let as_of: Vec<u16> = net.nodes.iter().map(|n| n.as_id.0).collect();

        // Deterministic gateway per adjacent AS pair: the lowest-id
        // inter-AS link between them.
        let mut gateways: BTreeMap<(u16, u16), (NodeId, NodeId)> = BTreeMap::new();
        for link in &net.links {
            if !link.inter_as {
                continue;
            }
            let (aa, ab) = (as_of[link.a.index()], as_of[link.b.index()]);
            gateways.entry((aa, ab)).or_insert((link.a, link.b));
            gateways.entry((ab, aa)).or_insert((link.b, link.a));
        }

        let primary_provider: Vec<u16> = (0..n_as)
            .map(|a| {
                m.as_graph
                    .providers(a)
                    .into_iter()
                    .min()
                    .map(|p| p as u16)
                    .unwrap_or(u16::MAX)
            })
            .collect();
        let is_stub: Vec<bool> = (0..n_as)
            .map(|a| m.as_graph.classes[a] == AsClass::Stub)
            .collect();

        MultiAsResolver {
            domains,
            rib,
            as_of,
            gateways,
            primary_provider,
            is_stub,
            stub_default_routing,
        }
    }

    /// The converged BGP RIB.
    pub fn rib(&self) -> &BgpRib {
        &self.rib
    }

    /// Simulate the failure of the inter-AS adjacency between `as_a`
    /// and `as_b` (paper Section 5.1.2 step 6d: multi-homed stubs keep
    /// default *and backup* routes). Returns a resolver whose BGP
    /// routing has re-converged on the reduced AS graph and whose stub
    /// default routing falls back to the next provider. `None` if the
    /// ASes were not adjacent.
    pub fn with_failed_adjacency(
        &self,
        m: &MultiAsNetwork,
        metric: CostMetric,
        as_a: usize,
        as_b: usize,
    ) -> Option<Self> {
        self.with_failed_adjacencies(m, metric, &[(as_a, as_b)])
            .ok()
    }

    /// Like [`MultiAsResolver::with_failed_adjacency`] but for any
    /// number of *concurrent* adjacency failures: BGP re-converges once
    /// on the AS graph with every listed edge removed, so double faults
    /// compose (the result either reroutes around both or reports a
    /// destination unreachable — it never panics). Fails with
    /// [`MassfError::NotAdjacent`] when a listed pair is not an edge of
    /// the AS graph.
    pub fn with_failed_adjacencies(
        &self,
        m: &MultiAsNetwork,
        metric: CostMetric,
        failures: &[(usize, usize)],
    ) -> Result<Self, MassfError> {
        let mut reduced = m.as_graph.clone();
        for &(as_a, as_b) in failures {
            let adjacent = reduced.neighbors(as_a).any(|(b, _)| b == as_b);
            if !adjacent {
                return Err(MassfError::NotAdjacent { as_a, as_b });
            }
            reduced = reduced.without_edge(as_a, as_b);
        }
        let mut failed = Self::with_options(m, metric, self.stub_default_routing);
        failed.rib = BgpRib::compute(&reduced);
        for &(as_a, as_b) in failures {
            failed.gateways.remove(&(as_a as u16, as_b as u16));
            failed.gateways.remove(&(as_b as u16, as_a as u16));
        }
        // Re-derive primary providers from the reduced graph (a stub
        // whose sole provider link failed falls back to its backup).
        for a in 0..reduced.n {
            failed.primary_provider[a] = reduced
                .providers(a)
                .into_iter()
                .min()
                .map(|p| p as u16)
                .unwrap_or(u16::MAX);
        }
        Ok(failed)
    }

    /// The OSPF domain of AS `a`.
    pub fn domain(&self, a: usize) -> &OspfDomain {
        &self.domains[a]
    }

    /// Next AS on the way from `cur` toward `dst_as`, honoring stub
    /// default routing.
    fn next_as(&self, cur: u16, dst_as: u16) -> Option<u16> {
        if self.stub_default_routing && self.is_stub[cur as usize] {
            // Default route: everything non-local goes to the primary
            // provider — unless the destination AS is directly adjacent
            // (a stub may have a peer or second provider link it knows
            // statically).
            if self.gateways.contains_key(&(cur, dst_as)) {
                return Some(dst_as);
            }
            let p = self.primary_provider[cur as usize];
            return (p != u16::MAX).then_some(p);
        }
        self.rib
            .next_as(cur as usize, dst_as as usize)
            .map(|a| a as u16)
    }
}

impl PathResolver for MultiAsResolver {
    fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let (as_s, as_d) = (self.as_of[src.index()], self.as_of[dst.index()]);
        if as_s == as_d {
            return self.domains[as_s as usize].path(src, dst);
        }
        // Stitch every intra-AS leg and inter-AS crossing into one
        // buffer: `path_append` writes each leg in place (reserving its
        // exact length first), so no per-leg Vec is ever allocated.
        let mut path: Vec<NodeId> = Vec::new();
        let mut cur_node = src;
        let mut cur_as = as_s;
        let mut hops = 0usize;
        while cur_as != as_d {
            hops += 1;
            if hops > self.domains.len() + 1 {
                return None; // routing loop guard (misconfiguration)
            }
            let next = self.next_as(cur_as, as_d)?;
            let &(exit, entry) = self.gateways.get(&(cur_as, next))?;
            // Intra-AS leg to the exit border router.
            if !self.domains[cur_as as usize].path_append(cur_node, exit, &mut path) {
                return None;
            }
            // Cross the inter-AS link.
            path.push(entry);
            cur_node = entry;
            cur_as = next;
        }
        if !self.domains[as_d as usize].path_append(cur_node, dst, &mut path) {
            return None;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_topology::{
        generate_flat_network, generate_multi_as_network, FlatTopologyConfig,
        MultiAsTopologyConfig, NodeKind,
    };

    fn flat() -> (massf_topology::Network, FlatResolver) {
        let net = generate_flat_network(&FlatTopologyConfig::tiny());
        let r = FlatResolver::new(&net, CostMetric::Latency);
        (net, r)
    }

    fn multi() -> (massf_topology::mabrite::MultiAsNetwork, MultiAsResolver) {
        let m = generate_multi_as_network(&MultiAsTopologyConfig::tiny());
        let r = MultiAsResolver::with_options(&m, CostMetric::Latency, true);
        (m, r)
    }

    pub(crate) fn check_path_valid(
        net: &massf_topology::Network,
        path: &[NodeId],
        src: NodeId,
        dst: NodeId,
    ) {
        assert_eq!(*path.first().expect("resolved paths are non-empty"), src);
        assert_eq!(*path.last().expect("resolved paths are non-empty"), dst);
        for w in path.windows(2) {
            assert!(
                net.has_link(w[0], w[1]),
                "no link between consecutive hops {w:?}"
            );
            assert_ne!(w[0], w[1], "repeated hop");
        }
    }

    #[test]
    fn flat_routes_between_hosts() {
        let (net, r) = flat();
        let hosts = net.host_ids();
        let (a, b) = (hosts[0], hosts[hosts.len() - 1]);
        let path = r.route(a, b).expect("flat network fully reachable");
        check_path_valid(&net, &path, a, b);
    }

    #[test]
    fn flat_route_to_self() {
        let (net, r) = flat();
        let h = net.host_ids()[0];
        assert_eq!(r.route(h, h), Some(vec![h]));
    }

    #[test]
    fn multi_as_routes_cross_as() {
        let (m, r) = multi();
        let hosts = m.network.host_ids();
        let mut cross = 0;
        for i in 0..hosts.len().min(12) {
            for j in (i + 1)..hosts.len().min(12) {
                let (a, b) = (hosts[i], hosts[j]);
                if m.network.nodes[a.index()].as_id == m.network.nodes[b.index()].as_id {
                    continue;
                }
                let path = r.route(a, b).expect("hierarchy guarantees reachability");
                check_path_valid(&m.network, &path, a, b);
                cross += 1;
            }
        }
        assert!(cross > 0, "test needs at least one cross-AS host pair");
    }

    #[test]
    fn multi_as_path_visits_expected_as_sequence() {
        let (m, r) = multi();
        let hosts = m.network.host_ids();
        let (a, b) = (hosts[0], *hosts.last().expect("topology has hosts"));
        if m.network.nodes[a.index()].as_id == m.network.nodes[b.index()].as_id {
            return; // same AS in this seed; covered elsewhere
        }
        let path = r.route(a, b).expect("hierarchy guarantees reachability");
        // The AS sequence along the path must be loop-free at AS level.
        let mut as_seq: Vec<u16> = path
            .iter()
            .map(|n| m.network.nodes[n.index()].as_id.0)
            .collect();
        as_seq.dedup();
        let mut seen = std::collections::HashSet::new();
        for &a in &as_seq {
            assert!(seen.insert(a), "AS-level loop: {as_seq:?}");
        }
    }

    #[test]
    fn stub_first_hop_respects_default_routing() {
        let (m, r) = multi();
        // Pick a host in a stub AS with a single provider, route far.
        let hosts = m.network.host_ids();
        for &h in &hosts {
            let as_h = m.network.nodes[h.index()].as_id.0 as usize;
            let provs = m.as_graph.providers(as_h);
            if provs.len() != 1 {
                continue;
            }
            // Find a destination in a different, non-adjacent AS.
            let Some(&d) = hosts.iter().find(|&&d| {
                let as_d = m.network.nodes[d.index()].as_id.0;
                as_d as usize != as_h
                    && !m.as_graph.neighbors(as_h).any(|(b, _)| b == as_d as usize)
            }) else {
                continue;
            };
            let path = r.route(h, d).expect("hierarchy guarantees reachability");
            // First AS transition must be into the sole provider.
            let first_foreign = path
                .iter()
                .map(|n| m.network.nodes[n.index()].as_id.0 as usize)
                .find(|&a| a != as_h)
                .expect("cross-AS path leaves the source AS");
            assert_eq!(first_foreign, provs[0], "stub did not default-route");
            return;
        }
        // No single-provider stub host in this topology: vacuous.
    }

    #[test]
    fn intra_as_route_stays_inside_as() {
        let (m, r) = multi();
        // Two routers of AS 0.
        let routers = &m.routers_of[0];
        let path = r
            .route(routers[0], routers[routers.len() - 1])
            .expect("intra-AS routers are connected");
        for n in &path {
            assert_eq!(m.network.nodes[n.index()].as_id.0, 0);
        }
    }

    #[test]
    fn disabling_default_routing_still_routes() {
        let m = generate_multi_as_network(&MultiAsTopologyConfig::tiny());
        let r = MultiAsResolver::with_options(&m, CostMetric::Latency, false);
        let hosts = m.network.host_ids();
        let (a, b) = (hosts[0], *hosts.last().expect("topology has hosts"));
        let path = r.route(a, b).expect("BGP-only routing works");
        check_path_valid(&m.network, &path, a, b);
    }

    #[test]
    fn default_and_bgp_routing_may_disagree_but_both_deliver() {
        let (m, _) = multi();
        let with = MultiAsResolver::with_options(&m, CostMetric::Latency, true);
        let without = MultiAsResolver::with_options(&m, CostMetric::Latency, false);
        let hosts = m.network.host_ids();
        for i in 0..hosts.len().min(8) {
            let (a, b) = (hosts[i], hosts[hosts.len() - 1 - i]);
            if a == b {
                continue;
            }
            let p1 = with.route(a, b);
            let p2 = without.route(a, b);
            assert_eq!(p1.is_some(), p2.is_some());
        }
    }

    #[test]
    fn routers_route_too() {
        let (net, r) = flat();
        let routers = net.router_ids();
        let path = r
            .route(routers[3], routers[routers.len() / 2])
            .expect("router-to-router");
        assert!(path
            .iter()
            .all(|n| net.nodes[n.index()].kind == NodeKind::Router
                || net.nodes[n.index()].kind == NodeKind::Host));
    }
}

#[cfg(test)]
mod failover_tests {
    use super::*;
    use crate::PathResolver;
    use massf_topology::{generate_multi_as_network, MultiAsTopologyConfig};

    #[test]
    fn multi_homed_stub_survives_primary_provider_failure() {
        let cfg = MultiAsTopologyConfig {
            as_count: 20,
            routers_per_as: 8,
            hosts: 60,
            ..MultiAsTopologyConfig::default()
        };
        let m = generate_multi_as_network(&cfg);
        let resolver = MultiAsResolver::with_options(&m, CostMetric::Latency, true);

        // Find a multi-homed stub (≥ 2 providers).
        let Some(stub) = (0..m.as_graph.n).find(|&a| {
            m.as_graph.classes[a] == massf_topology::AsClass::Stub
                && m.as_graph.providers(a).len() >= 2
        }) else {
            return; // topology has no multi-homed stub at this seed
        };
        let providers = m.as_graph.providers(stub);
        let primary = *providers.iter().min().expect("stub has ≥ 2 providers") as u16;
        assert_eq!(resolver.primary_provider[stub], primary);

        // Fail the primary provider adjacency; the backup takes over.
        let failed = resolver
            .with_failed_adjacency(&m, CostMetric::Latency, stub, primary as usize)
            .expect("adjacent");
        assert_ne!(failed.primary_provider[stub], primary);
        assert_ne!(failed.primary_provider[stub], u16::MAX);

        // Hosts of the stub can still reach remote hosts.
        let hosts = m.network.host_ids();
        let Some(&src) = hosts
            .iter()
            .find(|&&h| m.network.nodes[h.index()].as_id.0 as usize == stub)
        else {
            return;
        };
        let Some(&dst) = hosts
            .iter()
            .find(|&&h| m.network.nodes[h.index()].as_id.0 as usize != stub)
        else {
            return;
        };
        let path = failed.route(src, dst).expect("backup route exists");
        // The path must not cross the failed adjacency.
        for w in path.windows(2) {
            let (aa, ab) = (
                m.network.nodes[w[0].index()].as_id.0 as usize,
                m.network.nodes[w[1].index()].as_id.0 as usize,
            );
            assert!(
                !((aa == stub && ab == primary as usize) || (ab == stub && aa == primary as usize)),
                "path crossed the failed adjacency"
            );
        }
    }

    #[test]
    fn non_adjacent_failure_is_rejected() {
        let cfg = MultiAsTopologyConfig::tiny();
        let m = generate_multi_as_network(&cfg);
        let resolver = MultiAsResolver::with_options(&m, CostMetric::Latency, true);
        // An AS is never adjacent to itself.
        assert!(resolver
            .with_failed_adjacency(&m, CostMetric::Latency, 0, 0)
            .is_none());
        assert_eq!(
            resolver
                .with_failed_adjacencies(&m, CostMetric::Latency, &[(0, 0)])
                .err(),
            Some(massf_topology::MassfError::NotAdjacent { as_a: 0, as_b: 0 })
        );
    }

    #[test]
    fn double_fault_composes_reroute_or_unreachable() {
        // Two concurrent adjacency failures: every host pair must either
        // get a valid path avoiding both dead adjacencies or a clean
        // `None` — never a panic and never a path over a dead edge.
        let cfg = MultiAsTopologyConfig {
            as_count: 20,
            routers_per_as: 8,
            hosts: 60,
            ..MultiAsTopologyConfig::default()
        };
        let m = generate_multi_as_network(&cfg);
        let resolver = MultiAsResolver::with_options(&m, CostMetric::Latency, true);

        // Pick two distinct AS-graph edges deterministically.
        let mut edges = Vec::new();
        for a in 0..m.as_graph.n {
            for (b, _) in m.as_graph.neighbors(a) {
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        assert!(edges.len() >= 2, "AS graph too small for a double fault");
        let fail_a = edges[0];
        let fail_b = edges[edges.len() / 2];
        if fail_a == fail_b {
            return;
        }
        let failed = resolver
            .with_failed_adjacencies(&m, CostMetric::Latency, &[fail_a, fail_b])
            .expect("both pairs are AS-graph edges");

        let hosts = m.network.host_ids();
        let mut routed = 0;
        for i in 0..hosts.len().min(10) {
            for j in (i + 1)..hosts.len().min(10) {
                let (s, d) = (hosts[i], hosts[j]);
                let Some(path) = failed.route(s, d) else {
                    continue; // unreachable under the double fault: fine
                };
                routed += 1;
                super::tests::check_path_valid(&m.network, &path, s, d);
                // Must not cross either failed adjacency.
                for w in path.windows(2) {
                    let (aa, ab) = (
                        m.network.nodes[w[0].index()].as_id.0 as usize,
                        m.network.nodes[w[1].index()].as_id.0 as usize,
                    );
                    for &(fa, fb) in &[fail_a, fail_b] {
                        assert!(
                            !((aa == fa && ab == fb) || (aa == fb && ab == fa)),
                            "path crossed failed adjacency ({fa},{fb})"
                        );
                    }
                }
            }
        }
        assert!(routed > 0, "double fault must not sever every host pair");
    }

    #[test]
    fn double_fault_rejects_pair_dead_after_first_failure() {
        // Listing the same adjacency twice: the second removal sees a
        // non-edge and must error, not panic.
        let cfg = MultiAsTopologyConfig::tiny();
        let m = generate_multi_as_network(&cfg);
        let resolver = MultiAsResolver::with_options(&m, CostMetric::Latency, true);
        let (a, b) = (0..m.as_graph.n)
            .find_map(|a| m.as_graph.neighbors(a).next().map(|(b, _)| (a, b)))
            .expect("AS graph has edges");
        assert_eq!(
            resolver
                .with_failed_adjacencies(&m, CostMetric::Latency, &[(a, b), (a, b)])
                .err(),
            Some(massf_topology::MassfError::NotAdjacent { as_a: a, as_b: b })
        );
    }

    #[test]
    fn failed_core_link_reroutes_through_clique() {
        // The dense core is a clique, so failing one core-core peering
        // leaves full reachability via other core members.
        let cfg = MultiAsTopologyConfig {
            as_count: 15,
            routers_per_as: 6,
            hosts: 40,
            ..MultiAsTopologyConfig::default()
        };
        let m = generate_multi_as_network(&cfg);
        let cores = m.as_graph.core_ases();
        if cores.len() < 3 {
            return;
        }
        let resolver = MultiAsResolver::with_options(&m, CostMetric::Latency, true);
        let failed = resolver
            .with_failed_adjacency(&m, CostMetric::Latency, cores[0], cores[1])
            .expect("cores are adjacent");
        assert_eq!(failed.rib().reachability_fraction(), 1.0);
    }
}
