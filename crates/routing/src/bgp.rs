//! BGP4: AS-level path-vector routing with policy.
//!
//! Each AS runs one logical BGP speaker (route reflection collapses an
//! AS's border routers to a single decision point; intra-AS delivery is
//! OSPF's job). Every AS originates one prefix — itself — and speakers
//! exchange announcements until convergence, applying:
//!
//! * **import policy**: accept all, assign local preference by neighbor
//!   relationship ([`crate::policy::local_preference`]);
//! * **decision process**: highest local preference, then shortest AS
//!   path, then lowest next-hop AS number (standing in for the MED /
//!   router-id tie-breaks of the full protocol);
//! * **export policy**: valley-free filters
//!   ([`crate::policy::export_allowed`]);
//! * **loop prevention**: a speaker rejects any announcement whose AS
//!   path already contains its own number.
//!
//! The result is a [`BgpRib`]: per (source AS, destination AS) the
//! selected next-hop AS and full AS path — or nothing. With policy
//! routing, *connectivity does not imply reachability*; the unit tests
//! exhibit a connected topology with unreachable AS pairs.

// simlint: allow-file(cast-lossy) -- AS numbers here are usize graph indices < AsGraph::n, which the topology layer caps at u16::MAX
use crate::policy::{export_allowed, local_preference};
use massf_topology::{AsGraph, AsRelationship};

/// A BGP route to some destination AS, as held in a speaker's RIB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpRoute {
    /// AS path, first element = next-hop AS, last = origin AS.
    pub as_path: Vec<u16>,
    /// Local preference assigned on import.
    pub local_pref: u32,
    /// Our relationship toward the neighbor the route was learned from
    /// (None for locally originated routes).
    pub learned_from: Option<AsRelationship>,
}

impl BgpRoute {
    /// The BGP decision process: is `self` preferred over `other`?
    /// Highest local-pref, then shortest AS path, then lowest next hop.
    pub fn better_than(&self, other: &BgpRoute) -> bool {
        if self.local_pref != other.local_pref {
            return self.local_pref > other.local_pref;
        }
        if self.as_path.len() != other.as_path.len() {
            return self.as_path.len() < other.as_path.len();
        }
        self.as_path < other.as_path
    }
}

/// Converged BGP routing information: `rib[src][dst]` is the selected
/// route of AS `src` toward AS `dst` (None when `src == dst` or
/// unreachable under policy).
#[derive(Debug, Clone)]
pub struct BgpRib {
    rib: Vec<Vec<Option<BgpRoute>>>,
    /// Number of propagation rounds to convergence.
    pub rounds: usize,
}

impl BgpRib {
    /// Run the synchronous path-vector computation to convergence.
    ///
    /// Each round recomputes every speaker's candidate set *from
    /// scratch* out of its neighbors' previous-round selections, then
    /// selects the best. Recomputing (rather than accumulating) is what
    /// handles route retraction correctly: when a neighbor switches to
    /// a route it may no longer export to us, our stale candidate
    /// disappears. Under the valley-free (Gao–Rexford) policies this
    /// iteration converges to the unique stable routing.
    pub fn compute(g: &AsGraph) -> BgpRib {
        let n = g.n;
        // rib[a][d]: best route of a toward d.
        let mut rib: Vec<Vec<Option<BgpRoute>>> = vec![vec![None; n]; n];

        // Precompute neighbor lists with relationships.
        let neighbors: Vec<Vec<(usize, AsRelationship)>> =
            (0..n).map(|a| g.neighbors(a).collect()).collect();

        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let mut changed = false;
            let mut next: Vec<Vec<Option<BgpRoute>>> = vec![vec![None; n]; n];
            for a in 0..n {
                for d in 0..n {
                    if d == a {
                        continue;
                    }
                    let mut best: Option<BgpRoute> = None;
                    for &(b, rel_a_to_b) in &neighbors[a] {
                        // What would b export to a this round?
                        let candidate = if b == d {
                            // b's own prefix: always exportable.
                            Some(BgpRoute {
                                as_path: vec![b as u16],
                                local_pref: local_preference(rel_a_to_b),
                                learned_from: Some(rel_a_to_b),
                            })
                        } else {
                            rib[b][d].as_ref().and_then(|route| {
                                let rel_b_to_a = rel_a_to_b.reverse();
                                if !export_allowed(route.learned_from, rel_b_to_a) {
                                    return None;
                                }
                                // Loop prevention.
                                if route.as_path.contains(&(a as u16)) {
                                    return None;
                                }
                                let mut as_path = Vec::with_capacity(route.as_path.len() + 1);
                                as_path.push(b as u16);
                                as_path.extend_from_slice(&route.as_path);
                                Some(BgpRoute {
                                    as_path,
                                    local_pref: local_preference(rel_a_to_b),
                                    learned_from: Some(rel_a_to_b),
                                })
                            })
                        };
                        if let Some(c) = candidate {
                            let take = match &best {
                                None => true,
                                Some(b) => c.better_than(b),
                            };
                            if take {
                                best = Some(c);
                            }
                        }
                    }
                    if best != rib[a][d] {
                        changed = true;
                    }
                    next[a][d] = best;
                }
            }
            rib = next;
            if !changed {
                break;
            }
            assert!(
                rounds <= 4 * n + 8,
                "BGP failed to converge after {rounds} rounds"
            );
        }
        BgpRib { rib, rounds }
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.rib.len()
    }

    /// The selected route of `src` toward `dst`.
    pub fn route(&self, src: usize, dst: usize) -> Option<&BgpRoute> {
        self.rib[src][dst].as_ref()
    }

    /// Next-hop AS of `src` toward `dst`.
    pub fn next_as(&self, src: usize, dst: usize) -> Option<usize> {
        self.route(src, dst).map(|r| r.as_path[0] as usize)
    }

    /// Full AS-level path `src → … → dst` (exclusive of `src`), if any.
    pub fn as_path(&self, src: usize, dst: usize) -> Option<&[u16]> {
        self.route(src, dst).map(|r| r.as_path.as_slice())
    }

    /// Is `dst` reachable from `src` under policy? (`src == dst` is
    /// trivially reachable.)
    pub fn reachable(&self, src: usize, dst: usize) -> bool {
        src == dst || self.rib[src][dst].is_some()
    }

    /// Fraction of ordered AS pairs (src ≠ dst) that are reachable.
    pub fn reachability_fraction(&self) -> f64 {
        let n = self.as_count();
        if n <= 1 {
            return 1.0;
        }
        let mut ok = 0usize;
        for s in 0..n {
            for d in 0..n {
                if s != d && self.reachable(s, d) {
                    ok += 1;
                }
            }
        }
        ok as f64 / (n * n - n) as f64
    }
}

/// Check that an AS path is *valley-free* given the AS relationships:
/// once the path goes "down" (provider→customer) or "across" (peer), it
/// may never go "up" (customer→provider) or "across" again.
/// `path` is a sequence of AS ids from source to destination.
pub fn is_valley_free(g: &AsGraph, path: &[usize]) -> bool {
    let mut descended = false;
    for w in path.windows(2) {
        let (x, y) = (w[0], w[1]);
        let Some((_, rel)) = g.neighbors(x).find(|&(b, _)| b == y) else {
            return false; // not even adjacent
        };
        match rel {
            AsRelationship::CustomerOf => {
                // x → its provider: an "up" step.
                if descended {
                    return false;
                }
            }
            AsRelationship::PeerPeer => {
                if descended {
                    return false;
                }
                descended = true; // at most one peer step, at the top
            }
            AsRelationship::ProviderOf => {
                descended = true; // "down" step
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_topology::AsGraph;

    fn generated(n: usize, seed: u64) -> (AsGraph, BgpRib) {
        let g = AsGraph::generate(n, 2, 0.1, seed);
        let rib = BgpRib::compute(&g);
        (g, rib)
    }

    #[test]
    fn decision_prefers_local_pref_over_path_length() {
        let long_customer = BgpRoute {
            as_path: vec![1, 2, 3],
            local_pref: 100,
            learned_from: None,
        };
        let short_provider = BgpRoute {
            as_path: vec![4],
            local_pref: 80,
            learned_from: None,
        };
        assert!(long_customer.better_than(&short_provider));
    }

    #[test]
    fn decision_prefers_shorter_path_then_lower_next_hop() {
        let a = BgpRoute {
            as_path: vec![2, 3],
            local_pref: 90,
            learned_from: None,
        };
        let b = BgpRoute {
            as_path: vec![5],
            local_pref: 90,
            learned_from: None,
        };
        assert!(b.better_than(&a));
        let c = BgpRoute {
            as_path: vec![1],
            local_pref: 90,
            learned_from: None,
        };
        assert!(c.better_than(&b));
    }

    #[test]
    fn full_reachability_on_generated_hierarchy() {
        // maBrite guarantees a provider path to the core, so every AS
        // should reach every other (typically via the core).
        for seed in [1, 9, 42] {
            let (_, rib) = generated(30, seed);
            assert_eq!(
                rib.reachability_fraction(),
                1.0,
                "seed {seed}: unreachable pairs exist"
            );
        }
    }

    #[test]
    fn all_selected_paths_are_valley_free() {
        let (g, rib) = generated(40, 7);
        for s in 0..g.n {
            for d in 0..g.n {
                if let Some(path) = rib.as_path(s, d) {
                    let mut full = vec![s];
                    full.extend(path.iter().map(|&x| x as usize));
                    assert!(
                        is_valley_free(&g, &full),
                        "path {s}→{d} = {full:?} has a valley"
                    );
                    assert_eq!(*path.last().expect("RIB paths are non-empty") as usize, d);
                }
            }
        }
    }

    #[test]
    fn paths_are_loop_free() {
        let (g, rib) = generated(35, 3);
        for s in 0..g.n {
            for d in 0..g.n {
                if let Some(path) = rib.as_path(s, d) {
                    let mut seen = std::collections::HashSet::new();
                    assert!(seen.insert(s as u16));
                    for &hop in path {
                        assert!(seen.insert(hop), "loop in {s}→{d}: {path:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn next_hop_consistency() {
        // The route via next hop must agree with the next hop's own
        // selected route when stripped by one AS — BGP's actual
        // forwarding consistency on converged state is weaker, but on
        // our synchronous convergence the path tail must at least be a
        // valid route of the next hop (same destination, loop-free);
        // verify destination agreement.
        let (g, rib) = generated(25, 11);
        for s in 0..g.n {
            for d in 0..g.n {
                if let Some(nh) = rib.next_as(s, d) {
                    if nh != d {
                        assert!(
                            rib.reachable(nh, d),
                            "next hop {nh} of {s}→{d} cannot reach {d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn policy_blocks_peer_transit() {
        // Hand-built: stub A — provider P1 — peer — P2 — stub B, where
        // P1 and P2 are regionals with no mutual provider. A valley-free
        // world still routes A→B via P1-P2 (up, across, down): allowed.
        // But peer P1 must NOT provide transit between its two peers.
        // Construct: peers X — Y, X — Z (Y, Z also peers of X but not of
        // each other, no providers at all). Y→Z would need Y —peer— X
        // —peer— Z: two "across" steps = blocked.
        // We verify on generated graphs instead that *no* selected path
        // contains two peer steps.
        let (g, rib) = generated(50, 13);
        for s in 0..g.n {
            for d in 0..g.n {
                if let Some(path) = rib.as_path(s, d) {
                    let mut full = vec![s];
                    full.extend(path.iter().map(|&x| x as usize));
                    let peer_steps = full
                        .windows(2)
                        .filter(|w| {
                            g.neighbors(w[0])
                                .any(|(b, r)| b == w[1] && r == AsRelationship::PeerPeer)
                        })
                        .count();
                    assert!(
                        peer_steps <= 1,
                        "{s}→{d}: {full:?} uses {peer_steps} peer links"
                    );
                }
            }
        }
    }

    #[test]
    fn customer_routes_selected_over_provider_routes() {
        // For every (s, d) where the selected next hop is s's customer,
        // verify no better-pref alternative existed... indirectly: check
        // the selected route's local_pref is maximal among RIB entries
        // (we only store the winner, so check pref ≥ provider pref when
        // a customer path exists is implied). Here: where d is a direct
        // customer of s, the selected path must be the one-hop customer
        // route.
        let (g, rib) = generated(40, 21);
        for s in 0..g.n {
            for d in g.customers(s) {
                let path = rib.as_path(s, d).expect("customer reachable");
                assert_eq!(path, &[d as u16], "s={s} d={d} picked {path:?}");
            }
        }
    }

    #[test]
    fn convergence_rounds_bounded() {
        let (_, rib) = generated(60, 5);
        assert!(rib.rounds < 60, "took {} rounds", rib.rounds);
    }

    #[test]
    fn valley_detector_rejects_valleys() {
        // Build tiny graph by hand through the generator's types is
        // awkward; use a generated graph and fabricate a valley:
        // customer→provider after provider→customer.
        let g = AsGraph::generate(20, 2, 0.15, 2);
        // Find a provider P with two customers c1, c2 (a valley c1-P-c2
        // is *valid* BGP — up then down — wait, c1→P is up, P→c2 is
        // down: that is valley-free). A true valley: P1→c (down) then
        // c→P2 (up). Find c with two providers.
        let mut found = false;
        for c in 0..g.n {
            let provs = g.providers(c);
            if provs.len() >= 2 {
                let path = vec![provs[0], c, provs[1]];
                assert!(!is_valley_free(&g, &path), "valley accepted: {path:?}");
                found = true;
                break;
            }
        }
        assert!(found, "no multi-homed customer in test graph");
    }
}
