//! OSPF: intra-domain link-state shortest-path routing.
//!
//! An [`OspfDomain`] covers one routing domain — the whole network for
//! the paper's flat single-AS experiments (Section 4), or one AS of a
//! multi-AS network. Shortest-path trees (SPTs) are computed per
//! *destination* with Dijkstra and cached, so path queries cost
//! O(path length) after the first query to a destination and the domain
//! never materializes an O(N²) table unless explicitly warmed.
//!
//! ## Storage and locking
//!
//! An SPT stores *only* the parent array — `parent[i]` is the local
//! index of the next hop from member `i` toward the destination, which
//! doubles as the next-hop table, and distances are recomputed on demand
//! by walking parents and summing link costs (4 bytes per node per
//! destination instead of 12; a 20,000-router full table is 1.6 GB, not
//! 4.8 GB). Lazily computed SPTs live in a bounded FIFO cache behind a
//! mutex; [`OspfDomain::warm_full_table`] instead computes every
//! destination on the shared worker pool (reusing per-worker Dijkstra
//! scratch buffers) and freezes the result into a lock-free read-only
//! table, so post-warm queries from parallel engines never contend.
//!
//! ## Host aggregation
//!
//! Hosts attach to exactly one router, so a host's routes are its
//! router's routes plus the single access link. The domain exploits
//! this: members that are single-homed hosts are classified as
//! *aggregated leaves* at build time and excluded from the Dijkstra
//! graph entirely — SPTs (and their parent arrays, and the destination
//! axis of the full table) cover only the *core* (routers plus any
//! multi-homed or isolated oddballs). Queries compose a leaf endpoint as
//! `[host] + core walk from its attach router` (and symmetrically at the
//! destination), which is exact because the access link is the host's
//! only edge. For the paper's topologies — tens of hosts per router —
//! this shrinks routing state by the host:router ratio squared for a
//! warmed table: one routing entry per attached router, not per host.

// simlint: allow-file(cast-lossy) -- local router indices are positions in `members`, bounded by the domain size which is far below u32::MAX
use massf_topology::{Network, NodeId, NodeKind};
use parking_lot::Mutex;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::OnceLock;

/// Link cost metric for SPF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostMetric {
    /// Every link costs 1 (hop count).
    Hop,
    /// Cost = propagation latency (what MaSSF's DML configs use).
    Latency,
    /// Cost = a reference rate divided by bandwidth (classic Cisco cost).
    InverseBandwidth,
}

impl CostMetric {
    fn cost(self, link: &massf_topology::Link) -> u64 {
        match self {
            CostMetric::Hop => 1,
            // Nanosecond resolution keeps ordering exact in integers.
            CostMetric::Latency => (link.latency_ms * 1e6).round() as u64,
            CostMetric::InverseBandwidth => {
                // 100 Gbps reference, floor 1 (OSPF cost is ≥ 1).
                ((1e11 / link.bandwidth_bps).round() as u64).max(1)
            }
        }
    }
}

/// A destination's shortest-path tree, stored as a flat parent array —
/// the parent *is* the next hop toward the destination, and distances
/// are recovered by walking parents (see the module docs).
#[derive(Debug, Clone)]
struct Spt {
    /// `parent[i]` = core index of next hop from core member `i` toward
    /// the destination; `u32::MAX` when unreachable or at the
    /// destination. Aggregated leaves have no row — they resolve through
    /// their attach router's.
    parent: Box<[u32]>,
}

/// Reusable Dijkstra working memory: one allocation per worker instead
/// of one per destination when warming a full table.
#[derive(Default)]
struct SptScratch {
    dist: Vec<u64>,
    heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
}

/// An OSPF routing domain over a subset of a [`Network`]'s nodes.
///
/// Queries are thread-safe: lazily computed SPTs sit in a bounded FIFO
/// cache behind a mutex, and a warmed full table is frozen behind a
/// `OnceLock` that readers hit without any lock.
pub struct OspfDomain {
    /// Member nodes (routers and hosts of the domain), defining local
    /// indices.
    members: Vec<NodeId>,
    /// Global node id → local index (u32::MAX = not a member).
    local_of: Vec<u32>,
    /// *Core* adjacency — aggregated leaves excluded — indexed by core
    /// index: `(neighbor core index, cost)`.
    adj: Vec<Vec<(u32, u64)>>,
    /// Member local index → core index; `u32::MAX` marks an aggregated
    /// leaf (single-homed host, resolved through `attach`).
    core_of: Box<[u32]>,
    /// Core index → member local index (order-preserving compaction).
    core_member: Box<[u32]>,
    /// Per member local index, for aggregated leaves: `(attach router
    /// core index, access-link cost)`. Core members hold `(u32::MAX, 0)`.
    attach: Box<[(u32, u64)]>,
    metric: CostMetric,
    cache: Mutex<SptCache>,
    /// The full per-destination table installed by `warm_full_table`;
    /// once set it is immutable and read lock-free.
    frozen: OnceLock<Box<[Spt]>>,
}

struct SptCache {
    map: HashMap<u32, Spt>, // keyed by destination *core* index
    order: VecDeque<u32>,   // FIFO for eviction
    capacity: usize,
    scratch: SptScratch, // reused across lazy Dijkstra runs
}

impl OspfDomain {
    /// Build a domain over `members` of `net`, using only links whose
    /// both endpoints are members (intra-domain links).
    pub fn new(net: &Network, members: Vec<NodeId>, metric: CostMetric) -> Self {
        Self::with_cache_capacity(net, members, metric, 1024)
    }

    /// Like [`OspfDomain::new`] with an explicit SPT cache capacity.
    pub fn with_cache_capacity(
        net: &Network,
        members: Vec<NodeId>,
        metric: CostMetric,
        cache_capacity: usize,
    ) -> Self {
        Self::with_link_filter(net, members, metric, cache_capacity, |_| true)
    }

    /// Like [`OspfDomain::with_cache_capacity`] but only links for which
    /// `alive(link)` holds enter the adjacency — the reconvergence
    /// primitive of the fault subsystem: rebuilding a domain with dead
    /// links (or all links of a crashed router) filtered out yields the
    /// post-fault shortest-path trees.
    pub fn with_link_filter(
        net: &Network,
        members: Vec<NodeId>,
        metric: CostMetric,
        cache_capacity: usize,
        alive: impl Fn(&massf_topology::Link) -> bool,
    ) -> Self {
        let mut local_of = vec![u32::MAX; net.node_count()];
        for (i, &m) in members.iter().enumerate() {
            local_of[m.index()] = i as u32;
        }
        let mut full_adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); members.len()];
        for link in &net.links {
            if !alive(link) {
                continue;
            }
            let (la, lb) = (local_of[link.a.index()], local_of[link.b.index()]);
            if la != u32::MAX && lb != u32::MAX {
                let c = metric.cost(link);
                full_adj[la as usize].push((lb, c));
                full_adj[lb as usize].push((la, c));
            }
        }

        // Leaf classification: a host with exactly one distinct (alive,
        // intra-domain) neighbor is aggregated behind that neighbor.
        // Degenerate host–host pairs (each the other's only neighbor)
        // stay in the core, so every leaf's attach point is a core node.
        // Purely a function of members + alive links — deterministic.
        let candidate: Vec<bool> = members
            .iter()
            .zip(&full_adj)
            .map(|(&m, nbrs)| {
                net.nodes[m.index()].kind == NodeKind::Host
                    && !nbrs.is_empty()
                    && nbrs.iter().all(|&(nb, _)| nb == nbrs[0].0)
            })
            .collect();
        let is_leaf: Vec<bool> = candidate
            .iter()
            .enumerate()
            .map(|(i, &c)| c && !candidate[full_adj[i][0].0 as usize])
            .collect();

        // Order-preserving core compaction.
        let mut core_of = vec![u32::MAX; members.len()].into_boxed_slice();
        let mut core_member = Vec::new();
        for (i, &leaf) in is_leaf.iter().enumerate() {
            if !leaf {
                core_of[i] = core_member.len() as u32;
                core_member.push(i as u32);
            }
        }

        // Core adjacency (leaf edges dropped — no path routes *through*
        // a degree-1 node) and leaf attach records (min cost over
        // parallel access links, matching what Dijkstra would relax).
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); core_member.len()];
        let mut attach = vec![(u32::MAX, 0u64); members.len()].into_boxed_slice();
        for (i, nbrs) in full_adj.iter().enumerate() {
            if is_leaf[i] {
                let router = core_of[nbrs[0].0 as usize];
                let cost = nbrs
                    .iter()
                    .map(|&(_, c)| c)
                    .min()
                    .expect("leaf has at least one access link");
                attach[i] = (router, cost);
            } else {
                let ci = core_of[i] as usize;
                adj[ci].extend(
                    nbrs.iter()
                        .filter(|&&(nb, _)| !is_leaf[nb as usize])
                        .map(|&(nb, c)| (core_of[nb as usize], c)),
                );
            }
        }

        OspfDomain {
            members,
            local_of,
            adj,
            core_of,
            core_member: core_member.into_boxed_slice(),
            attach,
            metric,
            cache: Mutex::new(SptCache {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: cache_capacity.max(1),
                scratch: SptScratch::default(),
            }),
            frozen: OnceLock::new(),
        }
    }

    /// The metric in use.
    pub fn metric(&self) -> CostMetric {
        self.metric
    }

    /// Number of member nodes.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Is `node` part of this domain?
    pub fn contains(&self, node: NodeId) -> bool {
        self.local_of[node.index()] != u32::MAX
    }

    /// Number of core (non-aggregated) members — the size of every SPT
    /// parent array and of the warmed table's destination axis.
    pub fn core_count(&self) -> usize {
        self.core_member.len()
    }

    /// The `NodeId` behind a core index.
    fn core_node(&self, c: u32) -> NodeId {
        self.members[self.core_member[c as usize] as usize]
    }

    /// Core anchor of member `l`: `(own core index, 0)` for core
    /// members, `(attach router core index, access-link cost)` for
    /// aggregated leaves.
    fn anchor(&self, l: u32) -> (u32, u64) {
        let c = self.core_of[l as usize];
        if c != u32::MAX {
            (c, 0)
        } else {
            self.attach[l as usize]
        }
    }

    fn compute_spt(&self, dst_local: u32, scratch: &mut SptScratch) -> Spt {
        let n = self.core_member.len();
        scratch.dist.clear();
        scratch.dist.resize(n, u64::MAX);
        scratch.heap.clear();
        let dist = &mut scratch.dist;
        let heap = &mut scratch.heap;
        let mut parent = vec![u32::MAX; n].into_boxed_slice();
        dist[dst_local as usize] = 0;
        heap.push(std::cmp::Reverse((0, dst_local)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for &(u, c) in &self.adj[v as usize] {
                let nd = d + c;
                // Deterministic tie-break: strictly better distance, or
                // equal distance with a lower-indexed parent.
                let ud = dist[u as usize];
                if nd < ud || (nd == ud && v < parent[u as usize]) {
                    dist[u as usize] = nd;
                    parent[u as usize] = v;
                    heap.push(std::cmp::Reverse((nd, u)));
                }
            }
        }
        Spt { parent }
    }

    /// Precompute the SPT of every *core* destination on the shared
    /// worker pool (aggregated leaves need none — see the module docs)
    /// and freeze the result into a lock-free read-only table (the
    /// bounded lazy cache is bypassed from then on, so warming is never
    /// undone by eviction and post-warm queries take no lock).
    ///
    /// Each destination's Dijkstra is independent and deterministic, so
    /// the warmed table is identical at any thread count; subsequent
    /// `path`/`next_hop`/`distance` queries are pure table reads.
    /// Idempotent: a second call (even concurrent) is a no-op.
    pub fn warm_full_table(&self) {
        if self.frozen.get().is_some() {
            return;
        }
        let n = self.core_member.len();
        // Chunked fan-out so each worker reuses one Dijkstra scratch
        // (dist buffer + heap) across all its destinations.
        let spts: Vec<Spt> = massf_parutil::par_map_chunks(n, |range| {
            let mut scratch = SptScratch::default();
            range
                .map(|dst| self.compute_spt(dst as u32, &mut scratch))
                .collect()
        });
        let _ = self.frozen.set(spts.into_boxed_slice());
    }

    fn with_spt<R>(&self, dst_local: u32, f: impl FnOnce(&Spt) -> R) -> R {
        // Warmed table: immutable, no lock.
        if let Some(table) = self.frozen.get() {
            return f(&table[dst_local as usize]);
        }
        let mut cache = self.cache.lock();
        if !cache.map.contains_key(&dst_local) {
            let cache = &mut *cache;
            let spt = self.compute_spt(dst_local, &mut cache.scratch);
            if cache.map.len() >= cache.capacity {
                if let Some(old) = cache.order.pop_front() {
                    cache.map.remove(&old);
                }
            }
            cache.order.push_back(dst_local);
            cache.map.insert(dst_local, spt);
        }
        f(&cache.map[&dst_local])
    }

    /// Cheapest direct-edge cost `from → to`; both must be adjacent
    /// (parallel links collapse to the min cost, matching what Dijkstra
    /// relaxed with).
    fn min_edge_cost(&self, from: u32, to: u32) -> u64 {
        self.adj[from as usize]
            .iter()
            .filter(|&&(nb, _)| nb == to)
            .map(|&(_, c)| c)
            .min()
            .expect("SPT parents are adjacent members")
    }

    /// Next hop from `src` toward `dst`, or `None` if unreachable /
    /// not members / `src == dst`.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        let (ls, ld) = (self.local_of[src.index()], self.local_of[dst.index()]);
        if ls == u32::MAX || ld == u32::MAX || ls == ld {
            return None;
        }
        let (a, _) = self.anchor(ls);
        let (b, _) = self.anchor(ld);
        if self.core_of[ls as usize] == u32::MAX {
            // Aggregated leaf: its only edge goes to the attach router —
            // the answer whenever `dst` is reachable at all.
            let reachable = a == b || self.with_spt(b, |spt| spt.parent[a as usize] != u32::MAX);
            return reachable.then(|| self.core_node(a));
        }
        if a == b {
            // `src` is `dst`'s attach router (ls != ld rules out the
            // core–core case): one access-link hop remains.
            return Some(dst);
        }
        self.with_spt(b, |spt| {
            let p = spt.parent[a as usize];
            (p != u32::MAX).then(|| self.core_node(p))
        })
    }

    /// Full shortest path `src → … → dst` (inclusive), or `None` if
    /// unreachable. `src == dst` yields `[src]`.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let (ls, ld) = (self.local_of[src.index()], self.local_of[dst.index()]);
        if ls == u32::MAX || ld == u32::MAX {
            return None;
        }
        if ls == ld {
            return Some(vec![src]);
        }
        // Count-then-fill inside `build_path`: one exact allocation.
        let mut path = Vec::new();
        self.build_path(ls, ld, src, dst, false, &mut path)
            .then_some(path)
    }

    /// Append the shortest path `src → … → dst` to `out`, skipping `src`
    /// itself when it already sits at `out`'s tail (the multi-AS
    /// resolver stitches legs into one buffer this way). Returns `false`
    /// — leaving `out` untouched — when either endpoint is not a member
    /// or `dst` is unreachable.
    pub(crate) fn path_append(&self, src: NodeId, dst: NodeId, out: &mut Vec<NodeId>) -> bool {
        let (ls, ld) = (self.local_of[src.index()], self.local_of[dst.index()]);
        if ls == u32::MAX || ld == u32::MAX {
            return false;
        }
        let skip_src = out.last() == Some(&src);
        if ls == ld {
            if !skip_src {
                out.push(src);
            }
            return true;
        }
        self.build_path(ls, ld, src, dst, skip_src, out)
    }

    /// Append `src → … → dst` (`ls != ld`) composed from the aggregated
    /// layout: `src`, then — when `src` is a leaf — its attach router,
    /// then the core walk to `dst`'s anchor, then `dst` itself when it
    /// is a leaf. Exact because an access link is a leaf's only edge.
    /// Returns `false` (leaving `out` untouched) when unreachable.
    fn build_path(
        &self,
        ls: u32,
        ld: u32,
        src: NodeId,
        dst: NodeId,
        skip_src: bool,
        out: &mut Vec<NodeId>,
    ) -> bool {
        let (a, _) = self.anchor(ls);
        let (b, _) = self.anchor(ld);
        let src_is_leaf = self.core_of[ls as usize] == u32::MAX;
        let dst_is_leaf = self.core_of[ld as usize] == u32::MAX;
        let fixed = usize::from(!skip_src) + usize::from(src_is_leaf) + usize::from(dst_is_leaf);
        if a == b {
            // Shared anchor: the core leg collapses to that one router
            // (covers host→router, router→host, and host→host behind
            // the same router; a == b with both ends core means ls ==
            // ld, which the callers already handled).
            out.reserve(fixed);
            if !skip_src {
                out.push(src);
            }
            if src_is_leaf {
                out.push(self.core_node(a));
            }
            if dst_is_leaf {
                out.push(dst);
            }
            return true;
        }
        self.with_spt(b, |spt| {
            if spt.parent[a as usize] == u32::MAX {
                return false;
            }
            out.reserve(fixed + walk_len(&spt.parent, a, b));
            if !skip_src {
                out.push(src);
            }
            if src_is_leaf {
                out.push(self.core_node(a));
            }
            let mut cur = a;
            while cur != b {
                cur = spt.parent[cur as usize];
                out.push(self.core_node(cur));
            }
            if dst_is_leaf {
                out.push(dst);
            }
            true
        })
    }

    /// Shortest distance (in metric units), or `None` if unreachable.
    /// Recomputed as the cost sum along the parent walk (the SPT stores
    /// only parents; the sum of minimal edge costs along the tree path
    /// is exactly the distance Dijkstra converged to), plus the access
    /// links of any aggregated-leaf endpoints.
    pub fn distance(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        let (ls, ld) = (self.local_of[src.index()], self.local_of[dst.index()]);
        if ls == u32::MAX || ld == u32::MAX {
            return None;
        }
        if ls == ld {
            return Some(0);
        }
        let (a, ca) = self.anchor(ls);
        let (b, cb) = self.anchor(ld);
        if a == b {
            return Some(ca + cb);
        }
        self.with_spt(b, |spt| {
            if spt.parent[a as usize] == u32::MAX {
                return None;
            }
            let mut total = ca + cb;
            let mut cur = a;
            while cur != b {
                let p = spt.parent[cur as usize];
                total += self.min_edge_cost(cur, p);
                cur = p;
            }
            Some(total)
        })
    }
}

/// Number of edges on the tree path `from → … → to` (parents must form
/// a path, i.e. `from` is reachable).
fn walk_len(parent: &[u32], from: u32, to: u32) -> usize {
    let mut hops = 0usize;
    let mut cur = from;
    while cur != to {
        cur = parent[cur as usize];
        debug_assert_ne!(cur, u32::MAX);
        hops += 1;
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_topology::{AsId, NodeKind, Point};

    /// Diamond: 0-1 (1ms), 0-2 (5ms), 1-3 (1ms), 2-3 (1ms).
    /// Shortest 0→3 is via 1 (2ms) not via 2 (6ms).
    fn diamond() -> (Network, Vec<NodeId>) {
        let mut net = Network::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| net.add_node(NodeKind::Router, Point::new(i as f64, 0.0), AsId(0)))
            .collect();
        net.add_link(ids[0], ids[1], 1e9, 1.0);
        net.add_link(ids[0], ids[2], 1e9, 5.0);
        net.add_link(ids[1], ids[3], 1e9, 1.0);
        net.add_link(ids[2], ids[3], 1e9, 1.0);
        (net, ids)
    }

    #[test]
    fn shortest_path_by_latency() {
        let (net, ids) = diamond();
        let d = OspfDomain::new(&net, ids.clone(), CostMetric::Latency);
        assert_eq!(d.path(ids[0], ids[3]), Some(vec![ids[0], ids[1], ids[3]]));
        assert_eq!(d.distance(ids[0], ids[3]), Some(2_000_000)); // 2 ms in ns
        assert_eq!(d.next_hop(ids[0], ids[3]), Some(ids[1]));
    }

    #[test]
    fn paths_are_symmetric_in_cost() {
        let (net, ids) = diamond();
        let d = OspfDomain::new(&net, ids.clone(), CostMetric::Latency);
        assert_eq!(d.distance(ids[0], ids[3]), d.distance(ids[3], ids[0]));
    }

    #[test]
    fn hop_metric_counts_hops() {
        let (net, ids) = diamond();
        let d = OspfDomain::new(&net, ids.clone(), CostMetric::Hop);
        assert_eq!(d.distance(ids[0], ids[3]), Some(2));
    }

    #[test]
    fn self_path_is_singleton() {
        let (net, ids) = diamond();
        let d = OspfDomain::new(&net, ids.clone(), CostMetric::Latency);
        assert_eq!(d.path(ids[0], ids[0]), Some(vec![ids[0]]));
        assert_eq!(d.next_hop(ids[0], ids[0]), None);
    }

    #[test]
    fn non_member_destination_unroutable() {
        let (mut net, ids) = diamond();
        let outsider = net.add_node(NodeKind::Router, Point::new(9.0, 9.0), AsId(1));
        let d = OspfDomain::new(&net, ids.clone(), CostMetric::Latency);
        assert_eq!(d.path(ids[0], outsider), None);
        assert!(!d.contains(outsider));
    }

    #[test]
    fn unreachable_within_domain() {
        // Domain includes an isolated node.
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Router, Point::new(0.0, 0.0), AsId(0));
        let b = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
        let c = net.add_node(NodeKind::Router, Point::new(2.0, 0.0), AsId(0));
        net.add_link(a, b, 1e9, 1.0);
        let d = OspfDomain::new(&net, vec![a, b, c], CostMetric::Latency);
        assert_eq!(d.path(a, c), None);
        assert_eq!(d.distance(a, c), None);
        assert_eq!(d.path(a, b), Some(vec![a, b]));
    }

    #[test]
    fn ignores_links_leaving_the_domain() {
        // a-b intra, b-x inter (x not a member): path a→b must not see x.
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Router, Point::new(0.0, 0.0), AsId(0));
        let b = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
        let x = net.add_node(NodeKind::Router, Point::new(2.0, 0.0), AsId(1));
        net.add_link(a, x, 1e9, 0.1);
        net.add_link(x, b, 1e9, 0.1);
        net.add_link(a, b, 1e9, 10.0);
        let d = OspfDomain::new(&net, vec![a, b], CostMetric::Latency);
        // The short detour through x is invisible to the domain.
        assert_eq!(d.path(a, b), Some(vec![a, b]));
        assert_eq!(d.distance(a, b), Some(10_000_000));
    }

    #[test]
    fn dijkstra_matches_bellman_ford_reference() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        // Random connected graph: ring + chords.
        let n = 40;
        let mut net = Network::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| net.add_node(NodeKind::Router, Point::new(i as f64, 0.0), AsId(0)))
            .collect();
        for i in 0..n {
            net.add_link(ids[i], ids[(i + 1) % n], 1e9, rng.gen_range(0.1..5.0));
        }
        for _ in 0..30 {
            let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if i != j && !net.has_link(ids[i], ids[j]) {
                net.add_link(ids[i], ids[j], 1e9, rng.gen_range(0.1..5.0));
            }
        }
        let d = OspfDomain::new(&net, ids.clone(), CostMetric::Latency);

        // Bellman–Ford from destination 0.
        let mut dist = vec![u64::MAX; n];
        dist[0] = 0;
        for _ in 0..n {
            for link in &net.links {
                let c = (link.latency_ms * 1e6).round() as u64;
                let (ia, ib) = (link.a.index(), link.b.index());
                if dist[ia] != u64::MAX && dist[ia] + c < dist[ib] {
                    dist[ib] = dist[ia] + c;
                }
                if dist[ib] != u64::MAX && dist[ib] + c < dist[ia] {
                    dist[ia] = dist[ib] + c;
                }
            }
        }
        for i in 1..n {
            assert_eq!(d.distance(ids[i], ids[0]), Some(dist[i]), "node {i}");
        }
    }

    #[test]
    fn cache_eviction_keeps_answers_correct() {
        let (net, ids) = diamond();
        let d = OspfDomain::with_cache_capacity(&net, ids.clone(), CostMetric::Latency, 1);
        let p03 = d.path(ids[0], ids[3]);
        let p01 = d.path(ids[0], ids[1]); // evicts dst 3
        let p03_again = d.path(ids[0], ids[3]); // recompute
        assert_eq!(p03, p03_again);
        assert_eq!(p01, Some(vec![ids[0], ids[1]]));
    }

    #[test]
    fn warm_full_table_matches_lazy_queries() {
        let (net, ids) = diamond();
        let lazy = OspfDomain::new(&net, ids.clone(), CostMetric::Latency);
        // Warming must survive a tiny configured capacity (it grows it).
        let warmed = OspfDomain::with_cache_capacity(&net, ids.clone(), CostMetric::Latency, 1);
        warmed.warm_full_table();
        for &s in &ids {
            for &d in &ids {
                assert_eq!(lazy.path(s, d), warmed.path(s, d));
                assert_eq!(lazy.distance(s, d), warmed.distance(s, d));
                assert_eq!(lazy.next_hop(s, d), warmed.next_hop(s, d));
            }
        }
    }

    #[test]
    fn path_endpoints_and_continuity() {
        let (net, ids) = diamond();
        let d = OspfDomain::new(&net, ids.clone(), CostMetric::Latency);
        let p = d.path(ids[2], ids[1]).expect("diamond is connected");
        assert_eq!(*p.first().expect("path non-empty"), ids[2]);
        assert_eq!(*p.last().expect("path non-empty"), ids[1]);
        for w in p.windows(2) {
            assert!(net.has_link(w[0], w[1]), "gap {w:?}");
        }
    }

    #[test]
    fn link_filter_reroutes_around_dead_link() {
        let (net, ids) = diamond();
        // Kill the cheap 0-1 link: traffic must detour via 2.
        let dead = net
            .links
            .iter()
            .find(|l| (l.a, l.b) == (ids[0], ids[1]) || (l.a, l.b) == (ids[1], ids[0]))
            .expect("diamond has a 0-1 link")
            .id;
        let d = OspfDomain::with_link_filter(&net, ids.clone(), CostMetric::Latency, 1024, |l| {
            l.id != dead
        });
        assert_eq!(
            d.path(ids[0], ids[3]),
            Some(vec![ids[0], ids[2], ids[3]]),
            "must detour via node 2"
        );
        assert_eq!(d.distance(ids[0], ids[3]), Some(6_000_000)); // 6 ms in ns
    }

    /// Diamond of routers with two hosts on router 0 and one on router 3.
    fn diamond_with_hosts() -> (Network, Vec<NodeId>, Vec<NodeId>) {
        let (mut net, routers) = diamond();
        let h0 = net.add_node(NodeKind::Host, Point::new(0.0, 1.0), AsId(0));
        let h1 = net.add_node(NodeKind::Host, Point::new(0.0, 2.0), AsId(0));
        let h3 = net.add_node(NodeKind::Host, Point::new(3.0, 1.0), AsId(0));
        net.add_link(routers[0], h0, 1e9, 0.5);
        net.add_link(routers[0], h1, 1e9, 0.25);
        net.add_link(routers[3], h3, 1e9, 1.0);
        let members = routers.iter().copied().chain([h0, h1, h3]).collect();
        (net, routers, members)
    }

    #[test]
    fn hosts_aggregate_behind_their_router() {
        let (net, routers, members) = diamond_with_hosts();
        let d = OspfDomain::new(&net, members.clone(), CostMetric::Latency);
        // Only the four routers are core; three hosts share their rows.
        assert_eq!(d.core_count(), 4);
        assert_eq!(d.member_count(), 7);
        let (h0, h3) = (members[4], members[6]);
        // Host → host crosses the diamond via the cheap branch.
        assert_eq!(
            d.path(h0, h3),
            Some(vec![h0, routers[0], routers[1], routers[3], h3])
        );
        // 0.5 + 1 + 1 + 1 ms.
        assert_eq!(d.distance(h0, h3), Some(3_500_000));
        assert_eq!(d.distance(h0, h3), d.distance(h3, h0));
        assert_eq!(d.next_hop(h0, h3), Some(routers[0]));
        assert_eq!(d.next_hop(routers[3], h3), Some(h3));
        assert_eq!(d.next_hop(routers[1], h3), Some(routers[3]));
    }

    #[test]
    fn host_routes_around_its_own_router() {
        let (net, routers, members) = diamond_with_hosts();
        let d = OspfDomain::new(&net, members.clone(), CostMetric::Latency);
        let (h0, h1) = (members[4], members[5]);
        // Same attach router: the core leg is that single router.
        assert_eq!(d.path(h0, h1), Some(vec![h0, routers[0], h1]));
        assert_eq!(d.distance(h0, h1), Some(750_000)); // 0.5 + 0.25 ms
                                                       // Host ↔ its attach router.
        assert_eq!(d.path(h0, routers[0]), Some(vec![h0, routers[0]]));
        assert_eq!(d.path(routers[0], h0), Some(vec![routers[0], h0]));
        assert_eq!(d.distance(h0, routers[0]), Some(500_000));
        assert_eq!(d.next_hop(h0, routers[0]), Some(routers[0]));
        assert_eq!(d.next_hop(routers[0], h0), Some(h0));
        assert_eq!(d.path(h0, h0), Some(vec![h0]));
    }

    #[test]
    fn aggregated_hosts_survive_warm_and_faults() {
        let (net, routers, members) = diamond_with_hosts();
        let lazy = OspfDomain::new(&net, members.clone(), CostMetric::Latency);
        let warmed = OspfDomain::with_cache_capacity(&net, members.clone(), CostMetric::Latency, 1);
        warmed.warm_full_table();
        for &s in &members {
            for &t in &members {
                assert_eq!(lazy.path(s, t), warmed.path(s, t), "{s:?}→{t:?}");
                assert_eq!(lazy.distance(s, t), warmed.distance(s, t));
                assert_eq!(lazy.next_hop(s, t), warmed.next_hop(s, t));
            }
        }
        // Kill h3's access link: the host becomes an unreachable
        // (isolated, hence core) member; everyone else still routes.
        let h3 = members[6];
        let faulted = OspfDomain::with_link_filter(&net, members, CostMetric::Latency, 1024, |l| {
            l.a != h3 && l.b != h3
        });
        assert_eq!(faulted.path(routers[0], h3), None);
        assert_eq!(faulted.next_hop(h3, routers[0]), None);
        assert_eq!(faulted.distance(h3, h3), Some(0));
        assert!(faulted.path(routers[0], routers[3]).is_some());
    }

    #[test]
    fn link_filter_can_disconnect() {
        let (net, ids) = diamond();
        // Kill both of node 3's links: it becomes unreachable.
        let d = OspfDomain::with_link_filter(&net, ids.clone(), CostMetric::Latency, 1024, |l| {
            l.a != ids[3] && l.b != ids[3]
        });
        assert_eq!(d.path(ids[0], ids[3]), None);
        assert_eq!(d.path(ids[0], ids[1]), Some(vec![ids[0], ids[1]]));
    }
}
