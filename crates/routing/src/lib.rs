//! # massf-routing
//!
//! Realistic routing for the `massf-rs` reproduction of *Realistic
//! Large-Scale Online Network Simulation* (Liu & Chien, SC 2004).
//!
//! The paper stresses that "connectivity does not equal reachability" in
//! multi-AS networks: inter-domain paths are governed by BGP4 policy
//! routing, not shortest paths. This crate supplies both routing layers:
//!
//! * [`ospf`] — intra-AS shortest-path routing (link-state SPF via
//!   Dijkstra), with an SPT cache so that large domains never need full
//!   O(N²) forwarding tables.
//! * [`bgp`] — an AS-level BGP4 path-vector protocol with the full
//!   decision process (local preference, AS-path length, tie-breaks) and
//!   policy-controlled import/export.
//! * [`policy`] — the automatic routing-policy configuration of the
//!   paper's Section 5.1.2 (steps 4–5): local preference by business
//!   relationship (customer > peer > provider) and valley-free export
//!   filters.
//! * [`resolver`] — end-to-end path resolution used by the packet
//!   simulator: [`FlatResolver`] for single-AS OSPF networks,
//!   [`MultiAsResolver`] for BGP+OSPF networks with default routing in
//!   stub ASes (step 6 of the procedure).
//! * [`cache`] — a deterministic, bounded, fault-epoch-aware memo of
//!   resolved paths sitting in front of any resolver (NIx-vector style
//!   route memoization; DESIGN.md §3 item 11).

#![forbid(unsafe_code)]

pub mod bgp;
pub mod cache;
pub mod dynamics;
pub mod ospf;
pub mod policy;
pub mod resolver;

pub use bgp::{BgpRib, BgpRoute};
pub use cache::{
    CachedResolver, RouteCache, RouteCacheEntryState, RouteCacheShardState, RouteCacheState,
    RouteCacheStats,
};
pub use dynamics::{beacon_schedule, BeaconSim, Convergence};
pub use massf_topology::MassfError;
pub use ospf::{CostMetric, OspfDomain};
pub use policy::{
    export_allowed, local_preference, LOCAL_PREF_CUSTOMER, LOCAL_PREF_PEER, LOCAL_PREF_PROVIDER,
};
pub use resolver::{FlatResolver, MultiAsResolver, PathResolver};
