//! Wire encoding of the simulation state types.
//!
//! One function pair per type, hand-rolled over [`crate::wire`]. The
//! decoders perform *structural* validation only (bounds, known
//! discriminants, flag bytes strictly 0/1); *semantic* validation —
//! path adjacency, issued-flow counters, TCP invariants, frontier sort
//! order — happens where the state is installed
//! ([`massf_netsim::NetWorld::restore`], `validate_net_event`,
//! `ResumeState::validate`), so a hostile payload that parses cleanly
//! still cannot reach a panic path.
//!
//! Determinism: every encoder walks plain `Vec`s in index order — no
//! hash-map iteration anywhere (D1-clean), no clocks, no entropy.

use crate::rebalance::{RebalancePolicy, RebalanceSessionState};
use crate::wire::{ByteReader, ByteWriter};
use massf_engine::{EventRecord, LpId, RebalanceConfig, RebalanceCounters, ResumeState, SimTime};
use massf_netsim::{
    FaultKind, FlowEntryState, FlowId, FluidFlowEntryState, FluidStats, FluidWorldState, NetEvent,
    Packet, PacketKind, ProfileData, ReceiverEntryState, TcpSenderState, WorldState,
};
use massf_routing::{RouteCacheEntryState, RouteCacheShardState, RouteCacheState, RouteCacheStats};
use massf_topology::{LinkId, MassfError, NodeId};

fn put_time(w: &mut ByteWriter, t: SimTime) {
    w.put_u64(t.as_ns());
}

fn get_time(r: &mut ByteReader) -> Result<SimTime, MassfError> {
    Ok(SimTime::from_ns(r.get_u64()?))
}

fn put_bool(w: &mut ByteWriter, v: bool) {
    w.put_u8(u8::from(v));
}

fn get_bool(r: &mut ByteReader) -> Result<bool, MassfError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(r.corrupt(format!("flag byte {other} (want 0 or 1)"))),
    }
}

fn put_opt_time(w: &mut ByteWriter, v: Option<SimTime>) {
    match v {
        None => w.put_u8(0),
        Some(t) => {
            w.put_u8(1);
            put_time(w, t);
        }
    }
}

fn get_opt_time(r: &mut ByteReader) -> Result<Option<SimTime>, MassfError> {
    Ok(if get_bool(r)? {
        Some(get_time(r)?)
    } else {
        None
    })
}

fn put_nodes(w: &mut ByteWriter, nodes: &[NodeId]) {
    w.put_count(nodes.len());
    for n in nodes {
        w.put_u32(n.0);
    }
}

fn get_nodes(r: &mut ByteReader) -> Result<Vec<NodeId>, MassfError> {
    let n = r.get_count(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(NodeId(r.get_u32()?));
    }
    Ok(out)
}

fn put_u64s(w: &mut ByteWriter, vs: &[u64]) {
    w.put_count(vs.len());
    for &v in vs {
        w.put_u64(v);
    }
}

fn get_u64s(r: &mut ByteReader) -> Result<Vec<u64>, MassfError> {
    let n = r.get_count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_u64()?);
    }
    Ok(out)
}

fn put_u128(w: &mut ByteWriter, v: u128) {
    w.put_u64((v >> 64) as u64);
    w.put_u64(v as u64);
}

fn get_u128(r: &mut ByteReader) -> Result<u128, MassfError> {
    let hi = r.get_u64()? as u128;
    let lo = r.get_u64()? as u128;
    Ok((hi << 64) | lo)
}

fn put_u32s(w: &mut ByteWriter, vs: &[u32]) {
    w.put_count(vs.len());
    for &v in vs {
        w.put_u32(v);
    }
}

fn get_u32s(r: &mut ByteReader) -> Result<Vec<u32>, MassfError> {
    let n = r.get_count(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_u32()?);
    }
    Ok(out)
}

pub fn put_fault_kind(w: &mut ByteWriter, kind: FaultKind) {
    match kind {
        FaultKind::LinkDown(l) => {
            w.put_u8(0);
            w.put_u32(l.0);
        }
        FaultKind::LinkUp(l) => {
            w.put_u8(1);
            w.put_u32(l.0);
        }
        FaultKind::RouterCrash(n) => {
            w.put_u8(2);
            w.put_u32(n.0);
        }
        FaultKind::RouterRecover(n) => {
            w.put_u8(3);
            w.put_u32(n.0);
        }
        FaultKind::AsAdjacencyFail { as_a, as_b } => {
            w.put_u8(4);
            w.put_u16(as_a);
            w.put_u16(as_b);
        }
        FaultKind::AsAdjacencyRestore { as_a, as_b } => {
            w.put_u8(5);
            w.put_u16(as_a);
            w.put_u16(as_b);
        }
    }
}

pub fn get_fault_kind(r: &mut ByteReader) -> Result<FaultKind, MassfError> {
    Ok(match r.get_u8()? {
        0 => FaultKind::LinkDown(LinkId(r.get_u32()?)),
        1 => FaultKind::LinkUp(LinkId(r.get_u32()?)),
        2 => FaultKind::RouterCrash(NodeId(r.get_u32()?)),
        3 => FaultKind::RouterRecover(NodeId(r.get_u32()?)),
        4 => FaultKind::AsAdjacencyFail {
            as_a: r.get_u16()?,
            as_b: r.get_u16()?,
        },
        5 => FaultKind::AsAdjacencyRestore {
            as_a: r.get_u16()?,
            as_b: r.get_u16()?,
        },
        other => return Err(r.corrupt(format!("unknown fault kind {other}"))),
    })
}

fn put_packet(w: &mut ByteWriter, p: &Packet) {
    w.put_u64(p.flow.0);
    w.put_u64(p.meta);
    put_nodes(w, &p.path);
    w.put_u32(p.dst.0);
    w.put_u32(p.seq);
    w.put_u32(p.size_bytes);
    w.put_u16(p.hop);
    w.put_u8(match p.kind {
        PacketKind::Data => 0,
        PacketKind::Ack => 1,
        PacketKind::Datagram => 2,
    });
}

fn get_packet(r: &mut ByteReader) -> Result<Packet, MassfError> {
    let flow = FlowId(r.get_u64()?);
    let meta = r.get_u64()?;
    let path = get_nodes(r)?;
    let dst = NodeId(r.get_u32()?);
    let seq = r.get_u32()?;
    let size_bytes = r.get_u32()?;
    let hop = r.get_u16()?;
    let kind = match r.get_u8()? {
        0 => PacketKind::Data,
        1 => PacketKind::Ack,
        2 => PacketKind::Datagram,
        other => return Err(r.corrupt(format!("unknown packet kind {other}"))),
    };
    Ok(Packet {
        flow,
        meta,
        path: path.into(),
        dst,
        seq,
        size_bytes,
        hop,
        kind,
    })
}

pub fn put_net_event(w: &mut ByteWriter, ev: &NetEvent) {
    match ev {
        NetEvent::Arrive(p) => {
            w.put_u8(0);
            put_packet(w, p);
        }
        NetEvent::RtoTimer { flow, epoch } => {
            w.put_u8(1);
            w.put_u64(flow.0);
            w.put_u32(*epoch);
        }
        NetEvent::AppTimer { token } => {
            w.put_u8(2);
            w.put_u64(*token);
        }
        NetEvent::StartFlow { dst, bytes } => {
            w.put_u8(3);
            w.put_u32(dst.0);
            w.put_u64(*bytes);
        }
        NetEvent::SendDatagram { dst, bytes, meta } => {
            w.put_u8(4);
            w.put_u32(dst.0);
            w.put_u32(*bytes);
            w.put_u64(*meta);
        }
        NetEvent::Fault { kind } => {
            w.put_u8(5);
            put_fault_kind(w, *kind);
        }
        NetEvent::FluidStart {
            src,
            dst,
            bytes,
            peak_bps,
        } => {
            w.put_u8(6);
            w.put_u32(src.0);
            w.put_u32(dst.0);
            w.put_u64(*bytes);
            w.put_u64(*peak_bps);
        }
        NetEvent::FluidFinish { flow, epoch } => {
            w.put_u8(7);
            w.put_u64(flow.0);
            w.put_u32(*epoch);
        }
        NetEvent::FluidFault { kind } => {
            w.put_u8(8);
            put_fault_kind(w, *kind);
        }
        NetEvent::FluidCapUpdate { slot, fluid_bps } => {
            w.put_u8(9);
            w.put_u32(*slot);
            w.put_u64(*fluid_bps);
        }
        NetEvent::FluidPacketLoad { slot, bps } => {
            w.put_u8(10);
            w.put_u32(*slot);
            w.put_u64(*bps);
        }
    }
}

pub fn get_net_event(r: &mut ByteReader) -> Result<NetEvent, MassfError> {
    Ok(match r.get_u8()? {
        0 => NetEvent::Arrive(get_packet(r)?),
        1 => NetEvent::RtoTimer {
            flow: FlowId(r.get_u64()?),
            epoch: r.get_u32()?,
        },
        2 => NetEvent::AppTimer {
            token: r.get_u64()?,
        },
        3 => NetEvent::StartFlow {
            dst: NodeId(r.get_u32()?),
            bytes: r.get_u64()?,
        },
        4 => NetEvent::SendDatagram {
            dst: NodeId(r.get_u32()?),
            bytes: r.get_u32()?,
            meta: r.get_u64()?,
        },
        5 => NetEvent::Fault {
            kind: get_fault_kind(r)?,
        },
        6 => NetEvent::FluidStart {
            src: NodeId(r.get_u32()?),
            dst: NodeId(r.get_u32()?),
            bytes: r.get_u64()?,
            peak_bps: r.get_u64()?,
        },
        7 => NetEvent::FluidFinish {
            flow: FlowId(r.get_u64()?),
            epoch: r.get_u32()?,
        },
        8 => NetEvent::FluidFault {
            kind: get_fault_kind(r)?,
        },
        9 => NetEvent::FluidCapUpdate {
            slot: r.get_u32()?,
            fluid_bps: r.get_u64()?,
        },
        10 => NetEvent::FluidPacketLoad {
            slot: r.get_u32()?,
            bps: r.get_u64()?,
        },
        other => return Err(r.corrupt(format!("unknown event kind {other}"))),
    })
}

pub fn put_event_record(w: &mut ByteWriter, ev: &EventRecord<NetEvent>) {
    put_time(w, ev.time);
    w.put_u32(ev.target.0);
    w.put_u64(ev.tag);
    put_net_event(w, &ev.payload);
}

pub fn get_event_record(r: &mut ByteReader) -> Result<EventRecord<NetEvent>, MassfError> {
    Ok(EventRecord {
        time: get_time(r)?,
        target: LpId(r.get_u32()?),
        tag: r.get_u64()?,
        payload: get_net_event(r)?,
    })
}

pub fn put_resume_state(w: &mut ByteWriter, s: &ResumeState<NetEvent>) {
    put_u32s(w, &s.counters);
    w.put_count(s.events.len());
    for ev in &s.events {
        put_event_record(w, ev);
    }
}

pub fn get_resume_state(r: &mut ByteReader) -> Result<ResumeState<NetEvent>, MassfError> {
    let counters = get_u32s(r)?;
    // An event record is at least 21 bytes (time + target + tag + kind).
    let n = r.get_count(21)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(get_event_record(r)?);
    }
    Ok(ResumeState { events, counters })
}

fn put_sender(w: &mut ByteWriter, s: &TcpSenderState) {
    w.put_u32(s.total_segments);
    w.put_u32(s.acked);
    w.put_u32(s.next_seq);
    w.put_f64(s.cwnd);
    w.put_f64(s.ssthresh);
    w.put_u32(s.dup_acks);
    put_opt_time(w, s.srtt);
    put_time(w, s.rttvar);
    put_time(w, s.rto);
    w.put_u32(s.timer_epoch);
    match s.rtt_probe {
        None => w.put_u8(0),
        Some((seq, at)) => {
            w.put_u8(1);
            w.put_u32(seq);
            put_time(w, at);
        }
    }
    put_bool(w, s.retransmitted_low);
    w.put_u32(s.retries);
    w.put_u32(s.max_retries);
    put_bool(w, s.done);
    put_bool(w, s.aborted);
}

fn get_sender(r: &mut ByteReader) -> Result<TcpSenderState, MassfError> {
    Ok(TcpSenderState {
        total_segments: r.get_u32()?,
        acked: r.get_u32()?,
        next_seq: r.get_u32()?,
        cwnd: r.get_f64()?,
        ssthresh: r.get_f64()?,
        dup_acks: r.get_u32()?,
        srtt: get_opt_time(r)?,
        rttvar: get_time(r)?,
        rto: get_time(r)?,
        timer_epoch: r.get_u32()?,
        rtt_probe: if get_bool(r)? {
            Some((r.get_u32()?, get_time(r)?))
        } else {
            None
        },
        retransmitted_low: get_bool(r)?,
        retries: r.get_u32()?,
        max_retries: r.get_u32()?,
        done: get_bool(r)?,
        aborted: get_bool(r)?,
    })
}

fn put_flow_entry(w: &mut ByteWriter, f: &FlowEntryState) {
    w.put_u64(f.flow.0);
    put_sender(w, &f.sender);
    put_nodes(w, &f.path);
    w.put_u32(f.dst.0);
    w.put_u32(f.armed_epoch);
    put_bool(w, f.unroutable);
}

fn get_flow_entry(r: &mut ByteReader) -> Result<FlowEntryState, MassfError> {
    Ok(FlowEntryState {
        flow: FlowId(r.get_u64()?),
        sender: get_sender(r)?,
        path: get_nodes(r)?,
        dst: NodeId(r.get_u32()?),
        armed_epoch: r.get_u32()?,
        unroutable: get_bool(r)?,
    })
}

fn put_receiver_entry(w: &mut ByteWriter, e: &ReceiverEntryState) {
    w.put_u32(e.node.0);
    w.put_u64(e.flow.0);
    w.put_u32(e.rcv_next);
    w.put_u64(e.segments_seen);
}

fn get_receiver_entry(r: &mut ByteReader) -> Result<ReceiverEntryState, MassfError> {
    Ok(ReceiverEntryState {
        node: NodeId(r.get_u32()?),
        flow: FlowId(r.get_u64()?),
        rcv_next: r.get_u32()?,
        segments_seen: r.get_u64()?,
    })
}

pub fn put_route_cache(w: &mut ByteWriter, c: &RouteCacheState) {
    w.put_u64(c.capacity);
    w.put_count(c.shards.len());
    for shard in &c.shards {
        put_shard(w, shard);
    }
}

fn put_shard(w: &mut ByteWriter, s: &RouteCacheShardState) {
    w.put_count(s.entries.len());
    for e in &s.entries {
        w.put_u64(e.key);
        w.put_u64(e.stamp);
        match &e.path {
            None => w.put_u8(0),
            Some(p) => {
                w.put_u8(1);
                put_nodes(w, p);
            }
        }
    }
    w.put_count(s.queue.len());
    for &(stamp, key) in &s.queue {
        w.put_u64(stamp);
        w.put_u64(key);
    }
    w.put_u64(s.stamp);
}

pub fn get_route_cache(r: &mut ByteReader) -> Result<RouteCacheState, MassfError> {
    let capacity = r.get_u64()?;
    // A shard is at least 24 bytes (two counts + stamp).
    let n = r.get_count(24)?;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        shards.push(get_shard(r)?);
    }
    Ok(RouteCacheState { capacity, shards })
}

fn get_shard(r: &mut ByteReader) -> Result<RouteCacheShardState, MassfError> {
    let n = r.get_count(17)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.get_u64()?;
        let stamp = r.get_u64()?;
        let path = if get_bool(r)? {
            Some(get_nodes(r)?)
        } else {
            None
        };
        entries.push(RouteCacheEntryState { key, stamp, path });
    }
    let qn = r.get_count(16)?;
    let mut queue = Vec::with_capacity(qn);
    for _ in 0..qn {
        let stamp = r.get_u64()?;
        let key = r.get_u64()?;
        queue.push((stamp, key));
    }
    let stamp = r.get_u64()?;
    Ok(RouteCacheShardState {
        entries,
        queue,
        stamp,
    })
}

fn put_fluid_flow_entry(w: &mut ByteWriter, f: &FluidFlowEntryState) {
    w.put_u64(f.flow.0);
    put_nodes(w, &f.path);
    w.put_u64(f.demand_bps);
    w.put_u64(f.rate_bps);
    w.put_u64(f.armed_rate_bps);
    put_u128(w, f.remaining_bns);
    put_time(w, f.updated);
    w.put_u32(f.epoch);
}

fn get_fluid_flow_entry(r: &mut ByteReader) -> Result<FluidFlowEntryState, MassfError> {
    Ok(FluidFlowEntryState {
        flow: FlowId(r.get_u64()?),
        path: get_nodes(r)?,
        demand_bps: r.get_u64()?,
        rate_bps: r.get_u64()?,
        armed_rate_bps: r.get_u64()?,
        remaining_bns: get_u128(r)?,
        updated: get_time(r)?,
        epoch: r.get_u32()?,
    })
}

fn put_fluid_world(w: &mut ByteWriter, s: &FluidWorldState) {
    w.put_count(s.flows.len());
    for f in &s.flows {
        put_fluid_flow_entry(w, f);
    }
    put_u64s(w, &s.packet_bps);
    put_u64s(w, &s.reported_bps);
}

fn get_fluid_world(r: &mut ByteReader) -> Result<FluidWorldState, MassfError> {
    // A fluid flow entry is at least 68 bytes (no path nodes).
    let n = r.get_count(68)?;
    let mut flows = Vec::with_capacity(n);
    for _ in 0..n {
        flows.push(get_fluid_flow_entry(r)?);
    }
    Ok(FluidWorldState {
        flows,
        packet_bps: get_u64s(r)?,
        reported_bps: get_u64s(r)?,
    })
}

fn put_fluid_stats(w: &mut ByteWriter, s: &FluidStats) {
    w.put_u64(s.started);
    w.put_u64(s.completed);
    w.put_u64(s.aborted);
    w.put_u64(s.rerouted);
    w.put_u64(s.unroutable);
    w.put_u64(s.rate_recomputes);
    w.put_u64(s.bottleneck_recomputes);
    w.put_u64(s.finish_arms);
    w.put_u64(s.cap_updates);
    w.put_u64(s.packet_load_updates);
}

fn get_fluid_stats(r: &mut ByteReader) -> Result<FluidStats, MassfError> {
    Ok(FluidStats {
        started: r.get_u64()?,
        completed: r.get_u64()?,
        aborted: r.get_u64()?,
        rerouted: r.get_u64()?,
        unroutable: r.get_u64()?,
        rate_recomputes: r.get_u64()?,
        bottleneck_recomputes: r.get_u64()?,
        finish_arms: r.get_u64()?,
        cap_updates: r.get_u64()?,
        packet_load_updates: r.get_u64()?,
    })
}

fn put_profile(w: &mut ByteWriter, p: &ProfileData) {
    put_u64s(w, &p.node_packets);
    put_u64s(w, &p.link_packets);
    w.put_u64(p.drops);
    w.put_u64(p.completed_flows);
    w.put_u64(p.completed_segments);
    w.put_u64(p.unroutable);
    w.put_u64(p.fault_drops);
    w.put_u64(p.aborted_flows);
    w.put_u64(p.fault_events);
    w.put_u64(p.route_cache.hits);
    w.put_u64(p.route_cache.misses);
    w.put_u64(p.route_cache.evictions);
    put_fluid_stats(w, &p.fluid);
}

fn get_profile(r: &mut ByteReader) -> Result<ProfileData, MassfError> {
    Ok(ProfileData {
        node_packets: get_u64s(r)?,
        link_packets: get_u64s(r)?,
        drops: r.get_u64()?,
        completed_flows: r.get_u64()?,
        completed_segments: r.get_u64()?,
        unroutable: r.get_u64()?,
        fault_drops: r.get_u64()?,
        aborted_flows: r.get_u64()?,
        fault_events: r.get_u64()?,
        route_cache: RouteCacheStats {
            hits: r.get_u64()?,
            misses: r.get_u64()?,
            evictions: r.get_u64()?,
        },
        fluid: get_fluid_stats(r)?,
    })
}

pub fn put_world_state(w: &mut ByteWriter, s: &WorldState) {
    put_u32s(w, &s.flow_counter);
    w.put_count(s.busy_until.len());
    for &t in &s.busy_until {
        put_time(w, t);
    }
    w.put_count(s.flows.len());
    for f in &s.flows {
        put_flow_entry(w, f);
    }
    w.put_count(s.receivers.len());
    for e in &s.receivers {
        put_receiver_entry(w, e);
    }
    put_route_cache(w, &s.route_cache);
    put_profile(w, &s.profile);
    w.put_u32(s.max_retries);
    put_fluid_world(w, &s.fluid);
    put_u64s(w, &s.fluid_seen_bps);
    w.put_count(s.fluid_est_start.len());
    for &t in &s.fluid_est_start {
        put_time(w, t);
    }
    put_u64s(w, &s.fluid_est_bytes);
    put_u64s(w, &s.fluid_est_reported);
}

pub fn get_world_state(r: &mut ByteReader) -> Result<WorldState, MassfError> {
    let flow_counter = get_u32s(r)?;
    let n = r.get_count(8)?;
    let mut busy_until = Vec::with_capacity(n);
    for _ in 0..n {
        busy_until.push(get_time(r)?);
    }
    // A flow entry is at least 96 bytes; receivers are exactly 24.
    let fn_ = r.get_count(96)?;
    let mut flows = Vec::with_capacity(fn_);
    for _ in 0..fn_ {
        flows.push(get_flow_entry(r)?);
    }
    let rn = r.get_count(24)?;
    let mut receivers = Vec::with_capacity(rn);
    for _ in 0..rn {
        receivers.push(get_receiver_entry(r)?);
    }
    let route_cache = get_route_cache(r)?;
    let profile = get_profile(r)?;
    let max_retries = r.get_u32()?;
    let fluid = get_fluid_world(r)?;
    let fluid_seen_bps = get_u64s(r)?;
    let en = r.get_count(8)?;
    let mut fluid_est_start = Vec::with_capacity(en);
    for _ in 0..en {
        fluid_est_start.push(get_time(r)?);
    }
    let fluid_est_bytes = get_u64s(r)?;
    let fluid_est_reported = get_u64s(r)?;
    Ok(WorldState {
        flow_counter,
        busy_until,
        flows,
        receivers,
        route_cache,
        profile,
        max_retries,
        fluid,
        fluid_seen_bps,
        fluid_est_start,
        fluid_est_bytes,
        fluid_est_reported,
    })
}

pub fn put_rebalance_state(w: &mut ByteWriter, s: &RebalanceSessionState) {
    let policy = &s.policy;
    let cfg = &policy.cfg;
    put_time(w, cfg.epoch);
    w.put_u64(cfg.threshold_permille);
    w.put_count(cfg.max_moves);
    w.put_u64(policy.load_weight);
    w.put_u64(policy.cut_weight);
    w.put_u32(s.partitions);
    put_u32s(w, &s.assignment);
    put_u64s(w, &s.epoch_loads);
    let counters = &s.counters;
    w.put_u64(counters.epochs);
    w.put_u64(counters.rebalances);
    w.put_u64(counters.migrations);
}

pub fn get_rebalance_state(r: &mut ByteReader) -> Result<RebalanceSessionState, MassfError> {
    let epoch = get_time(r)?;
    let threshold_permille = r.get_u64()?;
    // A scalar budget, not a collection length: get_count's
    // fits-in-remaining heuristic does not apply.
    let max_moves = usize::try_from(r.get_u64()?)
        .map_err(|_| r.corrupt("rebalance max_moves exceeds usize"))?;
    let load_weight = r.get_u64()?;
    let cut_weight = r.get_u64()?;
    let partitions = r.get_u32()?;
    let assignment = get_u32s(r)?;
    let epoch_loads = get_u64s(r)?;
    let epochs = r.get_u64()?;
    let rebalances = r.get_u64()?;
    let migrations = r.get_u64()?;
    Ok(RebalanceSessionState {
        policy: RebalancePolicy {
            cfg: RebalanceConfig {
                epoch,
                threshold_permille,
                max_moves,
            },
            load_weight,
            cut_weight,
        },
        partitions,
        assignment,
        epoch_loads,
        counters: RebalanceCounters {
            epochs,
            rebalances,
            migrations,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet() -> Packet {
        Packet {
            flow: FlowId::new(NodeId(3), 7),
            meta: 99,
            path: vec![NodeId(3), NodeId(1), NodeId(5)].into(),
            dst: NodeId(5),
            seq: 12,
            size_bytes: 1500,
            hop: 1,
            kind: PacketKind::Data,
        }
    }

    fn sample_events() -> Vec<NetEvent> {
        vec![
            NetEvent::Arrive(sample_packet()),
            NetEvent::RtoTimer {
                flow: FlowId::new(NodeId(3), 7),
                epoch: 4,
            },
            NetEvent::AppTimer { token: 17 },
            NetEvent::StartFlow {
                dst: NodeId(2),
                bytes: 500_000,
            },
            NetEvent::SendDatagram {
                dst: NodeId(4),
                bytes: 900,
                meta: 5,
            },
            NetEvent::Fault {
                kind: FaultKind::AsAdjacencyFail { as_a: 1, as_b: 2 },
            },
            NetEvent::Fault {
                kind: FaultKind::LinkDown(LinkId(6)),
            },
            NetEvent::FluidStart {
                src: NodeId(1),
                dst: NodeId(9),
                bytes: 10_000_000,
                peak_bps: 0,
            },
            NetEvent::FluidFinish {
                flow: FlowId::new(NodeId(0), 3),
                epoch: 2,
            },
            NetEvent::FluidFault {
                kind: FaultKind::RouterCrash(NodeId(4)),
            },
            NetEvent::FluidCapUpdate {
                slot: 13,
                fluid_bps: 125_000_000,
            },
            NetEvent::FluidPacketLoad {
                slot: 12,
                bps: 42_000,
            },
        ]
    }

    fn round_trip_event(ev: &NetEvent) -> NetEvent {
        let mut w = ByteWriter::new();
        put_net_event(&mut w, ev);
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf, "test");
        let out = get_net_event(&mut r).expect("decode");
        r.finish().expect("consumed");
        out
    }

    #[test]
    fn net_events_round_trip() {
        for ev in sample_events() {
            let back = round_trip_event(&ev);
            // NetEvent is not PartialEq (it holds an Arc); compare debug
            // renderings, which print every field.
            assert_eq!(format!("{back:?}"), format!("{ev:?}"));
        }
    }

    #[test]
    fn resume_state_round_trips() {
        let events = sample_events()
            .into_iter()
            .enumerate()
            .map(|(i, payload)| EventRecord {
                time: SimTime::from_ns(1_000 * i as u64),
                target: LpId(i as u32),
                tag: massf_engine::external_tag(i as u32),
                payload,
            })
            .collect::<Vec<_>>();
        let state = ResumeState {
            events,
            counters: vec![5, 0, 9],
        };
        let mut w = ByteWriter::new();
        put_resume_state(&mut w, &state);
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf, "engine");
        let back = get_resume_state(&mut r).expect("decode");
        r.finish().expect("consumed");
        assert_eq!(back.counters, state.counters);
        assert_eq!(format!("{:?}", back.events), format!("{:?}", state.events));
    }

    #[test]
    fn unknown_discriminants_are_rejected() {
        for bad in [vec![11u8], vec![200u8], vec![5u8, 77]] {
            let mut r = ByteReader::new(&bad, "engine");
            assert!(get_net_event(&mut r).is_err(), "{bad:?} must not decode");
        }
    }

    #[test]
    fn fluid_world_state_round_trips() {
        let state = FluidWorldState {
            flows: vec![
                FluidFlowEntryState {
                    flow: FlowId::new(NodeId(0), 0),
                    path: vec![NodeId(2), NodeId(0), NodeId(5)],
                    demand_bps: u64::MAX,
                    rate_bps: 125_000,
                    armed_rate_bps: 125_000,
                    remaining_bns: 1_000_000_000_000_000_000_000u128,
                    updated: SimTime::from_ms(25),
                    epoch: 3,
                },
                FluidFlowEntryState {
                    flow: FlowId::new(NodeId(0), 7),
                    path: vec![NodeId(1), NodeId(4)],
                    demand_bps: 10_000,
                    rate_bps: 0,
                    armed_rate_bps: 0,
                    remaining_bns: 42,
                    updated: SimTime::ZERO,
                    epoch: 0,
                },
            ],
            packet_bps: vec![0, 5_000, 0, 0],
            reported_bps: vec![u64::MAX, 125_000, u64::MAX, 0],
        };
        let mut w = ByteWriter::new();
        put_fluid_world(&mut w, &state);
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf, "fluid");
        let back = get_fluid_world(&mut r).expect("decode");
        r.finish().expect("consumed");
        assert_eq!(back, state);
    }

    #[test]
    fn u128_round_trips_both_halves() {
        for v in [0u128, 1, u64::MAX as u128, u128::MAX, 1u128 << 64] {
            let mut w = ByteWriter::new();
            put_u128(&mut w, v);
            let buf = w.into_inner();
            let mut r = ByteReader::new(&buf, "fluid");
            assert_eq!(get_u128(&mut r).expect("decode"), v);
            r.finish().expect("consumed");
        }
    }

    #[test]
    fn flag_bytes_must_be_binary() {
        let mut r = ByteReader::new(&[2], "world");
        assert!(get_bool(&mut r).is_err());
    }
}
