//! The on-disk snapshot container: versioned, per-section checksummed,
//! atomically written.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic      8 bytes  "MASSFSNP"
//! version    u32      FORMAT_VERSION
//! sections   u32      section count
//! per section:
//!   id       u32      section identifier (see SECTION_*)
//!   len      u64      payload length in bytes
//!   crc      u32      CRC-32 of the payload
//!   payload  len bytes
//! ```
//!
//! Robustness model: a snapshot file is untrusted input. Torn or
//! truncated writes, bit flips, and version skew are all detected here
//! — a bad magic/section header or CRC mismatch is
//! [`MassfError::SnapshotCorrupt`], an unknown version is
//! [`MassfError::SnapshotVersionMismatch`] — and never panic, never
//! over-allocate, never hand garbage to the decoders upstream.
//!
//! Atomicity: [`write_atomic`] writes to a deterministic temp name in
//! the same directory, fsyncs the file, renames over the target, and
//! fsyncs the directory, so a crash at any point leaves either the old
//! snapshot or the new one — a torn final file is impossible on a
//! POSIX filesystem, and even if the filesystem lies, the per-section
//! CRCs catch the tear at read time.

use crate::wire::Crc32;
use massf_topology::MassfError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"MASSFSNP";

/// Current snapshot format version. Bump on any wire-format change;
/// readers reject other versions with a structured error rather than
/// guessing.
pub const FORMAT_VERSION: u32 = 1;

/// Session metadata: fingerprint, virtual time, external-tag cursor.
pub const SECTION_META: u32 = 1;
/// Engine continuation: the `ResumeState` frontier.
pub const SECTION_ENGINE: u32 = 2;
/// Canonical netsim `WorldState`.
pub const SECTION_WORLD: u32 = 3;
/// Cumulative execution statistics (per-LP and total event counts).
pub const SECTION_STATS: u32 = 4;
/// Online-rebalancer state (policy, live assignment, partial-epoch
/// loads). Present only in snapshots of rebalancing sessions.
pub const SECTION_REBALANCE: u32 = 5;

/// Human-readable name of a section id, for error messages.
pub fn section_name(id: u32) -> &'static str {
    match id {
        SECTION_META => "meta",
        SECTION_ENGINE => "engine",
        SECTION_WORLD => "world",
        SECTION_STATS => "stats",
        SECTION_REBALANCE => "rebalance",
        _ => "unknown",
    }
}

/// One decoded (or to-be-encoded) snapshot section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    pub id: u32,
    pub payload: Vec<u8>,
}

fn header_corrupt(reason: impl Into<String>) -> MassfError {
    MassfError::SnapshotCorrupt {
        section: "header".into(),
        reason: reason.into(),
    }
}

/// Serialize sections into the container format.
pub fn encode_container(sections: &[Section]) -> Vec<u8> {
    let body: usize = sections.iter().map(|s| 16 + s.payload.len()).sum();
    let mut out = Vec::with_capacity(16 + body);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    // simlint: allow(cast-lossy) -- a snapshot holds a handful of sections
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for s in sections {
        out.extend_from_slice(&s.id.to_le_bytes());
        out.extend_from_slice(&(s.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&section_crc(s.id, s.payload.len() as u64, &s.payload).to_le_bytes());
        out.extend_from_slice(&s.payload);
    }
    out
}

/// The section checksum covers the header fields (id, length) as well
/// as the payload, so a bit flip anywhere in the section — not just its
/// body — is caught.
fn section_crc(id: u32, len: u64, payload: &[u8]) -> u32 {
    Crc32::new()
        .update(&id.to_le_bytes())
        .update(&len.to_le_bytes())
        .update(payload)
        .finish()
}

/// Parse and verify a container: magic, version, section bounds, and
/// every section's CRC.
pub fn decode_container(bytes: &[u8]) -> Result<Vec<Section>, MassfError> {
    let take = |pos: usize, n: usize| -> Result<&[u8], MassfError> {
        pos.checked_add(n)
            .filter(|&e| e <= bytes.len())
            .map(|e| &bytes[pos..e])
            .ok_or_else(|| header_corrupt(format!("file truncated at offset {pos}")))
    };
    if take(0, 8)? != MAGIC {
        return Err(header_corrupt("bad magic (not a massf snapshot)"));
    }
    let version = u32::from_le_bytes(take(8, 4)?.try_into().expect("len 4"));
    if version != FORMAT_VERSION {
        return Err(MassfError::SnapshotVersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let count = u32::from_le_bytes(take(12, 4)?.try_into().expect("len 4"));
    let mut pos = 16usize;
    let mut sections = Vec::new();
    for _ in 0..count {
        let id = u32::from_le_bytes(take(pos, 4)?.try_into().expect("len 4"));
        let len = u64::from_le_bytes(take(pos + 4, 8)?.try_into().expect("len 8"));
        let crc = u32::from_le_bytes(take(pos + 12, 4)?.try_into().expect("len 4"));
        pos += 16;
        let len = usize::try_from(len)
            .ok()
            .filter(|&l| l <= bytes.len() - pos)
            .ok_or_else(|| MassfError::SnapshotCorrupt {
                section: section_name(id).into(),
                reason: format!("section length {len} exceeds the file"),
            })?;
        let payload = take(pos, len)?;
        pos += len;
        if section_crc(id, payload.len() as u64, payload) != crc {
            return Err(MassfError::SnapshotCorrupt {
                section: section_name(id).into(),
                reason: "checksum mismatch (torn write or bit corruption)".into(),
            });
        }
        sections.push(Section {
            id,
            payload: payload.to_vec(),
        });
    }
    if pos != bytes.len() {
        return Err(header_corrupt(format!(
            "{} trailing bytes after the last section",
            bytes.len() - pos
        )));
    }
    Ok(sections)
}

/// Find one required section by id.
pub fn require_section(sections: &[Section], id: u32) -> Result<&Section, MassfError> {
    sections
        .iter()
        .find(|s| s.id == id)
        .ok_or_else(|| MassfError::SnapshotCorrupt {
            section: section_name(id).into(),
            reason: "required section missing".into(),
        })
}

fn io_err(path: &Path, e: std::io::Error) -> MassfError {
    MassfError::SnapshotIo {
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

/// Write `bytes` to `path` atomically: temp file in the same directory
/// (deterministic name: `<file>.tmp`), fsync, rename over the target,
/// fsync the directory. Readers never observe a torn file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), MassfError> {
    let mut tmp_name =
        path.file_name()
            .map(|n| n.to_owned())
            .ok_or_else(|| MassfError::SnapshotIo {
                path: path.display().to_string(),
                reason: "path has no file name".into(),
            })?;
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| io_err(&tmp, e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Durability of the rename itself; ignore filesystems that
        // refuse to open directories for sync.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read a whole snapshot file.
pub fn read_file(path: &Path) -> Result<Vec<u8>, MassfError> {
    let mut f = File::open(path).map_err(|e| io_err(path, e))?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf).map_err(|e| io_err(path, e))?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Section> {
        vec![
            Section {
                id: SECTION_META,
                payload: vec![1, 2, 3],
            },
            Section {
                id: SECTION_WORLD,
                payload: (0..=255).collect(),
            },
        ]
    }

    #[test]
    fn container_round_trips() {
        let sections = sample();
        let bytes = encode_container(&sections);
        assert_eq!(decode_container(&bytes).expect("valid"), sections);
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_container(&sample());
        for cut in 0..bytes.len() {
            let err = decode_container(&bytes[..cut]).expect_err("truncated file must fail");
            assert!(
                matches!(err, MassfError::SnapshotCorrupt { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode_container(&sample());
        let sections = sample();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[byte] ^= 1 << bit;
                // A flip must either be *detected* or decode to exactly
                // the original content (impossible for a single flip,
                // but stated this way the assertion is airtight).
                if let Ok(decoded) = decode_container(&evil) {
                    assert_eq!(
                        decoded, sections,
                        "byte {byte} bit {bit}: silent corruption"
                    );
                }
            }
        }
    }

    #[test]
    fn future_version_is_a_structured_mismatch() {
        let mut bytes = encode_container(&sample());
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        match decode_container(&bytes) {
            Err(MassfError::SnapshotVersionMismatch { found, expected }) => {
                assert_eq!(found, 99);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join("massf-snap-format-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("a.snap");
        write_atomic(&path, b"first").expect("write");
        assert_eq!(read_file(&path).expect("read"), b"first");
        write_atomic(&path, b"second").expect("overwrite");
        assert_eq!(read_file(&path).expect("read"), b"second");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_file(Path::new("/nonexistent/massf.snap")).expect_err("must fail");
        assert!(matches!(err, MassfError::SnapshotIo { .. }), "{err}");
    }
}
