//! Little-endian byte-level encoding primitives, CRC-32, and FNV-1a.
//!
//! The snapshot format is hand-rolled (the workspace is offline — no
//! serde-format crates) and deliberately boring: every scalar is
//! little-endian, every sequence is a `u64` count followed by its
//! elements, every optional a one-byte flag. [`ByteReader`] treats its
//! input as hostile: every read is bounds-checked and every failure is
//! a structured [`MassfError::SnapshotCorrupt`] naming the section —
//! truncated or bit-flipped input can never panic or over-allocate.

use massf_topology::MassfError;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Streaming CRC-32 (IEEE polynomial, table-driven): feed any number of
/// slices through [`Crc32::update`], read the checksum with
/// [`Crc32::finish`]. Lets the snapshot container checksum a section
/// header and its payload together without concatenating them.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    #[allow(clippy::new_without_default)] // a checksum accumulator has no meaningful default
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        for &b in data {
            self.state = (self.state >> 8) ^ CRC_TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
        self
    }

    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// CRC-32 checksum of a single slice.
pub fn crc32(data: &[u8]) -> u32 {
    Crc32::new().update(data).finish()
}

/// FNV-1a 64-bit hash — used for scenario fingerprints (a compact,
/// deterministic digest; not collision-critical, since a fingerprint
/// mismatch only refuses a restore it would be wrong to accept).
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Encode an `f64` by its IEEE-754 bit pattern (exact round-trip,
    /// NaN payloads included — restore-side validation decides what bit
    /// patterns are acceptable, not the codec).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Encode a sequence length.
    pub fn put_count(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked little-endian decoder over one snapshot section.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`; `section` names the snapshot section in
    /// every error this reader produces.
    pub fn new(buf: &'a [u8], section: &'a str) -> Self {
        ByteReader {
            buf,
            pos: 0,
            section,
        }
    }

    /// The structured error for a malformed read in this section.
    pub fn corrupt(&self, reason: impl Into<String>) -> MassfError {
        MassfError::SnapshotCorrupt {
            section: self.section.to_owned(),
            reason: reason.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MassfError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(self.corrupt(format!(
                "truncated: wanted {n} bytes at offset {}, section has {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    pub fn get_u8(&mut self) -> Result<u8, MassfError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> Result<u16, MassfError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    pub fn get_u32(&mut self) -> Result<u32, MassfError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub fn get_u64(&mut self) -> Result<u64, MassfError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub fn get_f64(&mut self) -> Result<f64, MassfError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Decode a sequence length whose elements occupy at least
    /// `min_elem_bytes` each. Rejecting counts the remaining bytes
    /// cannot possibly hold keeps a bit-flipped length from driving a
    /// multi-gigabyte `Vec` preallocation.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, MassfError> {
        let n = self.get_u64()?;
        let fits = usize::try_from(n)
            .ok()
            .and_then(|n| n.checked_mul(min_elem_bytes.max(1)))
            .is_some_and(|bytes| bytes <= self.remaining());
        if !fits {
            return Err(self.corrupt(format!(
                "sequence of {n} elements cannot fit in {} remaining bytes",
                self.remaining()
            )));
        }
        // simlint: allow(cast-lossy) -- fits-in-remaining check above bounds n well below usize::MAX
        Ok(n as usize)
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the section was consumed exactly; trailing bytes mean a
    /// corrupt or mismatched payload.
    pub fn finish(self) -> Result<(), MassfError> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming over split slices matches the single-shot digest.
        assert_eq!(
            Crc32::new().update(b"1234").update(b"56789").finish(),
            0xCBF4_3926
        );
    }

    #[test]
    fn fnv_matches_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn round_trip_all_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_f64(2.5);
        w.put_count(3);
        w.put_bytes(&[10, 11, 12]);
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf, "test");
        assert_eq!(r.get_u8().expect("u8"), 7);
        assert_eq!(r.get_u16().expect("u16"), 300);
        assert_eq!(r.get_u32().expect("u32"), 70_000);
        assert_eq!(r.get_u64().expect("u64"), 1 << 40);
        assert_eq!(r.get_f64().expect("f64"), 2.5);
        let n = r.get_count(1).expect("count");
        assert_eq!(n, 3);
        for want in [10, 11, 12] {
            assert_eq!(r.get_u8().expect("elem"), want);
        }
        r.finish().expect("fully consumed");
    }

    #[test]
    fn truncated_reads_are_structured_errors() {
        let mut r = ByteReader::new(&[1, 2], "engine");
        match r.get_u32() {
            Err(MassfError::SnapshotCorrupt { section, reason }) => {
                assert_eq!(section, "engine");
                assert!(reason.contains("truncated"), "{reason}");
            }
            other => panic!("expected SnapshotCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn hostile_counts_cannot_overallocate() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims ~2^64 elements
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf, "world");
        assert!(r.get_count(8).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = ByteReader::new(&[0], "meta");
        assert!(r.finish().is_err());
    }
}
