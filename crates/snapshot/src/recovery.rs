//! Crash recovery: resume from the newest *valid* checkpoint in a
//! directory.
//!
//! A long run checkpointing every epoch leaves a trail of `.snap`
//! files. After a crash, any of them may be damaged — a torn write the
//! atomic rename couldn't prevent (power loss mid-temp-file is fine,
//! but disks lie), a bit flip at rest, an operator copying a snapshot
//! from the wrong scenario. [`recover_latest`] scans the directory,
//! validates every candidate end to end (container CRCs, fingerprint,
//! frontier, world invariants), and resumes from the valid snapshot
//! with the greatest virtual time — collecting a per-file reason for
//! everything it skipped, so the operator learns *why* a checkpoint was
//! passed over instead of silently losing progress.

use crate::checkpoint::Session;
use massf_netsim::SharedNet;
use massf_topology::MassfError;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The outcome of a directory recovery scan.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The session resumed from the best valid snapshot.
    pub session: Session,
    /// The file the session was loaded from.
    pub path: PathBuf,
    /// Snapshots that were present but rejected, with the structured
    /// reason each one failed validation.
    pub skipped: Vec<(PathBuf, MassfError)>,
}

/// Scan `dir` for `*.snap` files and resume from the newest valid one
/// (greatest checkpoint virtual time; ties broken by file name, so the
/// choice is deterministic). Invalid snapshots — truncated, bit-flipped,
/// version-skewed, or from a different scenario — are skipped with
/// their reasons recorded, never trusted and never fatal as long as one
/// valid snapshot exists. With no valid snapshot the scan itself fails
/// with [`MassfError::SnapshotIo`] (the skip list is lost in that case;
/// run with logging at the call site if forensics matter).
pub fn recover_latest(
    dir: &Path,
    shared: &Arc<SharedNet>,
    expected_fingerprint: u64,
) -> Result<RecoveryReport, MassfError> {
    let entries = std::fs::read_dir(dir).map_err(|e| MassfError::SnapshotIo {
        path: dir.display().to_string(),
        reason: e.to_string(),
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    paths.sort();

    let mut best: Option<(Session, PathBuf)> = None;
    let mut skipped = Vec::new();
    for path in paths {
        match Session::load(&path, shared.clone(), expected_fingerprint) {
            Ok(session) => {
                let newer = best.as_ref().is_none_or(|(b, _)| session.now() > b.now());
                if newer {
                    best = Some((session, path));
                }
            }
            Err(e) => skipped.push((path, e)),
        }
    }
    match best {
        Some((session, path)) => Ok(RecoveryReport {
            session,
            path,
            skipped,
        }),
        None => Err(MassfError::SnapshotIo {
            path: dir.display().to_string(),
            reason: format!(
                "no valid snapshot among {} candidate(s): {}",
                skipped.len(),
                skipped
                    .iter()
                    .map(|(p, e)| format!("{}: {e}", p.display()))
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
        }),
    }
}
