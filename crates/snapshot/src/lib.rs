//! # massf-snapshot — deterministic checkpoint/restore and branching
//!
//! Serializes the complete deterministic state of a running simulation
//! — the engine's pending-event frontier, the netsim world (TCP
//! senders/receivers, per-link transmit horizons, flow counters, route
//! cache), and cumulative statistics — into a versioned, per-section
//! checksummed container written atomically (temp + fsync + rename).
//!
//! Three guarantees, each enforced by tests:
//!
//! 1. **Bit-identity.** Restoring a checkpoint and running on — on
//!    either executor, at any thread count, through serialized bytes —
//!    reproduces the straight-through run exactly: same event counts,
//!    same per-LP attribution, same traffic profile.
//! 2. **Hostility tolerance.** Snapshot files are untrusted input.
//!    Truncation, bit flips, version skew, and semantically hostile
//!    payloads (non-adjacent paths, unissued flow counters, NaN
//!    congestion windows…) are rejected with structured
//!    [`massf_topology::MassfError`] variants naming the failing
//!    section; nothing in the load path panics or over-allocates.
//! 3. **Cheap what-ifs.** [`Session::branch`] forks divergent
//!    continuations off one shared prefix, making N what-if runs cost
//!    `O(prefix + N·suffix)` instead of `O(N·(prefix+suffix))`.
//!
//! Crash recovery ([`recover_latest`]) resumes from the newest valid
//! checkpoint in a directory, skipping damaged files with recorded
//! reasons.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod codec;
pub mod format;
pub mod rebalance;
pub mod recovery;
pub mod wire;

pub use checkpoint::{scenario_fingerprint, ExecMode, Session};
pub use format::{
    decode_container, encode_container, read_file, write_atomic, Section, FORMAT_VERSION, MAGIC,
};
pub use rebalance::{
    rebalancing_fingerprint, RebalanceOutcome, RebalancePolicy, RebalanceSessionState,
};
pub use recovery::{recover_latest, RecoveryReport};
