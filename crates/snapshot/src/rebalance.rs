//! Online dynamic re-partitioning: deterministic LP migration that
//! keeps the mapping optimal while the sim runs.
//!
//! A rebalancing [`Session`] advances in *epochs* (absolute multiples
//! of the configured cadence from virtual time zero). Within an epoch
//! the parallel shards stay resident and are chained segment-to-segment
//! with no export/restore cost. At each epoch boundary the driver:
//!
//! 1. folds the epoch's per-LP event counts (a deterministic function
//!    of simulated state — never wall-clock barrier waits) into
//!    per-partition loads,
//! 2. tests `massf_engine::imbalance_permille` against the configured
//!    threshold, and
//! 3. if exceeded, asks `massf_partition::rebalance` (RNG-free,
//!    integer-only Kurve-style local moves over the topology graph with
//!    core's standard inverse-latency edge weights) for a bounded move
//!    list, then **migrates**: the resident shards are flushed through
//!    owner-filtered `WorldState` export + `merge_partitions`, the
//!    assignment is rewritten, and the next segment restores
//!    partition-subset shards under the new map. Pending events for a
//!    migrated LP travel in the session's [`ResumeState`] frontier; the
//!    engine routes them to the LP's new owner when the next segment
//!    starts. The barrier window is recomputed from the new cut's MLL.
//!
//! **Determinism.** Every input to steps 1–3 (event counts, topology,
//! assignment, policy) is identical on every host and thread count, so
//! the decision trajectory — and therefore the simulation output — is
//! bit-identical to a sequential run at any cadence, threshold, or
//! partition count (proptest-pinned in `tests/tests/rebalance.rs`).
//! Epoch boundaries being absolute means a checkpoint taken mid-epoch
//! (the partial epoch's loads are captured in the snapshot's rebalance
//! section) restores and replays the very same decisions.

use crate::checkpoint::Session;
use crate::wire::{fnv1a64, ByteWriter};
use massf_engine::{
    imbalance_permille, partition_loads, should_rebalance, try_run_parallel_resumable, LpId,
    RebalanceConfig, RebalanceCounters, ResumeState, SimTime,
};
use massf_netsim::{NetEvent, NetWorld, NoApp, ProfileData, SharedNet, WorldState};
use massf_partition::{apply_moves, rebalance, RebalanceParams, WeightedGraph};
use massf_topology::MassfError;
use std::sync::Arc;

/// Everything that parameterizes the online rebalancer: the engine-side
/// decision function plus the partition-side cost weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalancePolicy {
    /// Epoch cadence, trigger threshold, per-epoch migration budget.
    pub cfg: RebalanceConfig,
    /// Weight of the load-imbalance term in the move search.
    pub load_weight: u64,
    /// Weight of the edge-cut term in the move search.
    pub cut_weight: u64,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        let params = RebalanceParams::default();
        RebalancePolicy {
            cfg: RebalanceConfig::default(),
            load_weight: params.load_weight,
            cut_weight: params.cut_weight,
        }
    }
}

impl RebalancePolicy {
    /// Structural validation (configs arrive from CLI flags and
    /// snapshot files).
    pub fn validate(&self) -> Result<(), MassfError> {
        self.cfg.validate()
    }

    fn params(&self) -> RebalanceParams {
        RebalanceParams {
            max_moves: self.cfg.max_moves,
            load_weight: self.load_weight,
            cut_weight: self.cut_weight,
        }
    }
}

/// The rebalancer's live state, carried inside rebalancing sessions and
/// their checkpoints: without it a restored run could not replay the
/// same decision trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceSessionState {
    /// The (fingerprint-bound) policy.
    pub policy: RebalancePolicy,
    /// Partition count (fixed for the session; migration moves LPs
    /// between existing partitions, it never grows the set).
    pub partitions: u32,
    /// The live LP → partition map (the initial mapping plus every
    /// migration applied so far).
    pub assignment: Vec<u32>,
    /// Per-LP event counts accumulated inside the current — possibly
    /// partial — epoch; folded and reset at each boundary.
    pub epoch_loads: Vec<u64>,
    /// Cumulative activity.
    pub counters: RebalanceCounters,
}

impl RebalanceSessionState {
    /// Structural validation against `lp_count` (snapshot bytes are
    /// untrusted input).
    pub fn validate(&self, lp_count: usize) -> Result<(), MassfError> {
        self.policy.validate()?;
        if self.partitions == 0 {
            return Err(MassfError::InvalidConfig(
                "rebalance state has zero partitions".into(),
            ));
        }
        if self.assignment.len() != lp_count {
            return Err(MassfError::InvalidConfig(format!(
                "rebalance assignment covers {} LPs, network has {lp_count}",
                self.assignment.len()
            )));
        }
        if let Some(&p) = self.assignment.iter().find(|&&p| p >= self.partitions) {
            return Err(MassfError::InvalidConfig(format!(
                "rebalance assignment references partition {p} of {}",
                self.partitions
            )));
        }
        if self.epoch_loads.len() != lp_count {
            return Err(MassfError::InvalidConfig(format!(
                "rebalance epoch loads cover {} LPs, network has {lp_count}",
                self.epoch_loads.len()
            )));
        }
        Ok(())
    }
}

/// Fingerprint of a rebalancing scenario: the base
/// [`crate::scenario_fingerprint`] mixed with the policy and the
/// initial assignment. Rebalancing alters the *trajectory* of a session
/// (which assignment is live when), so a rebalancing snapshot must
/// never restore into a plain session or one with different knobs.
pub fn rebalancing_fingerprint(base: u64, policy: &RebalancePolicy, assignment: &[u32]) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u64(base);
    w.put_u64(policy.cfg.epoch.as_ns());
    w.put_u64(policy.cfg.threshold_permille);
    w.put_count(policy.cfg.max_moves);
    w.put_u64(policy.load_weight);
    w.put_u64(policy.cut_weight);
    w.put_count(assignment.len());
    for &p in assignment {
        w.put_u32(p);
    }
    fnv1a64(&w.into_inner())
}

/// What one [`Session::run_rebalancing`] call did, for reporting.
/// Everything here except `epochs`-independent sums is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceOutcome {
    /// Epoch boundaries evaluated during this call.
    pub epochs: u64,
    /// Migration rounds executed.
    pub rebalances: u64,
    /// LPs migrated.
    pub migrations: u64,
    /// Per completed epoch: `imbalance_permille` of the measured
    /// per-partition loads (pre-decision, i.e. what the static mapping
    /// delivered over that epoch).
    pub epoch_imbalance_permille: Vec<u64>,
    /// Σ over completed epochs of the busiest partition's load.
    pub max_load_sum: u64,
    /// Σ over completed epochs of all partitions' load (= events).
    pub total_load: u64,
    /// Σ per-segment critical-path event counts
    /// ([`massf_engine::ExecutionStats::critical_path_events`]).
    pub critical_path_events: u64,
    /// Σ windows that actually synchronized.
    pub windows_executed: u64,
    /// Σ barrier rounds performed.
    pub barrier_rounds: u64,
}

impl RebalanceOutcome {
    /// Aggregate max/mean load imbalance across all completed epochs,
    /// permille: `Σ max_p load · 1000 · k / Σ total load`. This is the
    /// quantity a barrier-synchronized cluster pays for — each epoch
    /// costs its busiest partition — and the headline number of the
    /// `rebalance_study` bench.
    pub fn aggregate_imbalance_permille(&self, partitions: usize) -> u64 {
        if self.total_load == 0 {
            return 1000;
        }
        (self.max_load_sum as u128 * 1000 * partitions as u128 / self.total_load as u128) as u64
    }
}

/// The move-search graph: topology vertices with unit weights and the
/// standard inverse-latency edge weights of `massf_core::weights`
/// (`round(64 / latency_ms)`, min 1) — low-latency links are expensive
/// to cut, both for routing locality and because the cut MLL bounds the
/// barrier window.
fn conflict_graph(shared: &SharedNet) -> WeightedGraph {
    let edges: Vec<(u32, u32, u64)> = shared
        .net
        .links
        .iter()
        .map(|l| {
            let w = (64.0 / l.latency_ms).round() as u64;
            (l.a.0, l.b.0, w.max(1))
        })
        .collect();
    WeightedGraph::from_edges(vec![1; shared.net.node_count()], &edges)
}

impl Session {
    /// A session at virtual time zero that rebalances online: it starts
    /// on `assignment` (LP → partition, e.g. an HPROF mapping) and
    /// migrates LPs whenever an epoch's measured load imbalance exceeds
    /// the policy threshold. The fingerprint binds the policy and the
    /// initial assignment on top of the base scenario.
    pub fn new_rebalancing(
        shared: Arc<SharedNet>,
        initial: Vec<(SimTime, LpId, NetEvent)>,
        route_cache_capacity: usize,
        max_retries: u32,
        policy: RebalancePolicy,
        assignment: Vec<u32>,
    ) -> Result<Session, MassfError> {
        policy.validate()?;
        let lp_count = shared.lp_count();
        if assignment.len() != lp_count {
            return Err(MassfError::InvalidConfig(format!(
                "initial assignment covers {} LPs, network has {lp_count}",
                assignment.len()
            )));
        }
        let partitions = assignment.iter().copied().max().map_or(1, |m| m + 1);
        let mut session = Session::new(shared, initial, route_cache_capacity, max_retries);
        session.fingerprint = rebalancing_fingerprint(session.fingerprint, &policy, &assignment);
        session.rebalance = Some(RebalanceSessionState {
            policy,
            partitions,
            assignment,
            epoch_loads: vec![0; lp_count],
            counters: RebalanceCounters::default(),
        });
        Ok(session)
    }

    /// The rebalancer's live state, if this is a rebalancing session.
    pub fn rebalance_state(&self) -> Option<&RebalanceSessionState> {
        self.rebalance.as_ref()
    }

    /// Advance a rebalancing session to virtual time `end`, evaluating
    /// the imbalance trigger at every epoch boundary crossed and
    /// migrating LPs when it fires. Like [`Session::run_until`],
    /// segmentation is invisible: stopping at any `end` (mid-epoch
    /// included) and continuing — directly or through snapshot bytes —
    /// reproduces the straight-through run bit for bit.
    pub fn run_rebalancing(&mut self, end: SimTime) -> Result<RebalanceOutcome, MassfError> {
        let Some(mut rb) = self.rebalance.take() else {
            return Err(MassfError::InvalidConfig(
                "session has no rebalance policy; use run_until".into(),
            ));
        };
        let result = self.run_rebalancing_inner(end, &mut rb);
        self.rebalance = Some(rb);
        result
    }

    fn run_rebalancing_inner(
        &mut self,
        end: SimTime,
        rb: &mut RebalanceSessionState,
    ) -> Result<RebalanceOutcome, MassfError> {
        if end < self.now {
            return Err(MassfError::InvalidConfig(format!(
                "cannot run backwards: session is at {} ns, requested end {} ns",
                self.now.as_ns(),
                end.as_ns()
            )));
        }
        let lp_count = self.shared.lp_count();
        let partitions = rb.partitions as usize;
        let graph = conflict_graph(&self.shared);
        let params = rb.policy.params();
        let mut outcome = RebalanceOutcome::default();
        // Shards stay resident across epoch boundaries; they are flushed
        // into the canonical WorldState only when a migration rewrites
        // the assignment (export under the old map, merge, and let the
        // next segment restore under the new one) or when this call
        // returns. `prefix_profile` tracks the cumulative profile at the
        // moment the resident shards were last restored, since restored
        // worlds start with zeroed profile counters.
        let mut shards: Option<Vec<NetWorld<NoApp>>> = None;
        let mut prefix_profile = self.world.profile.clone();
        let mut window = self.shared.safe_parallel_window(&rb.assignment);

        while self.now < end {
            let boundary = rb.policy.cfg.next_boundary(self.now);
            let seg_end = boundary.min(end);
            // End time is exclusive in the executors, so a frontier whose
            // head is at or past seg_end executes nothing: skip the
            // engine round-trip entirely (zero loads leave every decision
            // unchanged, so the fast path cannot alter the trajectory).
            let has_events = self.resume.next_event_time().is_some_and(|t| t < seg_end);
            if has_events {
                let current = match shards.take() {
                    Some(s) => s,
                    None => (0..rb.partitions)
                        .map(|p| {
                            NetWorld::restore_partition(
                                self.shared.clone(),
                                NoApp,
                                &self.world,
                                &rb.assignment,
                                p,
                            )
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                let resume = std::mem::replace(&mut self.resume, ResumeState::fresh(lp_count));
                let (next_shards, stats, frontier) = try_run_parallel_resumable(
                    current,
                    lp_count,
                    &rb.assignment,
                    resume,
                    seg_end,
                    window,
                )?;
                shards = Some(next_shards);
                self.resume = frontier;
                self.total_events += stats.total_events;
                for ((acc, epoch), n) in self
                    .lp_events
                    .iter_mut()
                    .zip(rb.epoch_loads.iter_mut())
                    .zip(&stats.lp_events)
                {
                    *acc += n;
                    *epoch += n;
                }
                outcome.critical_path_events += stats.critical_path_events();
                outcome.windows_executed += stats.windows_executed;
                outcome.barrier_rounds += stats.barrier_rounds;
            }
            self.now = seg_end;

            if seg_end == boundary {
                // Epoch complete: evaluate the deterministic load signal.
                let loads = partition_loads(&rb.epoch_loads, &rb.assignment, partitions);
                rb.counters.epochs += 1;
                outcome.epochs += 1;
                outcome
                    .epoch_imbalance_permille
                    .push(imbalance_permille(&loads));
                outcome.max_load_sum += loads.iter().copied().max().unwrap_or(0);
                outcome.total_load += loads.iter().sum::<u64>();
                if should_rebalance(&rb.policy.cfg, &loads) {
                    let moves =
                        rebalance(&graph, partitions, &rb.assignment, &rb.epoch_loads, &params);
                    if !moves.is_empty() {
                        // Migrate. Flushing under the *old* assignment and
                        // restoring under the new one is the owner-filtered
                        // handoff: each LP's world state moves to its new
                        // shard, and the engine re-routes the frontier's
                        // pending events by assignment when the next
                        // segment starts.
                        if let Some(s) = shards.take() {
                            self.flush_shards(s, &rb.assignment, &mut prefix_profile)?;
                        }
                        apply_moves(&mut rb.assignment, &moves);
                        window = self.shared.safe_parallel_window(&rb.assignment);
                        rb.counters.rebalances += 1;
                        rb.counters.migrations += moves.len() as u64;
                        outcome.rebalances += 1;
                        outcome.migrations += moves.len() as u64;
                    }
                }
                rb.epoch_loads.fill(0);
            }
        }

        if let Some(s) = shards.take() {
            self.flush_shards(s, &rb.assignment, &mut prefix_profile)?;
        }
        Ok(outcome)
    }

    /// Export resident shards and merge them (under the assignment they
    /// were restored with) into the session's canonical world state,
    /// folding the pre-restore profile prefix back in.
    fn flush_shards(
        &mut self,
        shards: Vec<NetWorld<NoApp>>,
        assignment: &[u32],
        prefix_profile: &mut ProfileData,
    ) -> Result<(), MassfError> {
        let parts: Vec<WorldState> = shards.iter().map(NetWorld::export_state).collect();
        let mut world = WorldState::merge_partitions(&parts, assignment)?;
        world.profile.merge(prefix_profile);
        self.world = world;
        *prefix_profile = self.world.profile.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_validation_delegates_to_config() {
        assert!(RebalancePolicy::default().validate().is_ok());
        let bad = RebalancePolicy {
            cfg: RebalanceConfig {
                epoch: SimTime::ZERO,
                ..RebalanceConfig::default()
            },
            ..RebalancePolicy::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn session_state_validation_rejects_shape_mismatches() {
        let good = RebalanceSessionState {
            policy: RebalancePolicy::default(),
            partitions: 2,
            assignment: vec![0, 1, 0],
            epoch_loads: vec![0; 3],
            counters: RebalanceCounters::default(),
        };
        assert!(good.validate(3).is_ok());
        assert!(good.validate(4).is_err());
        let mut bad = good.clone();
        bad.partitions = 0;
        assert!(bad.validate(3).is_err());
        let mut bad = good.clone();
        bad.assignment[1] = 2; // >= partitions
        assert!(bad.validate(3).is_err());
        let mut bad = good.clone();
        bad.epoch_loads.pop();
        assert!(bad.validate(3).is_err());
    }

    #[test]
    fn fingerprint_binds_policy_and_assignment() {
        let policy = RebalancePolicy::default();
        let base = 0x1234_5678_9abc_def0;
        let fp = rebalancing_fingerprint(base, &policy, &[0, 1, 0]);
        assert_ne!(fp, base);
        assert_ne!(fp, rebalancing_fingerprint(base, &policy, &[0, 1, 1]));
        let other = RebalancePolicy {
            cut_weight: policy.cut_weight + 1,
            ..policy
        };
        assert_ne!(fp, rebalancing_fingerprint(base, &other, &[0, 1, 0]));
        assert_eq!(fp, rebalancing_fingerprint(base, &policy, &[0, 1, 0]));
    }

    #[test]
    fn aggregate_imbalance_is_sum_ratio() {
        let o = RebalanceOutcome {
            max_load_sum: 60,
            total_load: 80,
            ..RebalanceOutcome::default()
        };
        assert_eq!(o.aggregate_imbalance_permille(2), 1500);
        assert_eq!(
            RebalanceOutcome::default().aggregate_imbalance_permille(4),
            1000
        );
    }
}
