//! Checkpoint sessions: deterministic pause/resume and what-if
//! branching over the netsim world.
//!
//! A [`Session`] owns the two halves of a paused simulation — the
//! engine's pending-event frontier ([`ResumeState`]) and the canonical
//! netsim [`WorldState`] — plus the bookkeeping that glues segments
//! together (virtual time reached, the external-tag cursor for branch
//! injections, cumulative statistics). Because both halves round-trip
//! exactly and the engine orders events by `(time, tag)`, running a
//! session in segments — saving and restoring between them, switching
//! between sequential and parallel execution at any boundary — is
//! bit-identical to one straight-through run.
//!
//! Branching ([`Session::branch`]) forks a divergent continuation off a
//! shared prefix: N what-if runs over a `T`-long prefix and `S`-long
//! suffixes cost `O(T + N·S)` instead of `O(N·(T+S))` — the speedup the
//! `checkpoint_study` bench quantifies.
//!
//! Snapshots are bound to their scenario by a fingerprint
//! ([`scenario_fingerprint`]) over the topology, fault script, initial
//! events, and tuning knobs; restoring a snapshot against a different
//! scenario is refused up front instead of silently diverging.

use crate::codec;
use crate::format::{
    self, Section, SECTION_ENGINE, SECTION_META, SECTION_REBALANCE, SECTION_STATS, SECTION_WORLD,
};
use crate::wire::{fnv1a64, ByteReader, ByteWriter};
use massf_engine::{
    external_tag, run_sequential_resumable, seed_events, try_run_parallel_resumable, EventRecord,
    LpId, ResumeState, SimTime, EXTERNAL_SOURCE,
};
use massf_netsim::{
    validate_net_event, NetEvent, NetWorld, NoApp, ProfileData, SharedNet, WorldState,
};
use massf_topology::MassfError;
use std::path::Path;
use std::sync::Arc;

/// Which executor a segment runs on. Determinism does not depend on the
/// choice — segments may switch modes freely at any checkpoint.
#[derive(Debug, Clone)]
pub enum ExecMode {
    /// The single-threaded reference executor.
    Sequential,
    /// The conservative parallel executor: one thread per partition of
    /// `assignment`, barrier-synchronized every `window`.
    Parallel {
        /// Node → partition map, one entry per LP.
        assignment: Vec<u32>,
        /// Barrier window; must not exceed the cut's minimum
        /// cross-partition link latency.
        window: SimTime,
    },
}

/// Deterministic digest binding a snapshot to its scenario: topology
/// shape and link constants, fault script, initial events, route-cache
/// capacity, and TCP retry budget. Two runs with equal fingerprints and
/// equal snapshots are continuations of the same simulation; a loader
/// seeing a different fingerprint refuses the restore.
pub fn scenario_fingerprint(
    shared: &SharedNet,
    initial: &[(SimTime, LpId, NetEvent)],
    route_cache_capacity: usize,
    max_retries: u32,
) -> u64 {
    let mut w = ByteWriter::new();
    w.put_count(shared.net.node_count());
    w.put_count(shared.net.links.len());
    for link in &shared.net.links {
        w.put_u32(link.a.0);
        w.put_u32(link.b.0);
        w.put_u64(link.bandwidth_bps.to_bits());
        w.put_u64(link.latency_ms.to_bits());
        w.put_u8(u8::from(link.inter_as));
    }
    match &shared.faults {
        None => w.put_count(0),
        Some(f) => {
            let events = f.script().events();
            w.put_count(events.len());
            for e in events {
                w.put_u64(e.at.as_ns());
                codec::put_fault_kind(&mut w, e.kind);
            }
        }
    }
    w.put_count(initial.len());
    for (at, lp, ev) in initial {
        w.put_u64(at.as_ns());
        w.put_u32(lp.0);
        codec::put_net_event(&mut w, ev);
    }
    w.put_count(route_cache_capacity);
    w.put_u32(max_retries);
    fnv1a64(&w.into_inner())
}

/// A checkpointable simulation: world + frontier + segment bookkeeping.
pub struct Session {
    pub(crate) shared: Arc<SharedNet>,
    pub(crate) fingerprint: u64,
    /// Virtual time the session has executed up to.
    pub(crate) now: SimTime,
    /// Next tag position for externally injected (branch-suffix) events;
    /// starts after the initial events so injected tags never collide.
    pub(crate) next_external: u32,
    pub(crate) resume: ResumeState<NetEvent>,
    pub(crate) world: WorldState,
    pub(crate) total_events: u64,
    pub(crate) lp_events: Vec<u64>,
    /// Online-rebalancer state; `Some` iff the session was created with
    /// [`Session::new_rebalancing`]. Such sessions advance through
    /// [`Session::run_rebalancing`] only.
    pub(crate) rebalance: Option<crate::rebalance::RebalanceSessionState>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("fingerprint", &format_args!("{:#018x}", self.fingerprint))
            .field("now_ns", &self.now.as_ns())
            .field("next_external", &self.next_external)
            .field("frontier_events", &self.resume.events.len())
            .field("live_flows", &self.world.flows.len())
            .field("total_events", &self.total_events)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// A session at virtual time zero, seeded with `initial` events
    /// (pass `NetSimBuilder::initial_events()` to match a builder-driven
    /// run exactly — that list already includes scripted fault events).
    pub fn new(
        shared: Arc<SharedNet>,
        initial: Vec<(SimTime, LpId, NetEvent)>,
        route_cache_capacity: usize,
        max_retries: u32,
    ) -> Self {
        let lp_count = shared.lp_count();
        let fingerprint =
            scenario_fingerprint(&shared, &initial, route_cache_capacity, max_retries);
        // simlint: allow(cast-lossy) -- 2^32 initial events is far past any supported scale
        let next_external = initial.len() as u32;
        let mut events = seed_events(initial);
        // seed_events returns injection order; the frontier contract is
        // (time, tag) order. External tags are positional, so the sort
        // is deterministic.
        events.sort_unstable();
        let world = NetWorld::with_config(shared.clone(), NoApp, route_cache_capacity, max_retries)
            .export_state();
        Session {
            shared,
            fingerprint,
            now: SimTime::ZERO,
            next_external,
            resume: ResumeState {
                events,
                counters: vec![0; lp_count],
            },
            world,
            total_events: 0,
            lp_events: vec![0; lp_count],
            rebalance: None,
        }
    }

    /// Advance the session to virtual time `end` on the chosen
    /// executor. Segment boundaries and executor switches are
    /// invisible: any segmentation reproduces the straight-through run
    /// bit for bit.
    pub fn run_until(&mut self, end: SimTime, mode: &ExecMode) -> Result<(), MassfError> {
        if self.rebalance.is_some() {
            return Err(MassfError::InvalidConfig(
                "rebalancing sessions advance via run_rebalancing, not run_until \
                 (mixing executors would skip epoch-load accounting and diverge \
                 from the recorded decision trajectory)"
                    .into(),
            ));
        }
        if end < self.now {
            return Err(MassfError::InvalidConfig(format!(
                "cannot run backwards: session is at {} ns, requested end {} ns",
                self.now.as_ns(),
                end.as_ns()
            )));
        }
        let lp_count = self.shared.lp_count();
        let resume = std::mem::replace(&mut self.resume, ResumeState::fresh(lp_count));
        let prefix_profile = self.world.profile.clone();
        let (stats, frontier, mut world) = match mode {
            ExecMode::Sequential => {
                let mut w = NetWorld::restore(self.shared.clone(), NoApp, &self.world)?;
                let (stats, frontier) = run_sequential_resumable(&mut w, lp_count, resume, end)?;
                (stats, frontier, w.export_state())
            }
            ExecMode::Parallel { assignment, window } => {
                if *window == SimTime::ZERO {
                    return Err(MassfError::InvalidConfig(
                        "parallel execution needs a nonzero barrier window".into(),
                    ));
                }
                let partitions = assignment.iter().copied().max().map_or(1, |m| m + 1);
                let shards = (0..partitions)
                    .map(|p| {
                        NetWorld::restore_partition(
                            self.shared.clone(),
                            NoApp,
                            &self.world,
                            assignment,
                            p,
                        )
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let (shards, stats, frontier) =
                    try_run_parallel_resumable(shards, lp_count, assignment, resume, end, *window)?;
                let parts: Vec<WorldState> = shards.iter().map(NetWorld::export_state).collect();
                (
                    stats,
                    frontier,
                    WorldState::merge_partitions(&parts, assignment)?,
                )
            }
        };
        // Restored worlds start with zeroed profiles; fold the prefix
        // counters back in so the session's profile stays cumulative.
        world.profile.merge(&prefix_profile);
        self.world = world;
        self.resume = frontier;
        self.now = end;
        self.total_events += stats.total_events;
        for (acc, n) in self.lp_events.iter_mut().zip(&stats.lp_events) {
            *acc += n;
        }
        Ok(())
    }

    /// Serialize the session into the versioned, checksummed snapshot
    /// container.
    pub fn encode(&self) -> Vec<u8> {
        let mut meta = ByteWriter::new();
        meta.put_u64(self.fingerprint);
        meta.put_u64(self.now.as_ns());
        meta.put_u32(self.next_external);
        let mut engine = ByteWriter::new();
        codec::put_resume_state(&mut engine, &self.resume);
        let mut world = ByteWriter::new();
        codec::put_world_state(&mut world, &self.world);
        let mut stats = ByteWriter::new();
        stats.put_u64(self.total_events);
        stats.put_count(self.lp_events.len());
        for &n in &self.lp_events {
            stats.put_u64(n);
        }
        let mut sections = vec![
            Section {
                id: SECTION_META,
                payload: meta.into_inner(),
            },
            Section {
                id: SECTION_ENGINE,
                payload: engine.into_inner(),
            },
            Section {
                id: SECTION_WORLD,
                payload: world.into_inner(),
            },
            Section {
                id: SECTION_STATS,
                payload: stats.into_inner(),
            },
        ];
        if let Some(rb) = &self.rebalance {
            let mut w = ByteWriter::new();
            codec::put_rebalance_state(&mut w, rb);
            sections.push(Section {
                id: SECTION_REBALANCE,
                payload: w.into_inner(),
            });
        }
        format::encode_container(&sections)
    }

    /// Write the session atomically to `path` (temp + fsync + rename; a
    /// crash mid-save never leaves a torn file behind).
    pub fn save(&self, path: &Path) -> Result<(), MassfError> {
        format::write_atomic(path, &self.encode())
    }

    /// Reconstruct a session from snapshot bytes. The bytes are
    /// untrusted: container framing, section checksums, frontier order,
    /// event sanity (paths must exist in the topology, hops in range),
    /// and world invariants are all verified here — corruption yields a
    /// structured error naming the failing section, never a panic. A
    /// fingerprint other than `expected_fingerprint` (compute it with
    /// [`scenario_fingerprint`] from the scenario you are restoring
    /// into) is refused as [`MassfError::InvalidConfig`].
    pub fn decode(
        shared: Arc<SharedNet>,
        expected_fingerprint: u64,
        bytes: &[u8],
    ) -> Result<Self, MassfError> {
        let lp_count = shared.lp_count();
        let sections = format::decode_container(bytes)?;

        let meta = format::require_section(&sections, SECTION_META)?;
        let mut r = ByteReader::new(&meta.payload, "meta");
        let fingerprint = r.get_u64()?;
        let now = SimTime::from_ns(r.get_u64()?);
        let next_external = r.get_u32()?;
        r.finish()?;
        if fingerprint != expected_fingerprint {
            return Err(MassfError::InvalidConfig(format!(
                "snapshot fingerprint {fingerprint:#018x} does not match scenario \
                 {expected_fingerprint:#018x}: wrong topology, script, traffic, or tuning"
            )));
        }

        let engine = format::require_section(&sections, SECTION_ENGINE)?;
        let mut r = ByteReader::new(&engine.payload, "engine");
        let resume = codec::get_resume_state(&mut r)?;
        r.finish()?;
        let corrupt = |section: &str, reason: String| MassfError::SnapshotCorrupt {
            section: section.to_owned(),
            reason,
        };
        resume
            .validate(lp_count)
            .map_err(|e| corrupt("engine", e.to_string()))?;
        for ev in &resume.events {
            if ev.time < now {
                return Err(corrupt(
                    "engine",
                    format!(
                        "frontier event at {} ns predates the checkpoint time {} ns",
                        ev.time.as_ns(),
                        now.as_ns()
                    ),
                ));
            }
            let source = (ev.tag >> 32) as u32;
            // simlint: allow(cast-lossy) -- low half of the tag is the counter by construction
            let counter = (ev.tag & 0xFFFF_FFFF) as u32;
            if source == EXTERNAL_SOURCE && counter >= next_external {
                return Err(corrupt(
                    "engine",
                    format!(
                        "frontier event claims external position {counter}, \
                         only {next_external} were issued"
                    ),
                ));
            }
            validate_net_event(&shared, ev.target, &ev.payload)?;
        }

        let world_section = format::require_section(&sections, SECTION_WORLD)?;
        let mut r = ByteReader::new(&world_section.payload, "world");
        let world = codec::get_world_state(&mut r)?;
        r.finish()?;
        // Dry-run restore: surface hostile world state at load time
        // rather than at first use.
        NetWorld::restore(shared.clone(), NoApp, &world)?;

        let stats = format::require_section(&sections, SECTION_STATS)?;
        let mut r = ByteReader::new(&stats.payload, "stats");
        let total_events = r.get_u64()?;
        let n = r.get_count(8)?;
        let mut lp_events = Vec::with_capacity(n);
        for _ in 0..n {
            lp_events.push(r.get_u64()?);
        }
        r.finish()?;
        if lp_events.len() != lp_count {
            return Err(corrupt(
                "stats",
                format!(
                    "per-LP counters cover {} LPs, network has {lp_count}",
                    lp_events.len()
                ),
            ));
        }

        let rebalance = match sections.iter().find(|s| s.id == SECTION_REBALANCE) {
            None => None,
            Some(section) => {
                let mut r = ByteReader::new(&section.payload, "rebalance");
                let rb = codec::get_rebalance_state(&mut r)?;
                r.finish()?;
                rb.validate(lp_count)
                    .map_err(|e| corrupt("rebalance", e.to_string()))?;
                Some(rb)
            }
        };

        Ok(Session {
            shared,
            fingerprint,
            now,
            next_external,
            resume,
            world,
            total_events,
            lp_events,
            rebalance,
        })
    }

    /// [`Session::decode`] from a file.
    pub fn load(
        path: &Path,
        shared: Arc<SharedNet>,
        expected_fingerprint: u64,
    ) -> Result<Self, MassfError> {
        Self::decode(shared, expected_fingerprint, &format::read_file(path)?)
    }

    /// Fork a what-if continuation: same prefix state, divergent
    /// future. `shared` is the branch's network handle — pass a clone of
    /// the session's own to replay the original timeline, or a handle
    /// built over the *same topology* with an extended fault script to
    /// explore one (the added faults must also appear in `suffix` as
    /// [`NetEvent::Fault`] events, mirroring what
    /// `NetSimBuilder::initial_events` does for scripted faults — only
    /// script entries at or after the checkpoint time may differ from
    /// the session's own script, or the shared prefix would diverge).
    /// `suffix` events are injected at times at or after the checkpoint
    /// and tagged after every already-issued external event, so every
    /// branch orders its inherited frontier identically.
    pub fn branch(
        &self,
        shared: Arc<SharedNet>,
        suffix: Vec<(SimTime, LpId, NetEvent)>,
    ) -> Result<Session, MassfError> {
        if shared.net.node_count() != self.shared.net.node_count()
            || shared.net.links.len() != self.shared.net.links.len()
        {
            return Err(MassfError::InvalidConfig(format!(
                "branch network has {} nodes / {} links, session has {} / {}",
                shared.net.node_count(),
                shared.net.links.len(),
                self.shared.net.node_count(),
                self.shared.net.links.len()
            )));
        }
        let mut events = self.resume.events.clone();
        let mut next_external = self.next_external;
        let mut suffix_digest = ByteWriter::new();
        for (at, lp, ev) in suffix {
            if at < self.now {
                return Err(MassfError::InvalidConfig(format!(
                    "branch event at {} ns predates the checkpoint time {} ns",
                    at.as_ns(),
                    self.now.as_ns()
                )));
            }
            validate_net_event(&shared, lp, &ev)?;
            suffix_digest.put_u64(at.as_ns());
            suffix_digest.put_u32(lp.0);
            codec::put_net_event(&mut suffix_digest, &ev);
            events.push(EventRecord {
                time: at,
                target: lp,
                tag: external_tag(next_external),
                payload: ev,
            });
            next_external += 1;
        }
        events.sort_unstable();
        // The branch is a different scenario; derive a fingerprint from
        // the base plus everything that diverges (suffix + script).
        let mut fp = ByteWriter::new();
        fp.put_u64(self.fingerprint);
        fp.put_bytes(&suffix_digest.into_inner());
        match &shared.faults {
            None => fp.put_count(0),
            Some(f) => {
                let script = f.script().events();
                fp.put_count(script.len());
                for e in script {
                    fp.put_u64(e.at.as_ns());
                    codec::put_fault_kind(&mut fp, e.kind);
                }
            }
        }
        Ok(Session {
            shared,
            fingerprint: fnv1a64(&fp.into_inner()),
            now: self.now,
            next_external,
            resume: ResumeState {
                events,
                counters: self.resume.counters.clone(),
            },
            world: self.world.clone(),
            total_events: self.total_events,
            lp_events: self.lp_events.clone(),
            // A branch of a rebalancing session keeps rebalancing: the
            // live assignment and partial-epoch loads carry over, so the
            // branch's decision trajectory matches the trunk's up to the
            // fork and diverges only with the injected suffix.
            rebalance: self.rebalance.clone(),
        })
    }

    /// Virtual time the session has executed up to.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The scenario fingerprint this session's snapshots carry.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The shared network handle the session runs over.
    pub fn shared(&self) -> Arc<SharedNet> {
        self.shared.clone()
    }

    /// Cumulative traffic profile (prefix included).
    pub fn profile(&self) -> &ProfileData {
        &self.world.profile
    }

    /// The canonical world state at the current checkpoint.
    pub fn world_state(&self) -> &WorldState {
        &self.world
    }

    /// The pending-event frontier at the current checkpoint.
    pub fn frontier(&self) -> &ResumeState<NetEvent> {
        &self.resume
    }

    /// Events executed across all segments so far.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Per-LP event counts across all segments so far.
    pub fn lp_events(&self) -> &[u64] {
        &self.lp_events
    }
}
