//! Experiment harness shared by the figure-regeneration binaries
//! (`src/bin/fig*.rs`) and Criterion benches.
//!
//! Every figure of the paper's evaluation (3, 5–13) has a binary that
//! regenerates it; see DESIGN.md's experiment index. Binaries accept:
//!
//! ```text
//! --scale tiny|small|medium|paper   (default: small)
//! --engines N                       (default: 90, as in the paper)
//! --seed S                          (default: 2004)
//! --threads T                       (default: MASSF_THREADS env, else
//!                                    all available cores)
//! ```
//!
//! Absolute numbers come from the trace-driven cluster model (DESIGN.md
//! substitution #1); the figure *shapes* — who wins, by roughly what
//! factor — are the reproduction target.

// The `alloc-count` feature swaps the global allocator for a counting
// wrapper (see `alloccount`), which requires the one `unsafe impl` in
// the workspace; every other build of this crate keeps the blanket ban.
#![cfg_attr(not(feature = "alloc-count"), forbid(unsafe_code))]

use massf_core::prelude::*;
use std::collections::HashMap;

#[cfg(feature = "alloc-count")]
pub mod alloccount;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    pub scale: Scale,
    /// Engine count; `None` derives it from the scale so that the
    /// routers-per-engine ratio (and hence per-engine event density,
    /// which sets the compute : synchronization balance) stays close to
    /// the paper's 20,000 routers / 90 engines ≈ 220.
    pub engines_override: Option<usize>,
    pub seed: u64,
    /// Number of topology seeds to run and average over.
    pub repeats: usize,
    /// Host worker threads for the parallel sweep / routing / suite
    /// phases; `None` falls back to `MASSF_THREADS`, then to all
    /// available cores (see `massf_parutil::current_threads`).
    pub threads: Option<usize>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: Scale::Small,
            engines_override: None,
            seed: 2004,
            repeats: 1,
            threads: None,
        }
    }
}

/// Default engine count per scale (≈ paper's router:engine ratio).
pub fn default_engines(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 4,
        Scale::Small => 8,
        Scale::Medium => 24,
        Scale::Paper => 90,
    }
}

/// Usage text shared by every figure binary, printed (with the concrete
/// error) on invalid arguments before exiting with status 2.
pub const USAGE: &str = "\
usage: <figure-binary> [options]
  --scale tiny|small|medium|paper   problem size (default: small)
  --engines N                       simulated engine count (default: per scale)
  --seed S                          topology seed (default: 2004)
  --repeats R                       topology seeds to average over (default: 1)
  --threads T                       host worker threads, T >= 1
                                    (default: MASSF_THREADS env, else all cores)";

fn flag_value(iter: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    iter.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn flag_number(v: &str, flag: &str) -> Result<usize, String> {
    v.parse()
        .map_err(|_| format!("{flag} must be a number, got {v:?}"))
}

impl HarnessOptions {
    /// Parse `std::env::args()`-style arguments (ignores argv[0]),
    /// rejecting anything unrecognized.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<HarnessOptions, String> {
        let (opts, rest) = Self::try_parse_partial(args)?;
        if let Some(first) = rest.first() {
            return Err(format!(
                "unknown argument {first:?} \
                 (expected --scale/--engines/--seed/--repeats/--threads)"
            ));
        }
        Ok(opts)
    }

    /// Like [`HarnessOptions::try_parse`], but hands unrecognized
    /// arguments back to the caller, in order — for binaries that layer
    /// extra flags on top of the shared harness set.
    pub fn try_parse_partial(
        args: impl IntoIterator<Item = String>,
    ) -> Result<(HarnessOptions, Vec<String>), String> {
        let mut opts = HarnessOptions::default();
        let mut rest = Vec::new();
        let mut iter = args.into_iter().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = flag_value(&mut iter, "--scale")?;
                    opts.scale = match v.as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "medium" => Scale::Medium,
                        "paper" => Scale::Paper,
                        other => {
                            return Err(format!(
                                "unknown scale {other:?} (expected tiny|small|medium|paper)"
                            ))
                        }
                    };
                }
                "--engines" => {
                    let v = flag_value(&mut iter, "--engines")?;
                    let n = flag_number(&v, "--engines")?;
                    if n == 0 {
                        return Err("--engines must be >= 1".to_string());
                    }
                    opts.engines_override = Some(n);
                }
                "--seed" => {
                    let v = flag_value(&mut iter, "--seed")?;
                    opts.seed = v
                        .parse()
                        .map_err(|_| format!("--seed must be a number, got {v:?}"))?;
                }
                "--repeats" => {
                    let v = flag_value(&mut iter, "--repeats")?;
                    let n = flag_number(&v, "--repeats")?;
                    if n == 0 {
                        return Err("--repeats must be >= 1".to_string());
                    }
                    opts.repeats = n;
                }
                "--threads" => {
                    let v = flag_value(&mut iter, "--threads")?;
                    let n = flag_number(&v, "--threads")?;
                    if n == 0 {
                        return Err("--threads must be >= 1".to_string());
                    }
                    opts.threads = Some(n);
                }
                _ => rest.push(arg),
            }
        }
        Ok((opts, rest))
    }

    /// Print `err` plus the usage text and exit with status 2 (the
    /// conventional bad-command-line status).
    pub fn usage_exit(err: &str) -> ! {
        eprintln!("error: {err}\n\n{USAGE}");
        std::process::exit(2);
    }

    /// Parse the real process arguments and install the requested
    /// worker-thread count process-wide. Invalid arguments print usage
    /// and exit(2) instead of panicking.
    pub fn from_env() -> HarnessOptions {
        match Self::try_parse(std::env::args()) {
            Ok(opts) => {
                opts.apply_threads();
                opts
            }
            Err(e) => Self::usage_exit(&e),
        }
    }

    /// [`HarnessOptions::from_env`] for binaries with extra flags:
    /// returns the unrecognized arguments for the caller to interpret
    /// (and reject via [`HarnessOptions::usage_exit`]).
    pub fn from_env_partial() -> (HarnessOptions, Vec<String>) {
        match Self::try_parse_partial(std::env::args()) {
            Ok((opts, rest)) => {
                opts.apply_threads();
                (opts, rest)
            }
            Err(e) => Self::usage_exit(&e),
        }
    }

    /// Install `--threads` as the process-global worker count (no-op
    /// when the flag was absent, leaving `MASSF_THREADS` / detected
    /// cores in charge).
    pub fn apply_threads(&self) {
        if let Some(t) = self.threads {
            massf_parutil::set_threads(t);
        }
    }

    /// Effective engine count.
    pub fn engines(&self) -> usize {
        self.engines_override
            .unwrap_or_else(|| default_engines(self.scale))
    }

    /// The mapping configuration for these options.
    pub fn mapping_config(&self) -> MappingConfig {
        MappingConfig::new(self.engines())
    }

    /// The cluster performance model for these options.
    pub fn cluster_model(&self) -> ClusterModel {
        ClusterModel::default()
    }
}

/// One `(workload, approach)` cell of a figure: all four metrics.
#[derive(Debug, Clone)]
pub struct SuiteRow {
    pub workload: WorkloadKind,
    pub approach: MappingApproach,
    pub metrics: ExperimentMetrics,
    pub total_events: u64,
}

/// Run the full evaluation suite for one network world: both workloads ×
/// the requested approaches, sharing one profiling run per workload and
/// averaging metrics over `opts.repeats` topology seeds.
pub fn run_suite(
    kind: ScenarioKind,
    opts: &HarnessOptions,
    approaches: &[MappingApproach],
) -> Vec<SuiteRow> {
    let mut merged: Vec<SuiteRow> = Vec::new();
    for rep in 0..opts.repeats {
        let mut o = opts.clone();
        o.seed = opts.seed.wrapping_add(rep as u64 * 1000);
        o.repeats = 1;
        let rows = run_suite_once(kind, &o, approaches);
        if merged.is_empty() {
            merged = rows;
        } else {
            for (m, r) in merged.iter_mut().zip(rows) {
                assert_eq!(m.approach, r.approach);
                m.metrics.simulation_time_secs += r.metrics.simulation_time_secs;
                m.metrics.achieved_mll_ms += r.metrics.achieved_mll_ms;
                m.metrics.load_imbalance += r.metrics.load_imbalance;
                m.metrics.parallel_efficiency += r.metrics.parallel_efficiency;
                m.total_events += r.total_events;
            }
        }
    }
    let n = opts.repeats as f64;
    for m in merged.iter_mut() {
        m.metrics.simulation_time_secs /= n;
        m.metrics.achieved_mll_ms /= n;
        m.metrics.load_imbalance /= n;
        m.metrics.parallel_efficiency /= n;
        m.total_events /= opts.repeats as u64;
    }
    merged
}

fn run_suite_once(
    kind: ScenarioKind,
    opts: &HarnessOptions,
    approaches: &[MappingApproach],
) -> Vec<SuiteRow> {
    let cfg = opts.mapping_config();
    let model = opts.cluster_model();
    let duration = opts.scale.run_duration();
    let mut rows = Vec::new();
    for workload in [WorkloadKind::ScaLapack, WorkloadKind::GridNpb] {
        eprintln!("# building {kind:?} scenario for {} …", workload.label());
        let scenario = Scenario::build(kind, opts.scale, workload, opts.seed);
        eprintln!(
            "# measuring {} × {} approaches ({} worker threads) …",
            workload.label(),
            approaches.len(),
            massf_parutil::current_threads()
        );
        // One shared profiling run, then all approaches concurrently
        // (order and results identical to the old sequential loop).
        let outputs = run_approaches(&scenario, approaches, &cfg, &model, duration);
        let mut cache = massf_netsim::RouteCacheStats::default();
        let mut fluid = massf_netsim::FluidStats::default();
        for out in outputs {
            cache.merge(&out.run_profile.route_cache);
            fluid.merge(&out.run_profile.fluid);
            rows.push(SuiteRow {
                workload,
                approach: out.approach,
                metrics: out.metrics,
                total_events: out.run_stats.total_events,
            });
        }
        eprintln!(
            "# route cache ({}): {} hits / {} misses / {} evictions ({:.1}% hit rate)",
            workload.label(),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.hit_rate() * 100.0
        );
        eprintln!(
            "# fluid ({}): {} started / {} completed / {} aborted, {} rate recomputes / {} bottleneck recomputes, {} cap updates / {} packet-load updates",
            workload.label(),
            fluid.started,
            fluid.completed,
            fluid.aborted,
            fluid.rate_recomputes,
            fluid.bottleneck_recomputes,
            fluid.cap_updates,
            fluid.packet_load_updates
        );
    }
    rows
}

/// Pretty-print one figure: a `workload × approach` metric grid.
pub fn print_figure(
    title: &str,
    rows: &[SuiteRow],
    metric_name: &str,
    metric: impl Fn(&ExperimentMetrics) -> f64,
) {
    println!("== {title} ==");
    println!("{:<12} {:<10} {:>14}", "workload", "approach", metric_name);
    for row in rows {
        println!(
            "{:<12} {:<10} {:>14.4}",
            row.workload.label(),
            row.approach.label(),
            metric(&row.metrics)
        );
    }
    println!();
}

/// Relative improvements quoted in the paper's text, printed under the
/// figures for easy comparison (e.g. "PROF2 reduces TOP2's time by X%").
pub fn print_improvements(rows: &[SuiteRow]) {
    let by_key: HashMap<(WorkloadKind, MappingApproach), &SuiteRow> =
        rows.iter().map(|r| ((r.workload, r.approach), r)).collect();
    for workload in [WorkloadKind::ScaLapack, WorkloadKind::GridNpb] {
        let get = |a: MappingApproach| by_key.get(&(workload, a));
        if let (Some(top2), Some(prof2), Some(hprof), Some(htop)) = (
            get(MappingApproach::Top2),
            get(MappingApproach::Prof2),
            get(MappingApproach::Hprof),
            get(MappingApproach::Htop),
        ) {
            let pct = |a: f64, b: f64| (1.0 - a / b) * 100.0;
            println!("-- {} --", workload.label());
            println!(
                "PROF2 vs TOP2 time:      {:+.1}% (paper: -14% single-AS / -21% multi-AS)",
                -pct(
                    prof2.metrics.simulation_time_secs,
                    top2.metrics.simulation_time_secs
                )
            );
            println!(
                "HPROF vs TOP2 time:      {:+.1}% (paper: ≈-40% / -41%)",
                -pct(
                    hprof.metrics.simulation_time_secs,
                    top2.metrics.simulation_time_secs
                )
            );
            println!(
                "PROF2 vs TOP2 imbalance: {:+.1}% (paper: ≈-7% / -15%)",
                -pct(prof2.metrics.load_imbalance, top2.metrics.load_imbalance)
            );
            println!(
                "HPROF vs HTOP imbalance: {:+.1}% (paper: ≈-11% / -31%)",
                -pct(hprof.metrics.load_imbalance, htop.metrics.load_imbalance)
            );
            println!(
                "HPROF efficiency:        {:.3} (paper: ≈0.40), vs TOP2 {:+.1}%",
                hprof.metrics.parallel_efficiency,
                (hprof.metrics.parallel_efficiency / top2.metrics.parallel_efficiency - 1.0)
                    * 100.0
            );
            println!();
        }
    }
}

/// Measure the *actual* cost of one barrier round across `n` OS threads
/// on this machine, averaged over `rounds` barriers. Used by the Figure 5
/// harness to print a measured series next to the model. (On a small
/// host this measures thread-barrier cost, not Myrinet MPI cost; the
/// model — `massf_engine::synccost::SyncCostModel` — is what feeds the
/// evaluation.) Lives here rather than in the engine because it reads
/// host wall-clock time, which deterministic-critical crates must not
/// do (simlint D2).
pub fn measure_barrier_cost_us(n: usize, rounds: usize) -> f64 {
    use std::sync::Barrier;
    use std::time::Instant;
    if n <= 1 {
        return 0.0;
    }
    let barrier = Barrier::new(n);
    let elapsed_us = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..n - 1 {
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                for _ in 0..rounds {
                    barrier.wait();
                }
            }));
        }
        let start = Instant::now();
        for _ in 0..rounds {
            barrier.wait();
        }
        let e = start.elapsed().as_secs_f64() * 1e6;
        for h in handles {
            h.join().expect("barrier thread panicked");
        }
        e
    });
    elapsed_us / rounds as f64
}

/// Wall-clock implementation of the engine's
/// [`massf_engine::BarrierObserver`] hook: accumulates per-partition
/// time spent blocked in executor barriers. Lives here rather than in
/// the engine because it reads host wall-clock time, which
/// deterministic-critical crates must not do (simlint D2); the observer
/// runs strictly outside the deterministic event path, so measuring
/// cannot change simulation results.
///
/// Each partition thread only ever touches its own slot, so the mutexes
/// are uncontended — they exist to keep the observer `Sync` without
/// `unsafe`.
pub struct MeasuredBarriers {
    parts: Vec<std::sync::Mutex<BarrierWaitState>>,
}

#[derive(Default)]
struct BarrierWaitState {
    pending: Option<std::time::Instant>,
    total_ns: u64,
    waits: u64,
}

impl MeasuredBarriers {
    /// An observer for a run with `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        MeasuredBarriers {
            parts: (0..partitions).map(|_| Default::default()).collect(),
        }
    }

    /// Number of barrier waits partition `p` performed.
    pub fn waits(&self, p: usize) -> u64 {
        self.parts[p].lock().expect("observer mutex poisoned").waits
    }
}

impl massf_engine::BarrierObserver for MeasuredBarriers {
    fn wait_begin(&self, partition: usize) {
        let mut s = self.parts[partition]
            .lock()
            .expect("observer mutex poisoned");
        s.pending = Some(std::time::Instant::now());
    }

    fn wait_end(&self, partition: usize) {
        let mut s = self.parts[partition]
            .lock()
            .expect("observer mutex poisoned");
        if let Some(t0) = s.pending.take() {
            s.total_ns += t0.elapsed().as_nanos() as u64;
            s.waits += 1;
        }
    }

    fn waits_us(&self) -> Vec<f64> {
        self.parts
            .iter()
            .map(|m| m.lock().expect("observer mutex poisoned").total_ns as f64 / 1e3)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> String {
        v.to_string()
    }

    #[test]
    fn parses_arguments() {
        let opts = HarnessOptions::try_parse(vec![
            s("bin"),
            s("--scale"),
            s("tiny"),
            s("--engines"),
            s("16"),
            s("--seed"),
            s("9"),
            s("--threads"),
            s("2"),
        ])
        .expect("valid arguments");
        assert_eq!(opts.scale, Scale::Tiny);
        assert_eq!(opts.engines(), 16);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.threads, Some(2));
    }

    #[test]
    fn defaults_match_paper() {
        let opts = HarnessOptions::try_parse(vec![s("bin")]).expect("no arguments is valid");
        assert_eq!(opts.engines(), default_engines(Scale::Small));
        assert_eq!(opts.scale, Scale::Small);
        assert_eq!(default_engines(Scale::Paper), 90);
    }

    #[test]
    fn rejects_bad_scale() {
        let err = HarnessOptions::try_parse(vec![s("bin"), s("--scale"), s("huge")])
            .expect_err("bad scale must be rejected");
        assert!(err.contains("unknown scale"), "{err}");
    }

    #[test]
    fn rejects_bad_flag_values() {
        for args in [
            vec![s("bin"), s("--threads"), s("zero")],
            vec![s("bin"), s("--threads"), s("0")],
            vec![s("bin"), s("--engines"), s("0")],
            vec![s("bin"), s("--repeats"), s("0")],
            vec![s("bin"), s("--seed"), s("NaN")],
            vec![s("bin"), s("--threads")],
            vec![s("bin"), s("--frobnicate")],
        ] {
            assert!(
                HarnessOptions::try_parse(args.clone()).is_err(),
                "{args:?} must be rejected"
            );
        }
    }

    #[test]
    fn partial_parse_hands_back_extra_flags() {
        let (opts, rest) = HarnessOptions::try_parse_partial(vec![
            s("bin"),
            s("--smoke"),
            s("--threads"),
            s("2"),
            s("--flaps"),
            s("12"),
        ])
        .expect("harness flags valid");
        assert_eq!(opts.threads, Some(2));
        assert_eq!(rest, vec![s("--smoke"), s("--flaps"), s("12")]);
    }

    #[test]
    fn measured_barriers_record_executor_waits() {
        use massf_engine::{try_run_parallel_observed, Emitter, LpId, Model, SimTime};
        struct Ring;
        impl Model for Ring {
            type Event = ();
            fn handle(&mut self, t: LpId, _: SimTime, _: (), out: &mut Emitter<'_, ()>) {
                out.emit(SimTime::from_ms(1), LpId((t.0 + 1) % 2), ());
            }
        }
        let obs = MeasuredBarriers::new(2);
        let (_, stats) = try_run_parallel_observed(
            vec![Ring, Ring],
            2,
            &[0, 1],
            vec![(SimTime::ZERO, LpId(0), ())],
            SimTime::from_ms(20),
            SimTime::from_ms(1),
            &obs,
        )
        .expect("MLL-sized window cannot violate lookahead");
        assert_eq!(stats.barrier_wait_us.len(), 2);
        assert_eq!(obs.waits(0), stats.barrier_rounds);
        assert_eq!(obs.waits(1), stats.barrier_rounds);
        assert!(stats.total_barrier_wait_us() > 0.0);
    }

    #[test]
    fn measured_barrier_is_positive_for_two_threads() {
        let us = measure_barrier_cost_us(2, 50);
        assert!(us > 0.0);
        assert_eq!(measure_barrier_cost_us(1, 50), 0.0);
    }

    #[test]
    fn tiny_suite_has_expected_shape() {
        let opts = HarnessOptions {
            scale: Scale::Tiny,
            engines_override: Some(4),
            seed: 3,
            repeats: 1,
            threads: None,
        };
        let rows = run_suite(
            ScenarioKind::SingleAs,
            &opts,
            &[MappingApproach::Top2, MappingApproach::Hprof],
        );
        assert_eq!(rows.len(), 4); // 2 workloads × 2 approaches
        for r in &rows {
            assert!(r.metrics.simulation_time_secs > 0.0);
            assert!(r.total_events > 0);
        }
    }
}
