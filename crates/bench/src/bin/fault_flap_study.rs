//! Fault-injection study: replay a seeded link-flap script over the
//! single-AS scenario and report how the simulation absorbs it —
//! packet-loss windows, flow abort rates, online reconvergence count,
//! and how much the HPROF load-balance mapping drifts when it is fed the
//! faulted traffic profile instead of the clean one.
//!
//! Defaults to `--scale medium` (the 2,000-router single-AS network);
//! see EXPERIMENTS.md ("Link-flap runbook") for the expected output.
//!
//! Extra flags on top of the shared harness set:
//!
//! ```text
//! --flaps N        number of link flaps to script (default: 12)
//! --down-ms MS     downtime per flap, milliseconds (default: 2000)
//! --max-retries N  TCP retry budget before a flow aborts (default: 6);
//!                  lower it to make flows give up inside a flap window,
//!                  raise it to ride the outage out
//! --rebalance-epoch MS      also run the online rebalancer over the
//!                  faulted scenario at this epoch cadence, starting
//!                  from the clean-profile HPROF map, and report how
//!                  much of the flap-induced imbalance it recovers
//! --rebalance-threshold P   its trigger threshold, permille of perfect
//!                  balance (default: 1200)
//! --smoke          tiny network, short run, self-checking (used by
//!                  scripts/check.sh)
//! ```
//!
//! The report is bit-identical across `--threads` values: fault state is
//! a pure function of virtual time, so worker-pool scheduling cannot
//! leak into any number printed here (the `--smoke` mode asserts the
//! sequential/parallel equality directly).

use massf_bench::{HarnessOptions, MeasuredBarriers};
use massf_core::prelude::*;
use massf_engine::RebalanceConfig;
use massf_netsim::{
    Agent, FaultScript, FaultState, NetSimBuilder, NoApp, ProfileData, SimOutput,
    DEFAULT_ROUTE_CACHE_CAPACITY, FLUID_CONTROL_DELAY, MAX_RETRIES,
};
use massf_routing::{CostMetric, FlatResolver};
use massf_snapshot::{RebalancePolicy, Session};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

struct StudyOptions {
    harness: HarnessOptions,
    flaps: usize,
    down: SimTime,
    max_retries: u32,
    rebalance_epoch: Option<SimTime>,
    rebalance_threshold: u64,
    smoke: bool,
}

fn parse_extra(harness: HarnessOptions, rest: Vec<String>) -> StudyOptions {
    let mut opts = StudyOptions {
        harness,
        flaps: 12,
        down: SimTime::from_ms(2000),
        max_retries: MAX_RETRIES,
        rebalance_epoch: None,
        rebalance_threshold: 1200,
        smoke: false,
    };
    let mut iter = rest.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| match iter.next() {
            Some(v) => v,
            None => HarnessOptions::usage_exit(&format!("{flag} needs a value")),
        };
        match arg.as_str() {
            "--flaps" => {
                let v = value("--flaps");
                opts.flaps = match v.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        HarnessOptions::usage_exit(&format!("--flaps must be a number, got {v:?}"))
                    }
                };
            }
            "--down-ms" => {
                let v = value("--down-ms");
                opts.down = match v.parse::<u64>() {
                    Ok(ms) => SimTime::from_ms(ms),
                    Err(_) => HarnessOptions::usage_exit(&format!(
                        "--down-ms must be a number, got {v:?}"
                    )),
                };
            }
            "--max-retries" => {
                let v = value("--max-retries");
                opts.max_retries = match v.parse() {
                    Ok(n) => n,
                    Err(_) => HarnessOptions::usage_exit(&format!(
                        "--max-retries must be a number, got {v:?}"
                    )),
                };
            }
            "--rebalance-epoch" => {
                let v = value("--rebalance-epoch");
                opts.rebalance_epoch = match v.parse::<u64>() {
                    Ok(ms) if ms > 0 => Some(SimTime::from_ms(ms)),
                    _ => HarnessOptions::usage_exit(&format!(
                        "--rebalance-epoch must be a positive number of ms, got {v:?}"
                    )),
                };
            }
            "--rebalance-threshold" => {
                let v = value("--rebalance-threshold");
                opts.rebalance_threshold = match v.parse() {
                    Ok(p) if p >= 1000 => p,
                    _ => HarnessOptions::usage_exit(&format!(
                        "--rebalance-threshold is permille of perfect balance and must be \
                         >= 1000, got {v:?}"
                    )),
                };
            }
            "--smoke" => opts.smoke = true,
            other => HarnessOptions::usage_exit(&format!(
                "unknown argument {other:?} (extra flags: --flaps/--down-ms/--max-retries/\
                 --rebalance-epoch/--rebalance-threshold/--smoke)"
            )),
        }
    }
    opts
}

/// Seeded background traffic: TCP flows between random host pairs,
/// injected over the first 60% of the run, plus one fluid background
/// flow per four TCP flows so the study exercises the mixed-fidelity
/// fault interaction (reroute/terminate on flap) at study scale.
fn traffic(hosts: &[NodeId], duration: SimTime, flows: usize, seed: u64) -> Agent {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF1A9);
    let mut agent = Agent::new();
    let span = (duration.as_ns() * 6 / 10).max(1);
    for _ in 0..flows {
        let src = hosts[rng.gen_range(0..hosts.len())];
        let mut dst = hosts[rng.gen_range(0..hosts.len())];
        if dst == src {
            dst = hosts[(rng.gen_range(0..hosts.len()) + 1) % hosts.len()];
        }
        if dst == src {
            continue;
        }
        let at = SimTime(rng.gen_range(0..span));
        let bytes = 10_000 + rng.gen_range(0u64..190_000);
        agent.inject_tcp(at, src, dst, bytes);
    }
    for _ in 0..flows / 4 {
        let src = hosts[rng.gen_range(0..hosts.len())];
        let dst = hosts[rng.gen_range(0..hosts.len())];
        if dst == src {
            continue;
        }
        let at = SimTime(rng.gen_range(0..span));
        let bytes = 200_000 + rng.gen_range(0u64..1_800_000);
        agent.inject_fluid(at, src, dst, bytes);
    }
    agent
}

/// Per-partition packet loads under an assignment, for imbalance.
fn partition_loads(profile: &ProfileData, assignment: &[u32], engines: usize) -> Vec<f64> {
    let mut loads = vec![0.0; engines];
    for (node, &packets) in profile.node_packets.iter().enumerate() {
        loads[assignment[node] as usize] += packets as f64;
    }
    loads
}

fn main() {
    let (harness, rest) = HarnessOptions::from_env_partial();
    let mut opts = parse_extra(harness, rest);
    // This study defaults to the 2k-router single-AS world (the shared
    // harness default is small); an explicit --scale wins, --smoke
    // shrinks everything.
    let scale_given = std::env::args().any(|a| a == "--scale");
    if opts.smoke {
        opts.harness.scale = Scale::Tiny;
        opts.flaps = opts.flaps.min(4);
        // Exercise the online-rebalance reporting path in CI.
        opts.rebalance_epoch = Some(opts.rebalance_epoch.unwrap_or(SimTime::from_ms(2000)));
    } else if !scale_given {
        opts.harness.scale = Scale::Medium;
    }

    let scale = opts.harness.scale;
    let seed = opts.harness.seed;
    let duration = if opts.smoke {
        SimTime::from_secs(20)
    } else {
        scale.run_duration().max(SimTime::from_secs(30))
    };

    eprintln!("# generating {scale:?} single-AS network (seed {seed}) …");
    let net = generate_flat_network(&scale.flat_config(seed));
    let hosts = net.host_ids();
    let flows = (hosts.len() * 2).clamp(64, 4000);

    // Fault script: seeded link flaps inside the middle of the run, so
    // both a clean prefix and a recovered tail exist.
    let start = SimTime(duration.as_ns() / 5);
    let end = SimTime(duration.as_ns() * 4 / 5);
    let script = FaultScript::random_link_flaps(&net, opts.flaps, opts.down, start, end, seed)
        .unwrap_or_else(|e| HarnessOptions::usage_exit(&format!("cannot build fault script: {e}")));
    eprintln!(
        "# scripted {} fault events over [{:.1}s, {:.1}s], {} ms downtime per flap",
        script.len(),
        start.as_secs_f64(),
        end.as_secs_f64(),
        opts.down.as_ms_f64(),
    );

    // Clean run (reference) and faulted run over identical traffic.
    let run = |faults: Option<Arc<FaultState>>| -> SimOutput<NoApp> {
        let mut builder = match faults {
            Some(f) => NetSimBuilder::new_with_faults(net.clone(), f),
            None => {
                let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
                NetSimBuilder::new(net.clone(), resolver)
            }
        };
        builder.max_retries(opts.max_retries);
        builder.add_agent(traffic(&hosts, duration, flows, seed));
        builder.run_sequential(NoApp, duration)
    };

    eprintln!("# clean reference run …");
    let clean = run(None);
    eprintln!("# faulted run …");
    let faults = FaultState::flat(&net, CostMetric::Latency, script)
        .expect("random_link_flaps scripts validate");
    let faulted = run(Some(faults.clone()));

    println!("== fault_flap_study ({scale:?}, seed {seed}) ==");
    println!(
        "network: {} nodes / {} links, {} flows over {:.0}s, TCP retry budget {}",
        net.node_count(),
        net.links.len(),
        flows,
        duration.as_secs_f64(),
        opts.max_retries
    );

    // Packet-loss windows: the faulty epochs, with their failure state.
    println!();
    println!(
        "{:>5} {:>10} {:>10} {:>11} {:>11}",
        "epoch", "start_s", "end_s", "links_down", "nodes_down"
    );
    for e in 0..faults.epoch_count() {
        let start = faults.epoch_start(e);
        let end = if e + 1 < faults.epoch_count() {
            faults.epoch_start(e + 1)
        } else {
            duration
        };
        let st = faults.epoch_state(e);
        println!(
            "{:>5} {:>10.2} {:>10.2} {:>11} {:>11}",
            e,
            start.as_secs_f64(),
            end.as_secs_f64(),
            st.dead_links.len(),
            st.dead_nodes.len()
        );
    }

    let abort_rate = |p: &ProfileData| {
        let total = p.completed_flows + p.aborted_flows;
        if total == 0 {
            0.0
        } else {
            p.aborted_flows as f64 / total as f64
        }
    };
    println!();
    println!("{:<22} {:>14} {:>14}", "metric", "clean", "faulted");
    let rows: [(&str, u64, u64); 18] = [
        (
            "total events",
            clean.stats.total_events,
            faulted.stats.total_events,
        ),
        (
            "completed flows",
            clean.profile.completed_flows,
            faulted.profile.completed_flows,
        ),
        (
            "aborted flows",
            clean.profile.aborted_flows,
            faulted.profile.aborted_flows,
        ),
        (
            "unroutable",
            clean.profile.unroutable,
            faulted.profile.unroutable,
        ),
        ("queue drops", clean.profile.drops, faulted.profile.drops),
        (
            "fault drops",
            clean.profile.fault_drops,
            faulted.profile.fault_drops,
        ),
        (
            "fault events",
            clean.profile.fault_events,
            faulted.profile.fault_events,
        ),
        (
            "route-cache hits",
            clean.profile.route_cache.hits,
            faulted.profile.route_cache.hits,
        ),
        (
            "route-cache misses",
            clean.profile.route_cache.misses,
            faulted.profile.route_cache.misses,
        ),
        (
            "route-cache evictions",
            clean.profile.route_cache.evictions,
            faulted.profile.route_cache.evictions,
        ),
        (
            "fluid started",
            clean.profile.fluid.started,
            faulted.profile.fluid.started,
        ),
        (
            "fluid completed",
            clean.profile.fluid.completed,
            faulted.profile.fluid.completed,
        ),
        (
            "fluid aborted",
            clean.profile.fluid.aborted,
            faulted.profile.fluid.aborted,
        ),
        (
            "fluid rerouted",
            clean.profile.fluid.rerouted,
            faulted.profile.fluid.rerouted,
        ),
        (
            "fluid rate recomputes",
            clean.profile.fluid.rate_recomputes,
            faulted.profile.fluid.rate_recomputes,
        ),
        (
            "fluid bottleneck rcmp",
            clean.profile.fluid.bottleneck_recomputes,
            faulted.profile.fluid.bottleneck_recomputes,
        ),
        (
            "fluid cap updates",
            clean.profile.fluid.cap_updates,
            faulted.profile.fluid.cap_updates,
        ),
        (
            "fluid pkt-load updates",
            clean.profile.fluid.packet_load_updates,
            faulted.profile.fluid.packet_load_updates,
        ),
    ];
    for (name, c, f) in rows {
        println!("{name:<22} {c:>14} {f:>14}");
    }
    println!(
        "{:<22} {:>14.4} {:>14.4}",
        "route-cache hit rate",
        clean.profile.route_cache.hit_rate(),
        faulted.profile.route_cache.hit_rate()
    );
    println!(
        "{:<22} {:>14.4} {:>14.4}",
        "flow abort rate",
        abort_rate(&clean.profile),
        abort_rate(&faulted.profile)
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "reconvergences",
        0,
        faults.reconvergence_count()
    );

    // HPROF drift: map the network with the clean profile and with the
    // faulted profile; report how far the assignment and the resulting
    // load balance move.
    let cfg = opts.harness.mapping_config();
    eprintln!("# HPROF mapping with clean profile …");
    let map_clean = map_network(&net, Some(&clean.profile), MappingApproach::Hprof, &cfg);
    eprintln!("# HPROF mapping with faulted profile …");
    let map_fault = map_network(&net, Some(&faulted.profile), MappingApproach::Hprof, &cfg);
    let moved = map_clean
        .partition
        .assignment
        .iter()
        .zip(&map_fault.partition.assignment)
        .filter(|(a, b)| a != b)
        .count();
    let drift = moved as f64 / net.node_count() as f64;
    let engines = cfg.engines;
    let imb_clean = load_imbalance(&partition_loads(
        &faulted.profile,
        &map_clean.partition.assignment,
        engines,
    ));
    let imb_fault = load_imbalance(&partition_loads(
        &faulted.profile,
        &map_fault.partition.assignment,
        engines,
    ));
    println!();
    println!("HPROF drift ({engines} engines):");
    println!(
        "  assignment drift:    {:.4} ({moved}/{} nodes reassigned)",
        drift,
        net.node_count()
    );
    println!("  imbalance (clean-profile map, faulted load):   {imb_clean:.4}");
    println!("  imbalance (faulted-profile map, faulted load): {imb_fault:.4}");

    // Online rebalancing over the faulted scenario: start from the
    // mapping HPROF computed at deployment time (the clean profile) and
    // let the epoch-cadenced rebalancer chase the flap-induced load
    // shift. The static row runs the identical driver with the trigger
    // pinned off (threshold u64::MAX), so the comparison shares the
    // exact epoch segmentation. See rebalance_study for the full sweep.
    if let Some(epoch) = opts.rebalance_epoch {
        let adaptive_policy = RebalancePolicy {
            cfg: RebalanceConfig {
                epoch,
                threshold_permille: opts.rebalance_threshold,
                ..RebalanceConfig::default()
            },
            ..RebalancePolicy::default()
        };
        let static_policy = RebalancePolicy {
            cfg: RebalanceConfig {
                threshold_permille: u64::MAX,
                ..adaptive_policy.cfg
            },
            ..adaptive_policy
        };
        let run_driver = |policy: RebalancePolicy| {
            let mut builder = NetSimBuilder::new_with_faults(net.clone(), faults.clone());
            builder.max_retries(opts.max_retries);
            builder.add_agent(traffic(&hosts, duration, flows, seed));
            let mut session = Session::new_rebalancing(
                builder.shared(),
                builder.initial_events(),
                DEFAULT_ROUTE_CACHE_CAPACITY,
                opts.max_retries,
                policy,
                map_clean.partition.assignment.clone(),
            )
            .expect("valid policy and HPROF assignment");
            let outcome = session.run_rebalancing(duration).expect("driver runs");
            let partitions = session
                .rebalance_state()
                .expect("rebalancing session")
                .partitions as usize;
            (outcome, partitions, session)
        };
        eprintln!("# online rebalance, static driver …");
        let (st, st_parts, _) = run_driver(static_policy);
        eprintln!("# online rebalance, adaptive driver …");
        let (ad, ad_parts, ad_session) = run_driver(adaptive_policy);
        println!();
        println!(
            "online rebalance ({engines} engines, epoch {:.0} ms, threshold {} permille):",
            epoch.as_ms_f64(),
            opts.rebalance_threshold
        );
        println!(
            "  max/mean load (permille):  static {} -> adaptive {} ({:.2}x over {} epochs)",
            st.aggregate_imbalance_permille(st_parts),
            ad.aggregate_imbalance_permille(ad_parts),
            st.aggregate_imbalance_permille(st_parts) as f64
                / ad.aggregate_imbalance_permille(ad_parts).max(1) as f64,
            ad.epochs
        );
        println!(
            "  rebalances / LP migrations:  {} / {}",
            ad.rebalances, ad.migrations
        );
        println!(
            "  critical-path events:  static {} -> adaptive {}",
            st.critical_path_events, ad.critical_path_events
        );
        // The rebalancing trajectory answers exactly what the sequential
        // faulted run answers, migrations and all.
        assert_eq!(
            ad_session.total_events(),
            faulted.stats.total_events,
            "adaptive rebalancing run diverged from the sequential faulted run"
        );
        assert_eq!(
            ad_session.profile(),
            &faulted.profile,
            "adaptive rebalancing profile diverged from the sequential faulted run"
        );
    }

    if opts.smoke {
        // Self-checks: faults actually fired, losses were tolerated, and
        // the faulted run is bit-identical in parallel.
        assert_eq!(
            faulted.profile.fault_events as usize,
            faults.script().len(),
            "every scripted fault must be handled"
        );
        assert!(
            faults.reconvergence_count() > 0,
            "no reconvergence happened"
        );
        assert!(
            faulted.profile.completed_flows > 0,
            "faulted run completed no flows"
        );
        // Hits are workload-dependent (the tiny smoke traffic rarely
        // repeats a pair within one epoch); repeated-pair hit behavior
        // is asserted by the route_resolution bench smoke instead.
        assert!(
            faulted.profile.route_cache.misses > 0,
            "route cache was never consulted"
        );
        assert!(
            faulted.profile.fluid.started > 0,
            "no fluid background traffic flowed"
        );
        let n = net.node_count();
        let assignment: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let mut mll = f64::INFINITY;
        for link in &net.links {
            if assignment[link.a.index()] != assignment[link.b.index()] {
                mll = mll.min(link.latency_ms);
            }
        }
        let mut builder = NetSimBuilder::new_with_faults(net.clone(), faults.clone());
        builder.max_retries(opts.max_retries);
        builder.add_agent(traffic(&hosts, duration, flows, seed));
        let observer = MeasuredBarriers::new(2);
        let par = builder
            .try_run_parallel_observed(
                NoApp,
                duration,
                // Fluid control events promise exactly
                // FLUID_CONTROL_DELAY of cross-LP lookahead, so the
                // window is the cut MLL capped at that delay.
                SimTime::from_ms_f64(mll).min(FLUID_CONTROL_DELAY),
                &assignment,
                2,
                &observer,
            )
            .expect("smoke window is within both the cut MLL and the fluid control delay");
        assert_eq!(
            par.stats.total_events, faulted.stats.total_events,
            "parallel faulted run diverged from sequential"
        );
        assert_eq!(
            par.profile, faulted.profile,
            "parallel faulted profile diverged from sequential"
        );
        // The quiet stretches between fault epochs are exactly what the
        // executor's empty-window fast-forward is for: the run must skip
        // barriers, and the observer must have a measurement for every
        // partition.
        assert!(
            par.stats.windows_skipped > 0,
            "expected idle windows between fault epochs to be fast-forwarded"
        );
        assert_eq!(
            par.stats.barrier_rounds,
            1 + 2 * par.stats.windows_executed,
            "barrier rounds must track executed windows only"
        );
        assert_eq!(par.stats.barrier_wait_us.len(), 2);
        println!();
        println!(
            "parallel smoke: {} windows executed, {} skipped, {} barrier rounds, \
             mean barrier wait {:.0} us/partition",
            par.stats.windows_executed,
            par.stats.windows_skipped,
            par.stats.barrier_rounds,
            par.stats.barrier_wait_us.iter().sum::<f64>() / 2.0
        );
        println!("smoke checks passed");
    }
}
