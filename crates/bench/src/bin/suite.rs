//! Run the complete evaluation — Figures 6–13 — in one pass (one
//! profiling run and one measured run per workload×approach, reused for
//! all four metrics) and print every figure plus the paper's quoted
//! relative improvements.

use massf_bench::{print_figure, print_improvements, run_suite, HarnessOptions};
use massf_core::prelude::*;

fn main() {
    let opts = HarnessOptions::from_env();
    for (kind, figs) in [
        (ScenarioKind::SingleAs, ["6", "7", "8", "9"]),
        (ScenarioKind::MultiAs, ["10", "11", "12", "13"]),
    ] {
        let rows = run_suite(kind, &opts, &MappingApproach::paper_six());
        let world = match kind {
            ScenarioKind::SingleAs => "Single-AS",
            ScenarioKind::MultiAs => "Multi-AS",
        };
        let four: Vec<_> = rows
            .iter()
            .filter(|r| MappingApproach::paper_four().contains(&r.approach))
            .cloned()
            .collect();
        print_figure(
            &format!(
                "Figure {}: Simulation Time on the {world} Network (scale {:?}, {} engines)",
                figs[0],
                opts.scale,
                opts.engines()
            ),
            &four,
            "T [s, modeled]",
            |m| m.simulation_time_secs,
        );
        print_figure(
            &format!("Figure {}: Achieved MLL on the {world} Network", figs[1]),
            &rows,
            "MLL [ms]",
            |m| m.achieved_mll_ms,
        );
        print_figure(
            &format!("Figure {}: Load Imbalance on the {world} Network", figs[2]),
            &four,
            "imbalance",
            |m| m.load_imbalance,
        );
        print_figure(
            &format!(
                "Figure {}: Parallel Efficiency on the {world} Network",
                figs[3]
            ),
            &four,
            "PE",
            |m| m.parallel_efficiency,
        );
        print_improvements(&rows);
    }
}
