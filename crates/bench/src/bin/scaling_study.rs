//! Engine-count scaling study (the paper's Section 7 outlook: "we will
//! use … a 256-node Itanium-2 Linux cluster"): how simulation time and
//! parallel efficiency move with the number of engines, for HPROF vs
//! TOP2. Shows HPROF's advantage widening as the synchronization cost
//! C(N) grows and partitions get finer.

use massf_bench::HarnessOptions;
use massf_core::prelude::*;

fn main() {
    let opts = HarnessOptions::from_env();
    let scenario = Scenario::build(
        ScenarioKind::SingleAs,
        opts.scale,
        WorkloadKind::ScaLapack,
        opts.seed,
    );
    let model = opts.cluster_model();
    let duration = opts.scale.run_duration();
    let profile = run_profiling(&scenario, duration);

    println!(
        "== Engine scaling, single-AS {:?} ({} routers) ==",
        opts.scale,
        scenario.net.router_count()
    );
    println!(
        "{:>8} {:>10} | {:>10} {:>8} {:>8} | {:>10} {:>8} {:>8}",
        "engines", "C(N)[us]", "T_top2[s]", "PE", "MLL", "T_hprof[s]", "PE", "MLL"
    );
    for engines in [2usize, 4, 8, 16, 32, 64] {
        let cfg = MappingConfig::new(engines);
        let run = |approach: MappingApproach| {
            run_mapping_experiment_with_profile(
                &scenario,
                approach,
                &cfg,
                &model,
                duration,
                approach.needs_profile().then(|| profile.clone()),
            )
        };
        let top2 = run(MappingApproach::Top2);
        let hprof = run(MappingApproach::Hprof);
        println!(
            "{:>8} {:>10.0} | {:>10.2} {:>8.3} {:>8.2} | {:>10.2} {:>8.3} {:>8.2}",
            engines,
            cfg.sync.cost_us(engines),
            top2.metrics.simulation_time_secs,
            top2.metrics.parallel_efficiency,
            top2.metrics.achieved_mll_ms,
            hprof.metrics.simulation_time_secs,
            hprof.metrics.parallel_efficiency,
            hprof.metrics.achieved_mll_ms,
        );
    }
    println!(
        "\n(Efficiency falls with N once per-engine work shrinks below the\n\
         barrier cost; HPROF postpones the collapse by holding the MLL up.)"
    );
}
