//! Mixed-fidelity fidelity bench: how much does replacing packet-level
//! background TCP with fluid flows distort the *foreground* traffic
//! that stays packet-level?
//!
//! One dumbbell carries both: a foreground TCP transfer A → B plus
//! periodic one-segment "probe" flows A → B (their completion time is
//! an RTT-plus-queueing proxy), against a rolling population of
//! background transfers C → D crossing the same bottleneck. The bench
//! runs the identical demand schedule twice —
//!
//! * **ground truth**: background as packet-level TCP,
//! * **mixed**: background as fluid flows (everything else unchanged) —
//!
//! and reports foreground throughput distortion, probe-RTT distortion,
//! and the event-count reduction the fluid substitution buys.
//!
//! ```text
//! cargo run --release -p massf-bench --bin fluid_fidelity
//! ```

use massf_engine::SimTime;
use massf_netsim::{Agent, AppLogic, FlowId, NetSimBuilder, SimApi, SimOutput};
use massf_routing::{CostMetric, FlatResolver};
use massf_topology::{AsId, Network, NodeId, NodeKind, Point};
use std::sync::Arc;

/// Records every completed flow at its source with its finish time.
#[derive(Clone, Default)]
struct Completions(Vec<(NodeId, FlowId, SimTime)>);

impl AppLogic for Completions {
    fn on_flow_complete(&mut self, host: NodeId, flow: FlowId, api: &mut SimApi<'_, '_>) {
        self.0.push((host, flow, api.now()));
    }
    fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi<'_, '_>) {}
}

const FG_BYTES: u64 = 2_000_000;
const BG_BYTES: u64 = 1_000_000;
const BG_FLOWS: usize = 40;
const BG_SPACING: SimTime = SimTime::from_ms(500);
const PROBES: usize = 30;
const PROBE_SPACING: SimTime = SimTime::from_secs(1);
const PROBE_BYTES: u64 = 1_000; // single segment
const END: SimTime = SimTime::from_secs(120);

/// A — r1 — r2 — B foreground path; C and D hang off the same routers
/// so background C → D crosses the shared 10 Mbit/s bottleneck.
///
/// `r1` is added first on purpose: fluid flows draw their `FlowId`s
/// from the coordinator's (NodeId 0's) counter space, and host `a`'s
/// probe counters must stay contiguous for `duration_of` lookups.
fn topology() -> (Network, [NodeId; 4]) {
    let mut net = Network::new();
    let r1 = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
    let a = net.add_node(NodeKind::Host, Point::new(0.0, 0.0), AsId(0));
    let r2 = net.add_node(NodeKind::Router, Point::new(2.0, 0.0), AsId(0));
    let b = net.add_node(NodeKind::Host, Point::new(3.0, 0.0), AsId(0));
    let c = net.add_node(NodeKind::Host, Point::new(0.0, 1.0), AsId(0));
    let d = net.add_node(NodeKind::Host, Point::new(3.0, 1.0), AsId(0));
    net.add_link(a, r1, 1e8, 0.1);
    net.add_link(c, r1, 1e8, 0.1);
    net.add_link(r1, r2, 1e7, 2.0); // shared bottleneck
    net.add_link(r2, b, 1e8, 0.1);
    net.add_link(r2, d, 1e8, 0.1);
    (net, [a, b, c, d])
}

/// The demand schedule; `fluid_background` picks the background model.
fn run(fluid_background: bool) -> (SimOutput<Completions>, Vec<SimTime>) {
    let (net, [a, b, c, d]) = topology();
    let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
    let mut builder = NetSimBuilder::new(net, resolver);
    let mut agent = Agent::new();
    // Foreground transfer and probes are always packet TCP.
    agent.inject_tcp(SimTime::ZERO, a, b, FG_BYTES);
    let mut probe_starts = Vec::with_capacity(PROBES);
    for k in 0..PROBES {
        let at = SimTime(PROBE_SPACING.as_ns() * (k as u64 + 1));
        probe_starts.push(at);
        agent.inject_tcp(at, a, b, PROBE_BYTES);
    }
    // Background population, same byte schedule in both fidelities.
    for k in 0..BG_FLOWS {
        let at = SimTime(BG_SPACING.as_ns() * k as u64);
        if fluid_background {
            agent.inject_fluid(at, c, d, BG_BYTES);
        } else {
            agent.inject_tcp(at, c, d, BG_BYTES);
        }
    }
    builder.add_agent(agent);
    (
        builder.run_sequential(Completions::default(), END),
        probe_starts,
    )
}

/// Completion time of source-`a` flow with counter `i` (injection
/// order == counter order: all `a` flows are injected time-sorted).
fn duration_of(
    completions: &[(NodeId, FlowId, SimTime)],
    src: NodeId,
    counter: u32,
    started: SimTime,
) -> Option<SimTime> {
    let flow = FlowId::new(src, counter);
    completions
        .iter()
        .find(|&&(h, f, _)| h == src && f == flow)
        .map(|&(_, _, at)| at.saturating_sub(started))
}

fn main() {
    if std::env::args().len() > 1 {
        eprintln!("usage: fluid_fidelity (no arguments)");
        std::process::exit(2);
    }
    eprintln!("# ground-truth run (background as packet TCP) …");
    let (truth, probe_starts) = run(false);
    eprintln!("# mixed run (background as fluid) …");
    let (mixed, _) = run(true);

    let (_, [a, ..]) = topology();
    let report = |out: &SimOutput<Completions>| -> (f64, f64, usize) {
        let completions = &out.apps[0].0;
        let fg = duration_of(completions, a, 0, SimTime::ZERO)
            .expect("foreground flow must complete inside the horizon");
        let mut rtts = Vec::new();
        for (k, &at) in probe_starts.iter().enumerate() {
            if let Some(d) = duration_of(completions, a, (k + 1) as u32, at) {
                rtts.push(d.as_secs_f64() * 1e3);
            }
        }
        let mean_rtt = rtts.iter().sum::<f64>() / rtts.len().max(1) as f64;
        (fg.as_secs_f64(), mean_rtt, rtts.len())
    };
    let (fg_truth, rtt_truth, probes_truth) = report(&truth);
    let (fg_mixed, rtt_mixed, probes_mixed) = report(&mixed);
    let pct = |truth: f64, mixed: f64| (mixed - truth) / truth * 100.0;
    let reduction = truth.stats.total_events as f64 / mixed.stats.total_events as f64;

    println!("{{");
    println!(
        "  \"workload\": {{ \"foreground_bytes\": {FG_BYTES}, \"probes\": {PROBES}, \"background_flows\": {BG_FLOWS}, \"background_bytes\": {BG_BYTES}, \"bottleneck_bps\": 1e7 }},"
    );
    println!("  \"ground_truth\": {{");
    println!("    \"foreground_completion_s\": {fg_truth:.4},");
    println!("    \"probe_rtt_ms_mean\": {rtt_truth:.3}, \"probes_completed\": {probes_truth},");
    println!(
        "    \"total_events\": {}, \"drops\": {}",
        truth.stats.total_events, truth.profile.drops
    );
    println!("  }},");
    println!("  \"mixed_fidelity\": {{");
    println!("    \"foreground_completion_s\": {fg_mixed:.4},");
    println!("    \"probe_rtt_ms_mean\": {rtt_mixed:.3}, \"probes_completed\": {probes_mixed},");
    println!(
        "    \"total_events\": {}, \"drops\": {}, \"fluid_completed\": {}",
        mixed.stats.total_events, mixed.profile.drops, mixed.profile.fluid.completed
    );
    println!("  }},");
    println!("  \"distortion\": {{");
    println!(
        "    \"foreground_throughput_pct\": {:.2},",
        // Throughput distortion is the negated completion-time one.
        -pct(fg_truth, fg_mixed)
    );
    println!("    \"probe_rtt_pct\": {:.2},", pct(rtt_truth, rtt_mixed));
    println!("    \"event_reduction\": {reduction:.1}");
    println!("  }}");
    println!("}}");

    // Sanity, not acceptance: both runs must actually exercise the
    // shared bottleneck and finish their foreground work.
    assert!(probes_truth > 0 && probes_mixed > 0);
    assert_eq!(
        mixed.profile.fluid.completed, BG_FLOWS as u64,
        "all background fluid flows must complete"
    );
}
