//! Checkpoint/branch study: quantify the what-if speedup of
//! `massf_snapshot::Session::branch` (BENCH_snapshot.json).
//!
//! The workload is N what-if explorations of the same scenario, each
//! diverging only in its final stretch (extra traffic injected after
//! the branch point). Two ways to run it:
//!
//! - **full replay**: every what-if is a straight simulation from t=0 —
//!   the prefix is recomputed N times (`O(N·(prefix+suffix))`).
//! - **branch**: the prefix runs once, a checkpoint is saved, and every
//!   what-if forks off it (`O(prefix + N·suffix)` plus snapshot cost).
//!
//! Both produce bit-identical results per what-if (asserted for every
//! branch, every run — the speedup is only meaningful if the answers
//! agree), so the comparison isolates pure redundant-prefix cost.
//! Snapshot size plus save/load wall cost are reported alongside.
//!
//! Extra flags on top of the shared harness set:
//!
//! ```text
//! --branches N     what-if branches to explore (default: 8)
//! --prefix-pct P   branch point as a percentage of the run (default: 80)
//! --smoke          tiny network, short run, self-checking (used by
//!                  scripts/check.sh): pins the CI geometry (Tiny
//!                  scale, <= 4 branches, 80% prefix), requires >= 2x,
//!                  and adds torn-snapshot crash recovery and
//!                  2-partition parallel-restore parity
//! ```

use massf_bench::HarnessOptions;
use massf_core::prelude::*;
use massf_engine::LpId;
use massf_netsim::{
    Agent, NetEvent, NetSimBuilder, NoApp, SimOutput, DEFAULT_ROUTE_CACHE_CAPACITY, MAX_RETRIES,
};
use massf_routing::{CostMetric, FlatResolver};
use massf_snapshot::{recover_latest, scenario_fingerprint, ExecMode, Session};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Instant;

struct StudyOptions {
    harness: HarnessOptions,
    branches: usize,
    prefix_pct: u64,
    smoke: bool,
}

fn parse_extra(harness: HarnessOptions, rest: Vec<String>) -> StudyOptions {
    let mut opts = StudyOptions {
        harness,
        branches: 8,
        prefix_pct: 80,
        smoke: false,
    };
    let mut iter = rest.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| match iter.next() {
            Some(v) => v,
            None => HarnessOptions::usage_exit(&format!("{flag} needs a value")),
        };
        match arg.as_str() {
            "--branches" => {
                let v = value("--branches");
                opts.branches = match v.parse() {
                    Ok(n) if n > 0 => n,
                    _ => HarnessOptions::usage_exit(&format!(
                        "--branches must be a positive number, got {v:?}"
                    )),
                };
            }
            "--prefix-pct" => {
                let v = value("--prefix-pct");
                opts.prefix_pct = match v.parse() {
                    Ok(p) if (1..100).contains(&p) => p,
                    _ => HarnessOptions::usage_exit(&format!(
                        "--prefix-pct must be in 1..100, got {v:?}"
                    )),
                };
            }
            "--smoke" => opts.smoke = true,
            other => HarnessOptions::usage_exit(&format!(
                "unknown argument {other:?} (extra flags: --branches/--prefix-pct/--smoke)"
            )),
        }
    }
    opts
}

/// Seeded base traffic: TCP flows between random host pairs, injected
/// over the prefix portion of the run.
fn base_traffic(hosts: &[NodeId], until: SimTime, flows: usize, seed: u64) -> Agent {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC4EC);
    let mut agent = Agent::new();
    for _ in 0..flows {
        let src = hosts[rng.gen_range(0..hosts.len())];
        let dst = hosts[rng.gen_range(0..hosts.len())];
        if src == dst {
            continue;
        }
        let at = SimTime(rng.gen_range(0..until.as_ns().max(1)));
        agent.inject_tcp(at, src, dst, 10_000 + rng.gen_range(0u64..190_000));
    }
    agent
}

/// The divergent future explored by what-if `branch`: a burst of extra
/// flows injected after the branch point, different per branch.
fn suffix_traffic(
    hosts: &[NodeId],
    from: SimTime,
    until: SimTime,
    flows: usize,
    seed: u64,
    branch: usize,
) -> Vec<(SimTime, LpId, NetEvent)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB4A7 ^ (branch as u64) << 17);
    let span = (until.as_ns() - from.as_ns()).max(1);
    let mut events = Vec::new();
    for _ in 0..flows {
        let src = hosts[rng.gen_range(0..hosts.len())];
        let dst = hosts[rng.gen_range(0..hosts.len())];
        if src == dst {
            continue;
        }
        let at = SimTime(from.as_ns() + rng.gen_range(0..span));
        events.push((
            at,
            LpId(src.0),
            NetEvent::StartFlow {
                dst,
                bytes: 20_000 + rng.gen_range(0u64..80_000),
            },
        ));
    }
    events
}

fn assert_branch_matches(b: usize, session: &Session, replay: &SimOutput<NoApp>) {
    assert_eq!(
        session.total_events(),
        replay.stats.total_events,
        "branch {b} event count diverged from its full replay"
    );
    assert_eq!(
        session.lp_events(),
        &replay.stats.lp_events[..],
        "branch {b} per-LP attribution diverged from its full replay"
    );
    assert_eq!(
        session.profile(),
        &replay.profile,
        "branch {b} traffic profile diverged from its full replay"
    );
}

fn main() {
    let (harness, rest) = HarnessOptions::from_env_partial();
    let mut opts = parse_extra(harness, rest);
    if opts.smoke {
        // The smoke gate asserts a >= 2x speedup, which only the CI
        // geometry guarantees (4 branches at 80% prefix are ideally
        // 2.5x); pin it like the scale, ignoring contrary flags.
        opts.harness.scale = Scale::Tiny;
        opts.branches = opts.branches.min(4);
        opts.prefix_pct = 80;
    }
    let scale = opts.harness.scale;
    let seed = opts.harness.seed;
    let duration = if opts.smoke {
        SimTime::from_secs(5)
    } else {
        scale.run_duration().max(SimTime::from_secs(15))
    };
    let branch_at = SimTime(duration.as_ns() / 100 * opts.prefix_pct);

    eprintln!("# generating {scale:?} single-AS network (seed {seed}) …");
    let net = generate_flat_network(&scale.flat_config(seed));
    let hosts = net.host_ids();
    let base_flows = (hosts.len() * 2).clamp(64, 4000);
    let suffix_flows = (base_flows / 8).max(8);

    let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
    let mut builder = NetSimBuilder::new(net.clone(), resolver.clone());
    builder.add_agent(base_traffic(&hosts, branch_at, base_flows, seed));
    let shared = builder.shared();
    let initial = builder.initial_events();
    let suffixes: Vec<Vec<(SimTime, LpId, NetEvent)>> = (0..opts.branches)
        .map(|b| suffix_traffic(&hosts, branch_at, duration, suffix_flows, seed, b))
        .collect();

    println!("== checkpoint_study ({scale:?}, seed {seed}) ==");
    println!(
        "network: {} nodes / {} links; {} base flows, branch at {:.1}s of {:.1}s, \
         {} branches x {} what-if flows",
        net.node_count(),
        net.links.len(),
        base_flows,
        branch_at.as_secs_f64(),
        duration.as_secs_f64(),
        opts.branches,
        suffix_flows
    );

    // Both modes are timed best-of-2: results are bit-identical across
    // repeats (asserted below), so a repeat only defends the wall-clock
    // numbers — one fsync hiccup or scheduler stall on a shared host
    // must not decide the smoke gate.
    const TIMING_REPS: usize = 2;

    // ---- Mode A: every what-if is a full replay from t = 0. ----
    eprintln!("# mode A: {} full replays x{TIMING_REPS} …", opts.branches);
    let run_full_replays = || -> (f64, Vec<SimOutput<NoApp>>) {
        let t = Instant::now();
        let replays = (0..opts.branches)
            .map(|b| {
                let mut replay = NetSimBuilder::new(net.clone(), resolver.clone());
                replay.add_agent(base_traffic(&hosts, branch_at, base_flows, seed));
                replay.add_initial_events(suffixes[b].clone());
                replay.run_sequential(NoApp, duration)
            })
            .collect();
        (t.elapsed().as_secs_f64() * 1e3, replays)
    };
    let (mut full_replay_ms, replays) = run_full_replays();
    for _ in 1..TIMING_REPS {
        full_replay_ms = full_replay_ms.min(run_full_replays().0);
    }

    // ---- Mode B: one shared prefix + checkpoint, then N branches. ----
    eprintln!(
        "# mode B: shared prefix + {} branches x{TIMING_REPS} …",
        opts.branches
    );
    let snap_dir =
        std::env::temp_dir().join(format!("massf-checkpoint-study-{}", std::process::id()));
    std::fs::create_dir_all(&snap_dir).expect("snapshot dir");
    let snap_path = snap_dir.join("prefix.snap");
    let fingerprint =
        scenario_fingerprint(&shared, &initial, DEFAULT_ROUTE_CACHE_CAPACITY, MAX_RETRIES);
    struct BranchMode {
        prefix_ms: f64,
        save_ms: f64,
        load_ms: f64,
        suffixes_ms: f64,
        snap_bytes: u64,
        trunk: Session,
        branch_runs: Vec<Session>,
    }
    impl BranchMode {
        fn total_ms(&self) -> f64 {
            self.prefix_ms + self.save_ms + self.load_ms + self.suffixes_ms
        }
    }
    let run_branch_mode = || -> BranchMode {
        let t_prefix = Instant::now();
        let mut trunk = Session::new(
            shared.clone(),
            initial.clone(),
            DEFAULT_ROUTE_CACHE_CAPACITY,
            MAX_RETRIES,
        );
        trunk
            .run_until(branch_at, &ExecMode::Sequential)
            .expect("prefix segment runs");
        let prefix_ms = t_prefix.elapsed().as_secs_f64() * 1e3;

        let t_save = Instant::now();
        trunk.save(&snap_path).expect("checkpoint saves");
        let save_ms = t_save.elapsed().as_secs_f64() * 1e3;
        let snap_bytes = std::fs::metadata(&snap_path)
            .expect("snapshot exists")
            .len();
        let t_load = Instant::now();
        let trunk =
            Session::load(&snap_path, shared.clone(), fingerprint).expect("checkpoint loads back");
        let load_ms = t_load.elapsed().as_secs_f64() * 1e3;

        let t_b = Instant::now();
        let branch_runs: Vec<Session> = (0..opts.branches)
            .map(|b| {
                let mut branch = trunk
                    .branch(shared.clone(), suffixes[b].clone())
                    .expect("branch forks");
                branch
                    .run_until(duration, &ExecMode::Sequential)
                    .expect("branch suffix runs");
                branch
            })
            .collect();
        let suffixes_ms = t_b.elapsed().as_secs_f64() * 1e3;
        BranchMode {
            prefix_ms,
            save_ms,
            load_ms,
            suffixes_ms,
            snap_bytes,
            trunk,
            branch_runs,
        }
    };
    let mut mode_b = run_branch_mode();
    for _ in 1..TIMING_REPS {
        let rep = run_branch_mode();
        // Repeats must agree with each other, not just with mode A.
        for (b, (fresh, kept)) in rep.branch_runs.iter().zip(&mode_b.branch_runs).enumerate() {
            assert_eq!(
                fresh.total_events(),
                kept.total_events(),
                "branch {b} diverged between timing repeats"
            );
        }
        if rep.total_ms() < mode_b.total_ms() {
            mode_b = rep;
        }
    }
    let BranchMode {
        prefix_ms,
        save_ms,
        load_ms,
        suffixes_ms,
        snap_bytes,
        trunk,
        branch_runs,
    } = mode_b;
    let branch_total_ms = prefix_ms + save_ms + load_ms + suffixes_ms;

    // Bit-identity per branch: the speedup below is only meaningful
    // because every branch answers exactly what its full replay answers.
    for (b, (session, replay)) in branch_runs.iter().zip(&replays).enumerate() {
        assert_branch_matches(b, session, replay);
    }

    let speedup = full_replay_ms / branch_total_ms;
    println!();
    println!("{:<34} {:>12}", "metric", "value");
    println!("{:<34} {:>12.1}", "full-replay total (ms)", full_replay_ms);
    println!("{:<34} {:>12.1}", "branch total (ms)", branch_total_ms);
    println!("{:<34} {:>12.1}", "  shared prefix (ms)", prefix_ms);
    println!("{:<34} {:>12.2}", "  checkpoint save (ms)", save_ms);
    println!("{:<34} {:>12.2}", "  checkpoint load (ms)", load_ms);
    println!("{:<34} {:>12.1}", "  branch suffixes (ms)", suffixes_ms);
    println!("{:<34} {:>12}", "snapshot size (bytes)", snap_bytes);
    println!(
        "{:<34} {:>12}",
        "events per what-if", replays[0].stats.total_events
    );
    println!("{:<34} {:>12.2}x", "what-if speedup", speedup);

    if opts.smoke {
        assert!(
            speedup >= 2.0,
            "branching must be at least 2x faster than full replays, got {speedup:.2}x"
        );

        // Crash recovery: tear the newest checkpoint; recovery must fall
        // back to the older valid one, report the skip, and the resumed
        // run must still be bit-identical.
        let older = snap_dir.join("epoch-a.snap");
        let newer = snap_dir.join("epoch-b.snap");
        trunk.save(&older).expect("older checkpoint saves");
        trunk.save(&newer).expect("newer checkpoint saves");
        let torn = {
            let full = std::fs::read(&newer).expect("read newest");
            full[..full.len() / 2].to_vec()
        };
        std::fs::write(&newer, torn).expect("tear newest");
        std::fs::remove_file(&snap_path).expect("drop the pristine copy");
        let report =
            recover_latest(&snap_dir, &shared, fingerprint).expect("older snapshot is valid");
        assert_eq!(report.path, older, "recovery must pick the intact file");
        assert_eq!(report.skipped.len(), 1, "the torn file must be recorded");
        let mut recovered = report
            .session
            .branch(shared.clone(), suffixes[0].clone())
            .expect("recovered session branches");
        recovered
            .run_until(duration, &ExecMode::Sequential)
            .expect("recovered branch runs");
        assert_branch_matches(0, &recovered, &replays[0]);

        // Parallel-restore parity: the same branch on a 2-partition
        // parity cut must match its sequential result bit for bit.
        let n = shared.lp_count();
        // simlint: allow(cast-lossy) -- partition index over a tiny smoke net
        let assignment: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let mut mll = f64::INFINITY;
        for link in &net.links {
            if assignment[link.a.index()] != assignment[link.b.index()] {
                mll = mll.min(link.latency_ms);
            }
        }
        let mode = ExecMode::Parallel {
            assignment,
            window: SimTime::from_ms_f64(mll),
        };
        let mut par = trunk
            .branch(shared.clone(), suffixes[0].clone())
            .expect("parallel branch forks");
        par.run_until(duration, &mode)
            .expect("parallel branch runs");
        assert_branch_matches(0, &par, &replays[0]);

        println!();
        println!("smoke checks passed");
    }
    std::fs::remove_dir_all(&snap_dir).expect("cleanup");
}
