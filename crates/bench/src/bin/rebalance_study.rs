//! Online re-partitioning study: how much load imbalance does the
//! epoch-cadenced rebalancer (`massf_snapshot::Session::run_rebalancing`)
//! recover when the traffic pattern drifts away from the static HPROF
//! mapping it started on (BENCH_rebalance.json)?
//!
//! Setup, per scenario: a calibration run with uniform traffic feeds
//! HPROF the profile it would have measured at deployment time; the
//! scenario workload then *moves* — regional busy-hours rotate across
//! the map, or link flaps reroute a hot region's transit — exactly the
//! drift a static mapping cannot follow. Two drivers replay the same
//! workload from the same initial mapping:
//!
//! - **static**: the rebalancing driver with the trigger threshold at
//!   `u64::MAX` — identical epoch segmentation, zero migrations (what
//!   the static HPROF mapping delivers, measured apples-to-apples);
//! - **adaptive**: the configured threshold — migrations whenever an
//!   epoch's measured max/mean load exceeds it.
//!
//! Both are asserted bit-identical to one sequential reference run
//! before anything is reported (the speedup compares equal answers; the
//! decision signal is per-LP event counts, never wall-clock). The
//! headline metric is aggregate max/mean partition load permille
//! (`RebalanceOutcome::aggregate_imbalance_permille`): each barrier
//! window costs its busiest partition, so this ratio is the parallel
//! time a cluster would pay. Critical-path event counts
//! (`ExecutionStats::critical_path_events`) are reported alongside as
//! the schedule-independent proxy.
//!
//! Extra flags on top of the shared harness set:
//!
//! ```text
//! --epoch-ms MS    rebalance epoch cadence (default: 500)
//! --threshold P    trigger threshold, permille of perfect balance
//!                  (default: 1200 = rebalance when max > 1.2x mean)
//! --max-moves N    per-epoch migration budget (default: 64)
//! --smoke          tiny network, short run, self-checking (used by
//!                  scripts/check.sh): asserts bit-identity for both
//!                  drivers and >= 1.3x imbalance reduction with a
//!                  critical-path reduction on both scenarios
//! ```

use massf_bench::HarnessOptions;
use massf_core::prelude::*;
use massf_engine::RebalanceConfig;
use massf_netsim::{
    Agent, FaultScript, FaultState, NetSimBuilder, NoApp, SimOutput, DEFAULT_ROUTE_CACHE_CAPACITY,
    MAX_RETRIES,
};
use massf_routing::{CostMetric, FlatResolver};
use massf_snapshot::{RebalanceOutcome, RebalancePolicy, Session};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

struct StudyOptions {
    harness: HarnessOptions,
    epoch: SimTime,
    threshold: u64,
    max_moves: usize,
    smoke: bool,
}

fn parse_extra(harness: HarnessOptions, rest: Vec<String>) -> StudyOptions {
    let mut opts = StudyOptions {
        harness,
        epoch: SimTime::from_ms(500),
        threshold: 1200,
        max_moves: 64,
        smoke: false,
    };
    let mut iter = rest.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| match iter.next() {
            Some(v) => v,
            None => HarnessOptions::usage_exit(&format!("{flag} needs a value")),
        };
        match arg.as_str() {
            "--epoch-ms" => {
                let v = value("--epoch-ms");
                opts.epoch = match v.parse::<u64>() {
                    Ok(ms) if ms > 0 => SimTime::from_ms(ms),
                    _ => HarnessOptions::usage_exit(&format!(
                        "--epoch-ms must be a positive number, got {v:?}"
                    )),
                };
            }
            "--threshold" => {
                let v = value("--threshold");
                opts.threshold = match v.parse() {
                    Ok(p) if p >= 1000 => p,
                    _ => HarnessOptions::usage_exit(&format!(
                        "--threshold is permille of perfect balance and must be >= 1000, got {v:?}"
                    )),
                };
            }
            "--max-moves" => {
                let v = value("--max-moves");
                opts.max_moves = match v.parse() {
                    Ok(n) if n > 0 => n,
                    _ => HarnessOptions::usage_exit(&format!(
                        "--max-moves must be a positive number, got {v:?}"
                    )),
                };
            }
            "--smoke" => opts.smoke = true,
            other => HarnessOptions::usage_exit(&format!(
                "unknown argument {other:?} (extra flags: --epoch-ms/--threshold/--max-moves/--smoke)"
            )),
        }
    }
    opts
}

/// Uniform calibration traffic: what HPROF profiles at deployment time.
fn uniform_traffic(hosts: &[NodeId], duration: SimTime, flows: usize, seed: u64) -> Agent {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xCA11);
    let mut agent = Agent::new();
    let span = duration.as_ns().max(1);
    for _ in 0..flows {
        let src = hosts[rng.gen_range(0..hosts.len())];
        let dst = hosts[rng.gen_range(0..hosts.len())];
        if src == dst {
            continue;
        }
        agent.inject_tcp(
            SimTime(rng.gen_range(0..span)),
            src,
            dst,
            10_000 + rng.gen_range(0u64..90_000),
        );
    }
    agent
}

/// Regional busy-hour rotation: the run is split into `groups.len()`
/// phases and phase `p`'s flows run only among the hosts HPROF placed
/// in partition `p` — the load sweeps across the map while every static
/// mapping keeps each region colocated (that *is* the cut-minimizing
/// choice). `fluid_every` > 0 adds one fluid background flow per that
/// many TCP flows so migration moves mixed-fidelity state too.
fn phased_traffic(
    groups: &[Vec<NodeId>],
    duration: SimTime,
    flows_per_phase: usize,
    fluid_every: usize,
    seed: u64,
) -> Agent {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB0257);
    let mut agent = Agent::new();
    let phases = groups.len() as u64;
    let phase_ns = (duration.as_ns() / phases.max(1)).max(1);
    for (p, group) in groups.iter().enumerate() {
        if group.len() < 2 {
            continue;
        }
        let base = p as u64 * phase_ns;
        for i in 0..flows_per_phase {
            let src = group[rng.gen_range(0..group.len())];
            let dst = group[rng.gen_range(0..group.len())];
            if src == dst {
                continue;
            }
            let at = SimTime(base + rng.gen_range(0..phase_ns));
            if fluid_every > 0 && i % fluid_every == 0 {
                agent.inject_fluid(at, src, dst, 200_000 + rng.gen_range(0u64..800_000));
            } else {
                agent.inject_tcp(at, src, dst, 10_000 + rng.gen_range(0u64..90_000));
            }
        }
    }
    agent
}

struct DriverRun {
    outcome: RebalanceOutcome,
    partitions: u32,
    final_assignment: Vec<u32>,
    session: Session,
}

fn run_driver(
    builder: &NetSimBuilder,
    policy: RebalancePolicy,
    assignment: Vec<u32>,
    duration: SimTime,
) -> DriverRun {
    let mut session = Session::new_rebalancing(
        builder.shared(),
        builder.initial_events(),
        DEFAULT_ROUTE_CACHE_CAPACITY,
        MAX_RETRIES,
        policy,
        assignment,
    )
    .expect("valid policy and assignment");
    let outcome = session.run_rebalancing(duration).expect("driver runs");
    let state = session.rebalance_state().expect("rebalancing session");
    let partitions = state.partitions;
    let final_assignment = state.assignment.clone();
    DriverRun {
        outcome,
        partitions,
        final_assignment,
        session,
    }
}

fn assert_driver_matches(name: &str, run: &DriverRun, reference: &SimOutput<NoApp>) {
    assert_eq!(
        run.session.total_events(),
        reference.stats.total_events,
        "{name} driver event count diverged from the sequential reference"
    );
    assert_eq!(
        run.session.lp_events(),
        &reference.stats.lp_events[..],
        "{name} driver per-LP attribution diverged from the sequential reference"
    );
    assert_eq!(
        run.session.profile(),
        &reference.profile,
        "{name} driver traffic profile diverged from the sequential reference"
    );
}

struct ScenarioReport {
    name: &'static str,
    static_run: DriverRun,
    adaptive_run: DriverRun,
}

impl ScenarioReport {
    fn static_imbalance(&self) -> u64 {
        self.static_run
            .outcome
            .aggregate_imbalance_permille(self.static_run.partitions as usize)
    }
    fn adaptive_imbalance(&self) -> u64 {
        self.adaptive_run
            .outcome
            .aggregate_imbalance_permille(self.adaptive_run.partitions as usize)
    }
    fn improvement(&self) -> f64 {
        self.static_imbalance() as f64 / self.adaptive_imbalance().max(1) as f64
    }
}

fn report_scenario(r: &ScenarioReport) {
    let (s, a) = (&r.static_run.outcome, &r.adaptive_run.outcome);
    println!();
    println!("scenario: {}", r.name);
    println!("{:<34} {:>12} {:>12}", "metric", "static", "adaptive");
    println!(
        "{:<34} {:>12} {:>12}",
        "max/mean load (permille)",
        r.static_imbalance(),
        r.adaptive_imbalance()
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "critical-path events", s.critical_path_events, a.critical_path_events
    );
    println!("{:<34} {:>12} {:>12}", "epochs", s.epochs, a.epochs);
    println!(
        "{:<34} {:>12} {:>12}",
        "rebalances", s.rebalances, a.rebalances
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "LP migrations", s.migrations, a.migrations
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "windows executed", s.windows_executed, a.windows_executed
    );
    let moved = r
        .static_run
        .final_assignment
        .iter()
        .zip(&r.adaptive_run.final_assignment)
        .filter(|(x, y)| x != y)
        .count();
    println!(
        "{:<34} {:>12} {:>12}",
        "LPs off the initial mapping", 0, moved
    );
    println!("{:<34} {:>11.2}x", "imbalance improvement", r.improvement());
}

fn main() {
    let (harness, rest) = HarnessOptions::from_env_partial();
    let mut opts = parse_extra(harness, rest);
    if opts.smoke {
        // The smoke gate asserts >= 1.3x recovered imbalance, which
        // needs several epochs per busy-hour phase; pin the geometry.
        opts.harness.scale = Scale::Tiny;
        opts.epoch = SimTime::from_ms(250);
        opts.threshold = opts.threshold.min(1200);
    }
    let scale = opts.harness.scale;
    let seed = opts.harness.seed;
    let k = opts.harness.engines();
    let duration = if opts.smoke {
        SimTime::from_secs(8)
    } else {
        scale.run_duration().max(SimTime::from_secs(10))
    };
    let policy = RebalancePolicy {
        cfg: RebalanceConfig {
            epoch: opts.epoch,
            threshold_permille: opts.threshold,
            max_moves: opts.max_moves,
        },
        ..RebalancePolicy::default()
    };
    let static_policy = RebalancePolicy {
        cfg: RebalanceConfig {
            // Same epoch segmentation, trigger can never fire: this is
            // the static mapping measured through the identical driver.
            threshold_permille: u64::MAX,
            ..policy.cfg
        },
        ..policy
    };

    eprintln!("# generating {scale:?} single-AS network (seed {seed}) …");
    let net = generate_flat_network(&scale.flat_config(seed));
    let hosts = net.host_ids();
    let flows = (hosts.len() * 2).clamp(64, 4000);

    // Deployment-time HPROF mapping: profile uniform calibration
    // traffic, map with the profiled weights.
    eprintln!("# calibration run + HPROF mapping ({k} engines) …");
    let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
    let mut calib = NetSimBuilder::new(net.clone(), resolver.clone());
    calib.add_agent(uniform_traffic(&hosts, duration, flows, seed));
    let calib_out = calib.run_sequential(NoApp, duration);
    let cfg = opts.harness.mapping_config();
    let mapping = map_network(&net, Some(&calib_out.profile), MappingApproach::Hprof, &cfg);
    let initial = mapping.partition.assignment.clone();

    // The regions HPROF colocated: phase p's busy hour lands on the
    // hosts of partition p.
    let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for &h in &hosts {
        groups[initial[h.index()] as usize % k].push(h);
    }

    println!("== rebalance_study ({scale:?}, seed {seed}) ==");
    println!(
        "network: {} nodes / {} links, {k} partitions, {:.0}s run, \
         epoch {:.0} ms, threshold {} permille, {} moves/epoch",
        net.node_count(),
        net.links.len(),
        duration.as_secs_f64(),
        opts.epoch.as_ms_f64(),
        opts.threshold,
        opts.max_moves
    );

    let run_scenario = |name: &'static str, builder: &NetSimBuilder| -> ScenarioReport {
        eprintln!("# {name}: sequential reference …");
        let reference = builder.run_sequential(NoApp, duration);
        eprintln!("# {name}: static driver …");
        let static_run = run_driver(builder, static_policy, initial.clone(), duration);
        eprintln!("# {name}: adaptive driver …");
        let adaptive_run = run_driver(builder, policy, initial.clone(), duration);
        assert_driver_matches(name, &static_run, &reference);
        assert_driver_matches(name, &adaptive_run, &reference);
        ScenarioReport {
            name,
            static_run,
            adaptive_run,
        }
    };

    // Scenario 1 — bursty: busy hours rotate through all k regions.
    let mut bursty = NetSimBuilder::new(net.clone(), resolver.clone());
    bursty.add_agent(phased_traffic(&groups, duration, flows / k.max(1), 8, seed));
    let bursty_report = run_scenario("bursty busy-hour rotation", &bursty);

    // Scenario 2 — fault-flap: two regions trade the busy hour while
    // link flaps in the middle of the run reroute the transit load.
    let start = SimTime(duration.as_ns() * 3 / 10);
    let end = SimTime(duration.as_ns() * 7 / 10);
    let flaps = if opts.smoke { 4 } else { 12 };
    let script =
        FaultScript::random_link_flaps(&net, flaps, SimTime::from_ms(800), start, end, seed)
            .unwrap_or_else(|e| {
                HarnessOptions::usage_exit(&format!("cannot build fault script: {e}"))
            });
    let faults = FaultState::flat(&net, CostMetric::Latency, script)
        .expect("random_link_flaps scripts validate");
    let two_regions: Vec<Vec<NodeId>> = groups.iter().take(2).cloned().collect();
    let mut flap = NetSimBuilder::new_with_faults(net.clone(), faults);
    flap.add_agent(phased_traffic(
        &two_regions,
        duration,
        flows / 2,
        8,
        seed ^ 1,
    ));
    let flap_report = run_scenario("fault-flap region shift", &flap);

    for r in [&bursty_report, &flap_report] {
        report_scenario(r);
    }

    if opts.smoke {
        for r in [&bursty_report, &flap_report] {
            assert!(
                r.adaptive_run.outcome.migrations > 0,
                "{}: skewed traffic never triggered a migration",
                r.name
            );
            assert!(
                r.improvement() >= 1.3,
                "{}: adaptive must recover >= 1.3x of the static imbalance, got {:.2}x \
                 ({} -> {} permille)",
                r.name,
                r.improvement(),
                r.static_imbalance(),
                r.adaptive_imbalance()
            );
            assert!(
                r.adaptive_run.outcome.critical_path_events
                    < r.static_run.outcome.critical_path_events,
                "{}: migrations must shorten the critical path, got {} -> {}",
                r.name,
                r.static_run.outcome.critical_path_events,
                r.adaptive_run.outcome.critical_path_events
            );
        }
        println!();
        println!("smoke checks passed");
    }
}
