//! Figure 9: Parallel Efficiency on the Single-AS Network.
//!
//! Regenerates one panel of the paper's evaluation (see the experiment
//! index in DESIGN.md) for both workloads over the paper_four approaches.

use massf_bench::{print_figure, print_improvements, run_suite, HarnessOptions};
use massf_core::prelude::*;

fn main() {
    let opts = HarnessOptions::from_env();
    let rows = run_suite(
        ScenarioKind::SingleAs,
        &opts,
        &MappingApproach::paper_four(),
    );
    let title = format!(
        "Figure 9: Parallel Efficiency on the Single-AS Network (scale {:?}, {} engines)",
        opts.scale,
        opts.engines()
    );
    print_figure(&title, &rows, "PE", |m| m.parallel_efficiency);
    print_improvements(&rows);
}
