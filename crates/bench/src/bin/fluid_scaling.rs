//! Fluid-model scaling bench: million-flow background traffic on one
//! host (BENCH_fluid.json).
//!
//! Builds `groups` disconnected host pairs (one bottleneck link each)
//! and starts `flows_per_group` fluid flows on every pair, staggered
//! over the first 100 ms. All of them are concurrently live for most of
//! the run — the probe phase stops mid-transfer and counts live flows —
//! then the measured phase runs to completion and compares the executed
//! event count against the analytic packet-level equivalent of the same
//! byte volume (`segments × 2·hops` kernel events per flow, the
//! *one-hop* lower bound, so the reported reduction is conservative).
//!
//! ```text
//! cargo run --release -p massf-bench --bin fluid_scaling [-- --smoke]
//! ```
//!
//! `--smoke` runs a seconds-scale fixture for CI and self-checks the
//! acceptance properties: ≥ 50× event reduction, max-min invariants at
//! the probe point, and sequential ↔ parallel bit-identity (window
//! capped at `FLUID_CONTROL_DELAY`). The full run sustains 1 048 576
//! concurrent fluid flows.

use massf_engine::{run_sequential, SimTime};
use massf_netsim::packet::segments_for;
use massf_netsim::world::events_per_roundtrip;
use massf_netsim::{NetSimBuilder, NetWorld, NoApp, FLUID_CONTROL_DELAY};
use massf_routing::{CostMetric, FlatResolver};
use massf_topology::{AsId, Network, NodeKind, Point};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    label: &'static str,
    groups: usize,
    flows_per_group: usize,
    bytes_per_flow: u64,
    /// Virtual time at which every flow is live and none has finished.
    probe: SimTime,
    end: SimTime,
}

/// Per-group bottleneck: 1 Gbit/s ⇒ exactly 125 MB/s of shareable
/// capacity, so fair shares stay integral-ish and finish times are easy
/// to predict.
const LINK_BPS: f64 = 1e9;
/// All starts are staggered across this window.
const START_WINDOW: SimTime = SimTime::from_ms(100);

fn build(cfg: &Config) -> NetSimBuilder {
    let mut net = Network::new();
    let mut pairs = Vec::with_capacity(cfg.groups);
    for g in 0..cfg.groups {
        let x = g as f64;
        let a = net.add_node(NodeKind::Host, Point::new(x, 0.0), AsId(0));
        let b = net.add_node(NodeKind::Host, Point::new(x, 1.0), AsId(0));
        net.add_link(a, b, LINK_BPS, 1.0);
        pairs.push((a, b));
    }
    let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
    let mut builder = NetSimBuilder::new(net, resolver);
    let total = cfg.groups * cfg.flows_per_group;
    let spacing = (START_WINDOW.as_ns() / total as u64).max(1);
    for i in 0..total {
        let (a, b) = pairs[i % cfg.groups];
        builder.add_fluid_flow(
            SimTime(i as u64 * spacing),
            a,
            b,
            cfg.bytes_per_flow,
            0, // unbounded: bottleneck-limited
        );
    }
    builder
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = match args.as_slice() {
        [] => false,
        [a] if a == "--smoke" => true,
        other => {
            eprintln!("error: unknown arguments {other:?}\nusage: fluid_scaling [--smoke]");
            std::process::exit(2);
        }
    };
    let cfg = if smoke {
        Config {
            label: "smoke_16k",
            groups: 64,
            flows_per_group: 256,
            bytes_per_flow: 600_000,
            probe: SimTime::from_ms(300),
            end: SimTime::from_secs(5),
        }
    } else {
        Config {
            label: "flows_1m",
            groups: 1024,
            flows_per_group: 1024,
            bytes_per_flow: 1_500_000,
            probe: SimTime::from_secs(1),
            end: SimTime::from_secs(30),
        }
    };
    let total_flows = (cfg.groups * cfg.flows_per_group) as u64;
    eprintln!(
        "# {}: {} groups × {} flows = {} fluid flows, {} B each …",
        cfg.label, cfg.groups, cfg.flows_per_group, total_flows, cfg.bytes_per_flow
    );

    let builder = build(&cfg);
    let shared = builder.shared();
    let events = builder.initial_events();

    // Probe: stop mid-transfer, count live flows, check solver
    // invariants over the full million-flow state.
    eprintln!("# probe run to {:.1}s …", cfg.probe.as_secs_f64());
    let n = shared.lp_count();
    let mut probe_world = NetWorld::new(shared.clone(), NoApp);
    run_sequential(&mut probe_world, n, events.clone(), cfg.probe);
    let concurrent = probe_world.fluid_live_flows() as u64;
    eprintln!("# {concurrent} flows live at the probe point");
    if let Err(e) = probe_world.check_fluid_invariants() {
        eprintln!("error: max-min invariants violated at probe: {e}");
        std::process::exit(1);
    }
    assert_eq!(
        concurrent, total_flows,
        "every flow must be mid-transfer at the probe point"
    );

    // Measured run: everything completes; wall-clock timed.
    eprintln!("# measured run to {:.1}s …", cfg.end.as_secs_f64());
    let wall = Instant::now();
    let out = builder.run_sequential(NoApp, cfg.end);
    let fluid_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert_eq!(out.profile.fluid.started, total_flows);
    assert_eq!(
        out.profile.fluid.completed, total_flows,
        "all flows must finish inside the horizon"
    );

    // Analytic packet-level equivalent of the same delivered bytes:
    // every MSS segment costs `2·hops` kernel events (data + ACK
    // arrivals), and each group path is a single hop.
    let packet_equiv =
        total_flows * segments_for(cfg.bytes_per_flow) as u64 * events_per_roundtrip(1);
    let reduction = packet_equiv as f64 / out.stats.total_events as f64;
    eprintln!(
        "# {} fluid events vs {} packet-equivalent: {reduction:.0}× reduction, {:.0} ms wall",
        out.stats.total_events, packet_equiv, fluid_ms
    );

    // Self-checks (CI gate under --smoke; cheap enough to always run).
    assert!(
        reduction >= 50.0,
        "event-count reduction {reduction:.1}× is below the 50× acceptance floor"
    );
    let mut par_line = String::new();
    if smoke {
        // Bit-identity: the same workload on the threaded conservative
        // executor. Groups are whole per partition, so no topology link
        // is cut and the window is bounded only by the fluid control
        // delay.
        let nodes = shared.net.node_count();
        let parts = 4u32;
        // simlint: allow(cast-lossy) -- group index over a bench fixture
        let assignment: Vec<u32> = (0..nodes).map(|i| ((i / 2) as u32) % parts).collect();
        let par = builder
            .try_run_parallel(
                NoApp,
                cfg.end,
                FLUID_CONTROL_DELAY,
                &assignment,
                parts as usize,
            )
            .expect("window equals the fluid control delay, the promised lookahead");
        assert_eq!(
            par.stats.total_events, out.stats.total_events,
            "parallel fluid run diverged from sequential"
        );
        assert_eq!(
            par.stats.lp_events, out.stats.lp_events,
            "per-LP event attribution diverged"
        );
        assert_eq!(
            par.profile, out.profile,
            "parallel fluid profile diverged from sequential"
        );
        par_line = format!(",\n    \"parallel_bit_identical\": true, \"partitions\": {parts}");
        eprintln!("# smoke checks passed (reduction ≥ 50×, seq ↔ par bit-identical)");
    }

    let events_per_sec = out.stats.total_events as f64 / (fluid_ms / 1e3);
    println!("{{");
    println!("  \"config\": \"{}\",", cfg.label);
    println!(
        "  \"workload\": {{ \"groups\": {}, \"flows_per_group\": {}, \"bytes_per_flow\": {}, \"link_bps\": {}, \"start_window_ms\": {}, \"horizon_s\": {} }},",
        cfg.groups,
        cfg.flows_per_group,
        cfg.bytes_per_flow,
        LINK_BPS,
        START_WINDOW.as_ms_f64(),
        cfg.end.as_secs_f64()
    );
    println!("  \"results\": {{");
    println!("    \"concurrent_fluid_flows\": {concurrent},");
    println!(
        "    \"completed_fluid_flows\": {},",
        out.profile.fluid.completed
    );
    println!("    \"fluid_events\": {},", out.stats.total_events);
    println!("    \"packet_equivalent_events\": {packet_equiv},");
    println!("    \"event_reduction\": {reduction:.1},");
    println!("    \"wall_ms\": {fluid_ms:.1},");
    println!("    \"events_per_sec\": {events_per_sec:.0},");
    println!("    \"finish_arms\": {},", out.profile.fluid.finish_arms);
    println!(
        "    \"rate_recomputes\": {},",
        out.profile.fluid.rate_recomputes
    );
    println!(
        "    \"bottleneck_recomputes\": {},",
        out.profile.fluid.bottleneck_recomputes
    );
    println!(
        "    \"cap_updates\": {}{par_line}",
        out.profile.fluid.cap_updates
    );
    println!("  }}");
    println!("}}");
}
