//! Memory-footprint bench: live/peak heap bytes per entity for
//! million-host residency (BENCH_memory.json).
//!
//! Builds the resident pieces of a packet-level world phase by phase —
//! topology, routing, `SharedNet` (CSR port table), `NetWorld`
//! (struct-of-arrays host/flow state) — then opens a population of
//! long-running TCP flows and runs briefly so every flow is resident
//! mid-transfer, measuring the live-byte delta of each phase with the
//! feature-gated counting allocator (`massf_bench::alloccount`).
//!
//! Flow destinations are concentrated on a small host set so the lazy
//! per-destination SPT cache stays bounded: this bench measures bytes,
//! not routing throughput (`route_resolution` covers that).
//!
//! ```text
//! cargo run --release -p massf-bench --features alloc-count \
//!   --bin mem_footprint [-- --smoke]
//! ```
//!
//! `--smoke` runs a seconds-scale configuration for CI; the full run
//! measures 100k and 1M hosts with 100k flows each.

use massf_bench::alloccount::{self, CountingAlloc};
use massf_engine::{run_sequential, EventRecord, LpId, SimTime};
use massf_netsim::{NetEvent, NetWorld, NoApp, Packet, SharedNet};
use massf_routing::{CostMetric, FlatResolver};
use massf_topology::{generate_flat_network, FlatTopologyConfig};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Flows stay mid-transfer for the whole measured run: far more bytes
/// than 50 ms of simulated time can deliver.
const FLOW_BYTES: u64 = 100 << 20;
/// Destinations are drawn from this many hosts (bounds the lazy SPT
/// cache; see module docs).
const DST_HOSTS: usize = 64;

struct Config {
    label: &'static str,
    hosts: usize,
    flows: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = match args.as_slice() {
        [] => false,
        [a] if a == "--smoke" => true,
        other => {
            eprintln!("error: unknown arguments {other:?}\nusage: mem_footprint [--smoke]");
            std::process::exit(2);
        }
    };
    let configs: &[Config] = if smoke {
        &[Config {
            label: "smoke_2k",
            hosts: 2_000,
            flows: 500,
        }]
    } else {
        &[
            Config {
                label: "hosts_100k",
                hosts: 100_000,
                flows: 100_000,
            },
            Config {
                label: "hosts_1m",
                hosts: 1_000_000,
                flows: 100_000,
            },
        ]
    };

    println!("{{");
    println!(
        "  \"static_sizes_bytes\": {{ \"packet\": {}, \"net_event\": {}, \"event_record\": {} }},",
        std::mem::size_of::<Packet>(),
        std::mem::size_of::<NetEvent>(),
        std::mem::size_of::<EventRecord<NetEvent>>()
    );
    for (i, cfg) in configs.iter().enumerate() {
        let comma = if i + 1 < configs.len() { "," } else { "" };
        run_config(cfg, comma);
    }
    println!("}}");
}

fn run_config(cfg: &Config, trailing_comma: &str) {
    // ~25 hosts per router, the paper's single-AS shape (§4.2 uses
    // 20k routers / 10k hosts for routing stress; residency scales the
    // host side instead).
    let routers = (cfg.hosts / 25).max(16);
    let base = alloccount::live_bytes();
    alloccount::reset_peak();

    eprintln!(
        "# {}: generating {} routers + {} hosts …",
        cfg.label, routers, cfg.hosts
    );
    let net = generate_flat_network(&FlatTopologyConfig {
        routers,
        hosts: cfg.hosts,
        metro_count: (routers / 500).max(4),
        seed: 2004,
        ..FlatTopologyConfig::default()
    });
    let nodes = net.node_count();
    let links = net.link_count();
    let host_ids = net.host_ids();
    let topology_bytes = alloccount::live_bytes() - base;

    eprintln!("# {}: building routing …", cfg.label);
    let before = alloccount::live_bytes();
    let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
    let core = resolver.domain().core_count();
    let routing_bytes = alloccount::live_bytes() - before;

    let before = alloccount::live_bytes();
    let shared = SharedNet::new(net, resolver);
    let shared_bytes = alloccount::live_bytes() - before;

    let before = alloccount::live_bytes();
    let mut world = NetWorld::new(shared, NoApp);
    let world_bytes = alloccount::live_bytes() - before;

    eprintln!("# {}: opening {} flows …", cfg.label, cfg.flows);
    let before = alloccount::live_bytes();
    let dsts = DST_HOSTS.min(host_ids.len());
    let initial: Vec<(SimTime, LpId, NetEvent)> = (0..cfg.flows)
        .map(|i| {
            let src = host_ids[i % host_ids.len()];
            let mut dst = host_ids[(i * 31 + 1) % dsts];
            if dst == src {
                dst = host_ids[(i * 31 + 2) % dsts];
            }
            (
                SimTime::ZERO,
                LpId(src.0),
                NetEvent::StartFlow {
                    dst,
                    bytes: FLOW_BYTES,
                },
            )
        })
        .collect();
    let stats = run_sequential(&mut world, nodes, initial, SimTime::from_ms(50));
    let flows_bytes = alloccount::live_bytes() - before;
    let live_total = alloccount::live_bytes() - base;
    let peak_total = alloccount::peak_bytes() - base;
    assert!(stats.total_events > 0, "flows must generate traffic");
    drop(world);

    let per = |bytes: usize, n: usize| bytes as f64 / n.max(1) as f64;
    println!("  \"{}\": {{", cfg.label);
    println!(
        "    \"nodes\": {nodes}, \"links\": {links}, \"core_routers\": {core}, \"flows\": {},",
        cfg.flows
    );
    println!("    \"events_run\": {},", stats.total_events);
    println!(
        "    \"topology_bytes\": {topology_bytes}, \"topology_bytes_per_node\": {:.1},",
        per(topology_bytes, nodes)
    );
    println!(
        "    \"routing_bytes\": {routing_bytes}, \"routing_bytes_per_node\": {:.1},",
        per(routing_bytes, nodes)
    );
    println!(
        "    \"shared_net_bytes\": {shared_bytes}, \"shared_net_bytes_per_node\": {:.1},",
        per(shared_bytes, nodes)
    );
    println!(
        "    \"world_bytes\": {world_bytes}, \"world_bytes_per_node\": {:.1},",
        per(world_bytes, nodes)
    );
    println!(
        "    \"flow_state_bytes\": {flows_bytes}, \"flow_state_bytes_per_flow\": {:.1},",
        per(flows_bytes, cfg.flows)
    );
    println!("    \"live_total_bytes\": {live_total}, \"peak_total_bytes\": {peak_total},");
    println!(
        "    \"live_total_gib\": {:.3}, \"peak_total_gib\": {:.3}",
        gib(live_total),
        gib(peak_total)
    );
    println!("  }}{trailing_comma}");
}

fn gib(bytes: usize) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}
