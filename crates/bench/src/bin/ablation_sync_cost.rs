//! Ablation: how sensitive is the HPROF-vs-TOP2 comparison to the
//! synchronization-cost model (the one exogenous hardware parameter)?
//!
//! Runs each mapping once, then re-scores the same measured trace under
//! scaled versions of the Figure-5 model — cheap because the cluster
//! model is applied to recorded per-window traces. Also ablates the
//! per-event cost. This substantiates DESIGN.md's claim that the
//! *orderings* are robust to the calibration constants.

use massf_bench::{HarnessOptions, MeasuredBarriers};
use massf_core::prelude::*;
use massf_netsim::NetSimBuilder;

fn main() {
    let opts = HarnessOptions::from_env();
    let scenario = Scenario::build(
        ScenarioKind::SingleAs,
        opts.scale,
        WorkloadKind::ScaLapack,
        opts.seed,
    );
    let cfg = opts.mapping_config();
    let base_model = opts.cluster_model();
    let duration = opts.scale.run_duration();
    let profile = run_profiling(&scenario, duration);

    // One measured run per approach; the mapping itself uses the
    // unscaled sync model (as the real system would have).
    let runs: Vec<ExperimentOutput> = [MappingApproach::Top2, MappingApproach::Hprof]
        .into_iter()
        .map(|a| {
            run_mapping_experiment_with_profile(
                &scenario,
                a,
                &cfg,
                &base_model,
                duration,
                a.needs_profile().then(|| profile.clone()),
            )
        })
        .collect();

    println!(
        "== Sync-cost ablation (single-AS {:?}, {} engines) ==",
        opts.scale,
        opts.engines()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>10} | {:>8} {:>8}",
        "C scale", "T_top2[s]", "T_hprof[s]", "HPROF adv", "PE_top2", "PE_hprof"
    );
    for scale in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let model = ClusterModel::new(
            SyncCostModel::new(
                base_model.sync.base_us * scale,
                base_model.sync.per_log2_us * scale,
            ),
            base_model.event_cost_us,
        );
        let t: Vec<f64> = runs
            .iter()
            .map(|r| model.predicted_time_secs(&r.run_stats, cfg.engines))
            .collect();
        let pe: Vec<f64> = runs
            .iter()
            .map(|r| model.parallel_efficiency(&r.run_stats, cfg.engines))
            .collect();
        println!(
            "{:>10.2} {:>12.2} {:>12.2} {:>9.1}% | {:>8.3} {:>8.3}",
            scale,
            t[0],
            t[1],
            (1.0 - t[1] / t[0]) * 100.0,
            pe[0],
            pe[1],
        );
    }

    println!("\n== Event-cost ablation (same traces) ==");
    println!(
        "{:>12} {:>12} {:>12} {:>10}",
        "t_event[us]", "T_top2[s]", "T_hprof[s]", "HPROF adv"
    );
    for t_event in [2.0f64, 5.0, 10.0, 20.0, 50.0] {
        let model = ClusterModel::new(base_model.sync, t_event);
        let t: Vec<f64> = runs
            .iter()
            .map(|r| model.predicted_time_secs(&r.run_stats, cfg.engines))
            .collect();
        println!(
            "{:>12.1} {:>12.2} {:>12.2} {:>9.1}%",
            t_event,
            t[0],
            t[1],
            (1.0 - t[1] / t[0]) * 100.0
        );
    }
    println!(
        "\n(HPROF's advantage grows with sync cost and shrinks as event\n\
         processing dominates — but the sign never flips.)"
    );

    // Measured executor sync cost per mapping: re-run each mapping on
    // the real parallel executor with the bench-side barrier observer
    // and put the measured barrier-wait next to the model's
    // window_count × C(N) term — both the nominal-window version the
    // cluster model uses and the skip-aware windows_executed × C(N)
    // that the fast-forward actually pays.
    let c_n_us = base_model.sync.cost_us(cfg.engines);
    println!(
        "\n== Measured executor sync cost ({} partitions, C(N) = {:.1} us) ==",
        cfg.engines, c_n_us
    );
    println!(
        "{:>8} {:>9} {:>10} {:>9} {:>14} {:>13} {:>13}",
        "mapping", "rounds", "executed", "skipped", "wait/part [us]", "model [us]", "skip-aware"
    );
    for r in &runs {
        if !r.mapping.achieved_mll_ms.is_finite() {
            println!("{:>8?} (nothing cut; no sync needed)", r.approach);
            continue;
        }
        let window = SimTime::from_ms_f64(r.mapping.achieved_mll_ms);
        if window == SimTime::ZERO {
            println!("{:>8?} (cut has zero MLL; skipped)", r.approach);
            continue;
        }
        let (app, events) = scenario.make_app();
        let mut builder = NetSimBuilder::new(scenario.net.clone(), scenario.resolver.clone());
        builder.add_initial_events(events);
        let observer = MeasuredBarriers::new(cfg.engines);
        match builder.try_run_parallel_observed(
            app,
            duration,
            window,
            &r.mapping.partition.assignment,
            cfg.engines,
            &observer,
        ) {
            Ok(out) => {
                let waits = &out.stats.barrier_wait_us;
                let mean = waits.iter().sum::<f64>() / waits.len().max(1) as f64;
                println!(
                    "{:>8?} {:>9} {:>10} {:>9} {:>14.1} {:>13.1} {:>13.1}",
                    r.approach,
                    out.stats.barrier_rounds,
                    out.stats.windows_executed,
                    out.stats.windows_skipped,
                    mean,
                    out.stats.window_count() as f64 * c_n_us,
                    out.stats.windows_executed as f64 * c_n_us,
                );
            }
            Err(e) => println!("{:>8?} run failed: {e}", r.approach),
        }
    }
    println!(
        "(model = window_count × C(N), the term the cluster model charges;\n\
         skip-aware = windows_executed × C(N), what the overhauled executor\n\
         pays after fast-forwarding empty windows. The measured wait column\n\
         is host scheduling on this container, not TeraGrid sync.)"
    );
}
