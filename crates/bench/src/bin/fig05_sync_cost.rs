//! Figure 5: synchronization cost of the TeraGrid cluster vs number of
//! simulation-engine nodes.
//!
//! Prints the fitted model C(N) at the paper's x-axis points, and — for
//! thread counts this host can actually run — a live measurement of one
//! barrier round for comparison. A second section runs the real
//! parallel executor over a small packet workload with the
//! [`MeasuredBarriers`] observer attached, reporting *measured*
//! per-partition barrier-wait time, executed barrier rounds, and the
//! empty windows the fast-forward skipped — the executor-level ground
//! truth behind the model's `window_count × C(N)` term.

use massf_bench::{measure_barrier_cost_us, MeasuredBarriers};
use massf_engine::synccost::SyncCostModel;
use massf_engine::SimTime;
use massf_netsim::{Agent, NetSimBuilder, NoApp};
use massf_routing::{CostMetric, FlatResolver};
use massf_topology::{generate_flat_network, FlatTopologyConfig};
use std::sync::Arc;

fn main() {
    let model = SyncCostModel::teragrid();
    println!("== Figure 5: Synchronization Cost of the TeraGrid Cluster ==");
    println!(
        "{:>6} {:>16} {:>22}",
        "nodes", "model C(N) [us]", "measured barrier [us]"
    );
    for n in [2usize, 6, 16, 48, 80, 112, 128] {
        let measured = if n <= 16 {
            format!("{:.1}", measure_barrier_cost_us(n, 200))
        } else {
            "-".to_string()
        };
        println!("{:>6} {:>16.1} {:>22}", n, model.cost_us(n), measured);
    }
    println!();
    println!(
        "paper anchor: C(100) ≈ 580 us (Section 3.4.1); model gives {:.1} us",
        model.cost_us(100)
    );

    // Measured executor sync cost: real parallel runs over a tiny flat
    // network, barrier waits measured by the bench-side observer (the
    // engine itself never reads the clock).
    let net = generate_flat_network(&FlatTopologyConfig::tiny());
    let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
    let hosts = net.host_ids();
    let duration = SimTime::from_secs(10);
    let traffic = || {
        let mut agent = Agent::new();
        for (i, pair) in hosts.chunks(2).take(24).enumerate() {
            if let [a, b] = pair {
                agent.inject_tcp(SimTime::from_ms(40 * i as u64), *a, *b, 40_000);
            }
        }
        agent
    };

    println!();
    println!(
        "== Measured executor synchronization (tiny flat network, {:.0}s) ==",
        duration.as_secs_f64()
    );
    println!(
        "{:>6} {:>9} {:>10} {:>9} {:>14} {:>10}",
        "parts", "rounds", "executed", "skipped", "wait/part [us]", "us/round"
    );
    for partitions in [2usize, 4, 8] {
        let assignment: Vec<u32> = (0..net.node_count())
            .map(|i| (i % partitions) as u32)
            .collect();
        let mut mll = f64::INFINITY;
        for link in &net.links {
            if assignment[link.a.index()] != assignment[link.b.index()] {
                mll = mll.min(link.latency_ms);
            }
        }
        let window = SimTime::from_ms_f64(mll);
        if window == SimTime::ZERO {
            println!("{partitions:>6} (cut has zero MLL; skipped)");
            continue;
        }
        let mut builder = NetSimBuilder::new(net.clone(), resolver.clone());
        builder.add_agent(traffic());
        let observer = MeasuredBarriers::new(partitions);
        match builder.try_run_parallel_observed(
            NoApp,
            duration,
            window,
            &assignment,
            partitions,
            &observer,
        ) {
            Ok(out) => {
                let waits = &out.stats.barrier_wait_us;
                let mean = waits.iter().sum::<f64>() / waits.len().max(1) as f64;
                let per_round = if out.stats.barrier_rounds > 0 {
                    mean / out.stats.barrier_rounds as f64
                } else {
                    0.0
                };
                println!(
                    "{:>6} {:>9} {:>10} {:>9} {:>14.1} {:>10.2}",
                    partitions,
                    out.stats.barrier_rounds,
                    out.stats.windows_executed,
                    out.stats.windows_skipped,
                    mean,
                    per_round
                );
            }
            Err(e) => println!("{partitions:>6} run failed: {e}"),
        }
    }
    println!(
        "(skipped = empty windows the fast-forward jumped; the pre-overhaul\n\
         executor paid 2 barriers for each of them. On a 1-core host the\n\
         wait column measures scheduling, not network sync — the model\n\
         above feeds the evaluation.)"
    );
}
