//! Figure 5: synchronization cost of the TeraGrid cluster vs number of
//! simulation-engine nodes.
//!
//! Prints the fitted model C(N) at the paper's x-axis points, and — for
//! thread counts this host can actually run — a live measurement of one
//! barrier round for comparison.

use massf_bench::measure_barrier_cost_us;
use massf_engine::synccost::SyncCostModel;

fn main() {
    let model = SyncCostModel::teragrid();
    println!("== Figure 5: Synchronization Cost of the TeraGrid Cluster ==");
    println!(
        "{:>6} {:>16} {:>22}",
        "nodes", "model C(N) [us]", "measured barrier [us]"
    );
    for n in [2usize, 6, 16, 48, 80, 112, 128] {
        let measured = if n <= 16 {
            format!("{:.1}", measure_barrier_cost_us(n, 200))
        } else {
            "-".to_string()
        };
        println!("{:>6} {:>16.1} {:>22}", n, model.cost_us(n), measured);
    }
    println!();
    println!(
        "paper anchor: C(100) ≈ 580 us (Section 3.4.1); model gives {:.1} us",
        model.cost_us(100)
    );
}
