//! Figure 3: load variation over the lifetime of the simulation.
//!
//! Runs the single-AS scenario under a TOP2 mapping and prints the
//! per-engine kernel-event rates over time (bucketed), showing how the
//! traffic workload per engine varies through the run.

use massf_bench::HarnessOptions;
use massf_core::prelude::*;

fn main() {
    let opts = HarnessOptions::from_env();
    let scenario = Scenario::build(
        ScenarioKind::SingleAs,
        opts.scale,
        WorkloadKind::ScaLapack,
        opts.seed,
    );
    let cfg = opts.mapping_config();
    let model = opts.cluster_model();
    let out = run_mapping_experiment(
        &scenario,
        MappingApproach::Top2,
        &cfg,
        &model,
        opts.scale.run_duration(),
    );

    let stats = &out.run_stats;
    let buckets = stats.coarse_trace.len();
    let bucket_secs = stats.window.as_secs_f64() * stats.windows_per_bucket as f64;
    println!("== Figure 3: Load Variation over the Lifetime of Simulation ==");
    println!(
        "(single-AS, TOP2 mapping, {} engines; kernel events per engine per bucket of {:.3}s)",
        cfg.engines, bucket_secs
    );
    let show = cfg.engines.min(6);
    print!("{:>8}", "t[s]");
    for p in 0..show {
        print!(" {:>10}", format!("engine{p}"));
    }
    println!(" {:>10} {:>10}", "max", "mean");
    // Condense to at most 40 printed rows.
    let stride = buckets.div_ceil(40).max(1);
    for b in (0..buckets).step_by(stride) {
        let row = &stats.coarse_trace[b];
        let max = row.iter().copied().max().unwrap_or(0);
        let mean = row.iter().sum::<u64>() as f64 / row.len().max(1) as f64;
        print!("{:>8.2}", b as f64 * bucket_secs);
        for v in row.iter().take(show) {
            print!(" {v:>10}");
        }
        println!(" {:>10} {:>10.0}", max, mean);
    }
    println!();
    println!(
        "coefficient of variation of per-engine totals: {:.3}",
        out.metrics.load_imbalance
    );
}
