//! Counting global allocator (feature `alloc-count`, bench-only).
//!
//! [`CountingAlloc`] wraps the system allocator and tracks live and
//! peak heap bytes in two process-global relaxed atomics, so memory
//! benches (`mem_footprint`) measure footprints without external
//! tooling (no massif/heaptrack in the container). Install it with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: massf_bench::alloccount::CountingAlloc = CountingAlloc;
//! ```
//!
//! Accounting is by requested layout size — allocator-internal slack
//! and metadata are not visible from `GlobalAlloc`, so reported bytes
//! are a slight *under*estimate of RSS. Peaks are monotone per process
//! until [`reset_peak`]; `Relaxed` ordering is fine because the bench
//! reads the counters from the same thread that just finished the work
//! being measured (and exactness of concurrent peaks is not needed).
//!
//! This module contains the workspace's only `unsafe` code, which is
//! why it — and the lift of `forbid(unsafe_code)` in `lib.rs` — exists
//! solely behind the bench-only feature gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// System-allocator wrapper that maintains [`live_bytes`] /
/// [`peak_bytes`].
pub struct CountingAlloc;

fn on_alloc(bytes: usize) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(bytes: usize) {
    LIVE.fetch_sub(bytes, Ordering::Relaxed);
}

// SAFETY: defers every allocation verbatim to `System` and only adds
// counter bookkeeping, which allocates nothing itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: same contract as the caller's, forwarded unchanged.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: same contract as the caller's, forwarded unchanged.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the caller's, forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: same contract as the caller's, forwarded unchanged.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Heap bytes currently allocated (requested sizes).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start or the last
/// [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Restart peak tracking from the current live level, so a bench can
/// attribute a peak to one phase.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}
