//! Parallel-executor hot-path benchmarks (DESIGN.md §3 item 12): the
//! overhauled executor (lock-free per-pair outboxes + empty-window
//! fast-forward, `massf_engine::run_parallel`) against the pre-overhaul
//! baseline (mutex-per-event inboxes, a barrier pair for every window,
//! `massf_engine::baseline::run_parallel_locked`) on two pure-engine
//! workloads:
//!
//! * **dense ring** — tokens circulate continuously with hop = window,
//!   so every window holds events. This isolates the per-event mailbox
//!   cost; fast-forward never triggers.
//! * **sparse bursty** — short hop bursts separated by long idle gaps
//!   (TCP RTO backoff / fault-epoch quiet periods in miniature). The
//!   overwhelming majority of windows are empty; the baseline pays two
//!   barriers for each of them, the overhauled executor jumps.
//!
//! Both executors must produce bit-identical results (checked by
//! `--smoke`, wired into scripts/check.sh); the wall-clock and
//! barrier-round numbers are recorded in BENCH_engine.json (`--record`
//! prints that JSON). On a single-core host the wall-clock comparison
//! mostly measures context-switch pressure, so the recorded acceptance
//! number there is the executed-barrier-round reduction, which is
//! hardware-independent.

use criterion::{criterion_group, BenchmarkId, Criterion};
use massf_engine::baseline::run_parallel_locked;
use massf_engine::{run_parallel, run_sequential, Emitter, ExecutionStats, LpId, Model, SimTime};

/// Ring of LPs passing tokens: each handled event hashes into a per-LP
/// fingerprint (order-sensitive, so any divergence in per-LP event
/// sequences is caught), then forwards to the next LP. A token travels
/// `burst` hops of `hop` each, then sleeps `idle` before the next burst;
/// `idle == 0` makes the ring dense (hop forever).
#[derive(Clone)]
struct BurstRing {
    n: u32,
    hop: SimTime,
    idle: SimTime,
    burst: u32,
    fingerprint: Vec<u64>,
}

impl BurstRing {
    fn new(n: u32, hop: SimTime, idle: SimTime, burst: u32) -> Self {
        BurstRing {
            n,
            hop,
            idle,
            burst,
            fingerprint: vec![0; n as usize],
        }
    }
}

impl Model for BurstRing {
    type Event = u32; // hops left in the current burst

    fn handle(&mut self, target: LpId, now: SimTime, left: u32, out: &mut Emitter<'_, u32>) {
        let f = &mut self.fingerprint[target.index()];
        *f = f
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(now.as_ns() ^ u64::from(left));
        let next = LpId((target.0 + 1) % self.n);
        if left > 0 {
            out.emit(self.hop, next, left - 1);
        } else if self.idle > SimTime::ZERO {
            out.emit(self.idle, next, self.burst);
        } else {
            out.emit(self.hop, next, self.burst);
        }
    }
}

/// Contiguous-block LP→partition assignment (ring cut into arcs, the
/// minimum-cut partition for a ring).
fn block_assignment(n: u32, partitions: usize) -> Vec<u32> {
    let per = (n as usize).div_ceil(partitions);
    (0..n as usize).map(|i| (i / per) as u32).collect()
}

struct Scenario {
    label: &'static str,
    n: u32,
    hop: SimTime,
    idle: SimTime,
    burst: u32,
    tokens: u32,
    end: SimTime,
}

/// Dense: 8 tokens hop every window for the whole horizon — every
/// window executes.
const DENSE: Scenario = Scenario {
    label: "dense_ring",
    n: 64,
    hop: SimTime::from_ms(1),
    idle: SimTime::ZERO,
    burst: 1,
    tokens: 8,
    end: SimTime::from_secs(5),
};

/// Sparse bursty: 4 tokens, 20-hop bursts, then half a second of
/// silence — ≈96% of windows are empty.
const SPARSE: Scenario = Scenario {
    label: "sparse_bursty",
    n: 64,
    hop: SimTime::from_ms(1),
    idle: SimTime::from_ms(500),
    burst: 20,
    tokens: 4,
    end: SimTime::from_secs(20),
};

impl Scenario {
    fn model(&self) -> BurstRing {
        BurstRing::new(self.n, self.hop, self.idle, self.burst)
    }

    fn shards(&self, partitions: usize) -> Vec<BurstRing> {
        (0..partitions).map(|_| self.model()).collect()
    }

    /// Token k starts at LP k·n/tokens with a fresh burst.
    fn initial(&self) -> Vec<(SimTime, LpId, u32)> {
        (0..self.tokens)
            .map(|k| (SimTime::ZERO, LpId(k * self.n / self.tokens), self.burst))
            .collect()
    }

    fn window(&self) -> SimTime {
        self.hop // ring hop latency is the MLL of any contiguous cut
    }
}

/// Merge per-shard fingerprints (each LP is touched only on its home
/// shard, so XOR reconstructs the per-LP values).
fn merged_fingerprint(shards: &[BurstRing]) -> Vec<u64> {
    let n = shards[0].fingerprint.len();
    let mut out = vec![0u64; n];
    for s in shards {
        for (o, f) in out.iter_mut().zip(&s.fingerprint) {
            *o ^= f;
        }
    }
    out
}

fn run_new(sc: &Scenario, partitions: usize) -> (Vec<BurstRing>, ExecutionStats) {
    let assignment = block_assignment(sc.n, partitions);
    run_parallel(
        sc.shards(partitions),
        sc.n as usize,
        &assignment,
        sc.initial(),
        sc.end,
        sc.window(),
    )
}

fn run_old(sc: &Scenario, partitions: usize) -> (Vec<BurstRing>, ExecutionStats) {
    let assignment = block_assignment(sc.n, partitions);
    run_parallel_locked(
        sc.shards(partitions),
        sc.n as usize,
        &assignment,
        sc.initial(),
        sc.end,
        sc.window(),
    )
}

fn bench_scenario(c: &mut Criterion, sc: &Scenario) {
    let mut group = c.benchmark_group(sc.label);
    group.sample_size(10);
    for partitions in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("baseline_locked", partitions), |b| {
            b.iter(|| run_old(sc, partitions).1.total_events)
        });
        group.bench_function(BenchmarkId::new("overhauled", partitions), |b| {
            b.iter(|| run_new(sc, partitions).1.total_events)
        });
    }
    group.finish();
}

fn bench_dense(c: &mut Criterion) {
    bench_scenario(c, &DENSE);
}

fn bench_sparse(c: &mut Criterion) {
    bench_scenario(c, &SPARSE);
}

criterion_group!(benches, bench_dense, bench_sparse);

/// Sequential reference for a scenario: same combined model, one heap.
fn run_seq(sc: &Scenario) -> (BurstRing, ExecutionStats) {
    let mut model = sc.model();
    let stats = run_sequential(&mut model, sc.n as usize, sc.initial(), sc.end);
    (model, stats)
}

/// `--smoke`: fast self-checking pass for scripts/check.sh. Asserts the
/// three-way bit-identity (sequential / baseline / overhauled) on both
/// scenarios at 1, 2 and 4 partitions, the windowed-stats consistency
/// invariants, and the ≥5× executed-barrier-round reduction on the
/// sparse scenario that BENCH_engine.json records.
fn run_smoke() {
    for sc in [&DENSE, &SPARSE] {
        let (seq_model, seq_stats) = run_seq(sc);
        for partitions in [1usize, 2, 4] {
            let (old_shards, old) = run_old(sc, partitions);
            let (new_shards, new) = run_new(sc, partitions);

            // Bit-identity against the sequential reference.
            let want = &seq_model.fingerprint;
            assert_eq!(
                &merged_fingerprint(&old_shards),
                want,
                "{} p={partitions}: baseline diverged from sequential",
                sc.label
            );
            assert_eq!(
                &merged_fingerprint(&new_shards),
                want,
                "{} p={partitions}: overhauled executor diverged from sequential",
                sc.label
            );
            assert_eq!(seq_stats.lp_events, old.lp_events);
            assert_eq!(seq_stats.lp_events, new.lp_events);
            assert_eq!(seq_stats.total_events, new.total_events);

            // Baseline and overhauled stats agree field-for-field except
            // the barrier count.
            assert_eq!(old.bucket_critical, new.bucket_critical);
            assert_eq!(old.bucket_totals, new.bucket_totals);
            assert_eq!(old.partition_totals, new.partition_totals);
            assert_eq!(old.coarse_trace, new.coarse_trace);
            assert_eq!(old.windows_executed, new.windows_executed);
            assert_eq!(old.windows_skipped, new.windows_skipped);
            assert_eq!(old.window_count(), new.window_count());

            // Windowed-stats consistency.
            let by_bucket: u64 = new.bucket_totals.iter().sum();
            assert_eq!(by_bucket, new.total_events);
            assert_eq!(
                new.windows_executed + new.windows_skipped,
                new.window_count() as u64
            );
            assert_eq!(new.barrier_rounds, 1 + 2 * new.windows_executed);
            assert_eq!(old.barrier_rounds, 2 * old.window_count() as u64);

            if sc.label == "sparse_bursty" {
                assert!(
                    new.barrier_rounds * 5 <= old.barrier_rounds,
                    "{} p={partitions}: want ≥5× barrier reduction, got {} vs {}",
                    sc.label,
                    old.barrier_rounds,
                    new.barrier_rounds
                );
            }
        }
    }
    println!("engine_hotpath smoke checks passed");
}

/// `--record`: run both executors once per (scenario, partitions) cell,
/// timing with wall clock, and print the BENCH_engine.json payload.
fn run_record() {
    use std::time::Instant;
    let time_runs = |f: &dyn Fn() -> u64, reps: usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let _ = f();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    println!("{{");
    for (i, sc) in [&DENSE, &SPARSE].into_iter().enumerate() {
        if i > 0 {
            println!("  ,");
        }
        println!("  \"{}\": {{", sc.label);
        for (j, partitions) in [1usize, 2, 4, 8].into_iter().enumerate() {
            let (_, old) = run_old(sc, partitions);
            let (_, new) = run_new(sc, partitions);
            let old_ms = time_runs(&|| run_old(sc, partitions).1.total_events, 3);
            let new_ms = time_runs(&|| run_new(sc, partitions).1.total_events, 3);
            println!(
                "    \"partitions_{partitions}\": {{ \"baseline_ms\": {old_ms:.2}, \
                 \"overhauled_ms\": {new_ms:.2}, \"baseline_barrier_rounds\": {}, \
                 \"overhauled_barrier_rounds\": {}, \"barrier_reduction\": {:.1}, \
                 \"windows_skipped\": {} }}{}",
                old.barrier_rounds,
                new.barrier_rounds,
                old.barrier_rounds as f64 / new.barrier_rounds as f64,
                new.windows_skipped,
                if j < 3 { "," } else { "" }
            );
        }
        println!("  }}");
    }
    println!("}}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        run_smoke();
        return;
    }
    if args.iter().any(|a| a == "--record") {
        run_record();
        return;
    }
    benches();
}
