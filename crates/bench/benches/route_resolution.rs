//! Route-resolution fast-path benchmarks (DESIGN.md §3 item 11): the
//! per-query cost of answering `route(src, dst)` with and without the
//! deterministic path cache, on the flat single-AS resolver, the
//! multi-AS resolver, and across fault epochs.
//!
//! The workload is *repeated pairs* — a small working set of `(src,
//! dst)` pairs queried round-robin, the pattern TCP retransmission
//! timers and long-running workload flows generate — plus a cold-cache
//! variant that rebuilds the cache every iteration to expose the
//! miss-path overhead. Results are recorded in BENCH_routing.json.
//!
//! Unlike the other benches this one has a hand-rolled `main` so that
//! `--smoke` runs a fast self-checking mode (used by scripts/check.sh):
//! cached and uncached resolution must return identical paths on every
//! topology variant, under eviction pressure (capacity 1) and with the
//! cache disabled (capacity 0).

use criterion::{criterion_group, BenchmarkId, Criterion};
use massf_core::prelude::*;
use massf_netsim::{FaultScript, FaultState};
use massf_routing::{
    CachedResolver, CostMetric, FlatResolver, MultiAsResolver, PathResolver, RouteCache,
    RouteCacheStats,
};
use std::sync::Arc;

/// Cached-bench working set: distinct enough to exercise the shards,
/// small enough that a warm cache holds it entirely.
const PAIRS: usize = 64;
/// Resolves per timed iteration.
const QUERIES: usize = 8_192;

fn flat_network(routers: usize) -> Network {
    generate_flat_network(&FlatTopologyConfig {
        routers,
        hosts: 200,
        metro_count: (routers / 12).max(8),
        ..FlatTopologyConfig::default()
    })
}

fn multi_as_config() -> MultiAsTopologyConfig {
    MultiAsTopologyConfig {
        as_count: 50,
        routers_per_as: 20,
        hosts: 300,
        ..MultiAsTopologyConfig::default()
    }
}

/// A deterministic repeated-pairs query set over the hosts.
fn pairs(hosts: &[NodeId], count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .filter_map(|i| {
            let a = hosts[(i * 7 + 3) % hosts.len()];
            let b = hosts[(i * 13 + 11) % hosts.len()];
            (a != b).then_some((a, b))
        })
        .collect()
}

/// Resolve `QUERIES` queries round-robin over `pairs`, summing hop
/// counts (the black-box result).
fn drive(resolver: &dyn PathResolver, pairs: &[(NodeId, NodeId)]) -> usize {
    let mut hops = 0usize;
    for i in 0..QUERIES {
        let (s, d) = pairs[i % pairs.len()];
        hops += resolver.route_arc(s, d).map(|p| p.len()).unwrap_or(0);
    }
    hops
}

fn bench_flat_repeated_pairs(c: &mut Criterion) {
    let net = flat_network(2_000);
    let hosts = net.host_ids();
    let set = pairs(&hosts, PAIRS);
    let uncached = FlatResolver::new(&net, CostMetric::Latency);
    // Warm the SPT table once so both rows measure query cost, not
    // Dijkstra build cost.
    let _ = drive(&uncached, &set);
    let cached = CachedResolver::new(
        FlatResolver::new(&net, CostMetric::Latency),
        net.node_count(),
        128,
    );
    let _ = drive(&cached, &set);

    let mut group = c.benchmark_group("flat_2k_repeated_pairs");
    group.sample_size(40);
    group.bench_function("uncached", |b| b.iter(|| drive(&uncached, &set)));
    group.bench_function("cached_warm", |b| b.iter(|| drive(&cached, &set)));
    group.bench_function("cached_cold", |b| {
        b.iter(|| {
            // Fresh cache (over the already-warmed resolver) every
            // iteration: all-miss first pass, then hits — isolates the
            // cache machinery's cold-start overhead from SPT builds.
            let r = CachedResolver::new(&uncached, net.node_count(), 128);
            drive(&r, &set)
        })
    });
    group.finish();
    eprintln!(
        "flat cached stats: {:?} ({:.1}% hit rate)",
        cached.stats(),
        cached.stats().hit_rate() * 100.0
    );
}

fn bench_multi_as_repeated_pairs(c: &mut Criterion) {
    let cfg = multi_as_config();
    let m = generate_multi_as_network(&cfg);
    let hosts = m.network.host_ids();
    let set = pairs(&hosts, PAIRS);
    let uncached = MultiAsResolver::new(&m, CostMetric::Latency, &cfg);
    let _ = drive(&uncached, &set);
    let cached = CachedResolver::new(
        MultiAsResolver::new(&m, CostMetric::Latency, &cfg),
        m.network.node_count(),
        128,
    );
    let _ = drive(&cached, &set);

    let mut group = c.benchmark_group("multi_as_50_repeated_pairs");
    group.sample_size(30);
    group.bench_function("uncached", |b| b.iter(|| drive(&uncached, &set)));
    group.bench_function("cached_warm", |b| b.iter(|| drive(&cached, &set)));
    group.finish();
}

/// Fault-epoch variant: resolve the same pair set in every epoch of a
/// link-flap script, uncached (per-epoch resolver directly) vs cached
/// with epoch-embedded keys.
fn bench_faulted_epochs(c: &mut Criterion) {
    let net = flat_network(500);
    let hosts = net.host_ids();
    let set = pairs(&hosts, PAIRS);
    let script = FaultScript::random_link_flaps(
        &net,
        8,
        SimTime::from_secs(2),
        SimTime::from_secs(10),
        SimTime::from_secs(50),
        42,
    )
    .expect("flap script over a connected network validates");
    let faults = FaultState::flat(&net, CostMetric::Latency, script)
        .expect("random_link_flaps scripts validate");
    let epochs = faults.epoch_count();

    let drive_epochs = |cache: &mut RouteCache, stats: &mut RouteCacheStats| -> usize {
        let mut hops = 0usize;
        for i in 0..QUERIES {
            let (s, d) = set[i % set.len()];
            let e = i % epochs;
            let r = faults.resolver_for_epoch(e);
            let p = cache.get_or_insert_with(stats, e as u32, s, d, || r.route_arc(s, d));
            hops += p.map(|p| p.len()).unwrap_or(0);
        }
        hops
    };

    let mut group = c.benchmark_group("faulted_epochs_repeated_pairs");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("uncached", epochs), |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for i in 0..QUERIES {
                let (s, d) = set[i % set.len()];
                let r = faults.resolver_for_epoch(i % epochs);
                hops += r.route_arc(s, d).map(|p| p.len()).unwrap_or(0);
            }
            hops
        })
    });
    group.bench_function(BenchmarkId::new("cached_warm", epochs), |b| {
        let mut cache = RouteCache::new(net.node_count(), 128);
        let mut stats = RouteCacheStats::default();
        let _ = drive_epochs(&mut cache, &mut stats);
        b.iter(|| drive_epochs(&mut cache, &mut stats))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_flat_repeated_pairs,
    bench_multi_as_repeated_pairs,
    bench_faulted_epochs
);

/// `--smoke`: fast self-checking correctness pass for scripts/check.sh.
/// Panics on any cached/uncached divergence.
fn run_smoke() {
    // Flat network, every capacity regime.
    let net = flat_network(120);
    let hosts = net.host_ids();
    let set = pairs(&hosts, 24);
    let uncached = FlatResolver::new(&net, CostMetric::Latency);
    for capacity in [0usize, 1, 4, 128] {
        let cached = CachedResolver::new(
            FlatResolver::new(&net, CostMetric::Latency),
            net.node_count(),
            capacity,
        );
        for pass in 0..3 {
            for &(s, d) in &set {
                let want = uncached.route(s, d);
                let got = cached.route_arc(s, d).map(|p| p.to_vec());
                assert_eq!(
                    want, got,
                    "flat cap {capacity} pass {pass}: cached diverged for {s:?}→{d:?}"
                );
            }
        }
        if capacity == 1 {
            // Force eviction pressure: two destinations alternating in
            // one source shard; answers must stay correct throughout.
            let (s, d0) = set[0];
            let d1 = set.iter().map(|&(_, d)| d).find(|&d| d != d0 && d != s);
            let d1 = d1.expect("pair set has a second destination");
            for _ in 0..3 {
                for d in [d0, d1] {
                    assert_eq!(
                        uncached.route(s, d),
                        cached.route_arc(s, d).map(|p| p.to_vec()),
                        "capacity-1 thrash diverged for {s:?}→{d:?}"
                    );
                }
            }
            assert!(cached.stats().evictions > 0, "capacity 1 must evict");
        }
        let stats = cached.stats();
        match capacity {
            0 => assert_eq!(stats, Default::default(), "disabled cache moved counters"),
            1 => {}
            _ => assert!(stats.hits > 0, "repeated pairs must hit at cap {capacity}"),
        }
    }

    // Multi-AS network.
    let cfg = MultiAsTopologyConfig {
        as_count: 8,
        routers_per_as: 6,
        hosts: 60,
        ..MultiAsTopologyConfig::default()
    };
    let m = generate_multi_as_network(&cfg);
    let mhosts = m.network.host_ids();
    let mset = pairs(&mhosts, 24);
    let muncached = MultiAsResolver::new(&m, CostMetric::Latency, &cfg);
    let mcached = CachedResolver::new(
        MultiAsResolver::new(&m, CostMetric::Latency, &cfg),
        m.network.node_count(),
        16,
    );
    for _ in 0..2 {
        for &(s, d) in &mset {
            assert_eq!(
                muncached.route(s, d),
                mcached.route_arc(s, d).map(|p| p.to_vec()),
                "multi-AS cached diverged for {s:?}→{d:?}"
            );
        }
    }
    assert!(mcached.stats().hits > 0);

    // Fault epochs: cached answers must match the epoch's own resolver.
    let fnet = flat_network(120);
    let fhosts = fnet.host_ids();
    let fset = pairs(&fhosts, 24);
    let script = FaultScript::random_link_flaps(
        &fnet,
        4,
        SimTime::from_secs(2),
        SimTime::from_secs(5),
        SimTime::from_secs(25),
        7,
    )
    .expect("flap script validates");
    let faults = FaultState::flat(&fnet, CostMetric::Latency, script)
        .expect("random_link_flaps scripts validate");
    let mut cache = RouteCache::new(fnet.node_count(), 16);
    let mut stats = RouteCacheStats::default();
    for _ in 0..2 {
        for e in 0..faults.epoch_count() {
            let r: &Arc<dyn PathResolver> = faults.resolver_for_epoch(e);
            for &(s, d) in &fset {
                let got =
                    cache.get_or_insert_with(&mut stats, e as u32, s, d, || r.route_arc(s, d));
                assert_eq!(
                    r.route(s, d),
                    got.map(|p| p.to_vec()),
                    "epoch {e}: cached diverged for {s:?}→{d:?}"
                );
            }
        }
    }
    assert!(stats.hits > 0, "epoch replay must hit");
    println!("route_resolution smoke checks passed");
}

fn main() {
    // cargo bench passes harness args like `--bench`; only `--smoke` is
    // meaningful here, everything else is ignored.
    if std::env::args().skip(1).any(|a| a == "--smoke") {
        run_smoke();
        return;
    }
    benches();
}
