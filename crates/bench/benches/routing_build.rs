//! Routing-substrate benchmarks: OSPF shortest-path-tree computation,
//! BGP convergence, and end-to-end multi-AS path resolution — the setup
//! costs a MaSSF-style simulator pays before and during a run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use massf_core::prelude::*;
use massf_routing::{BgpRib, CostMetric, FlatResolver, MultiAsResolver, PathResolver};
use massf_topology::ashier::AsGraph;

fn bench_ospf_spt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ospf_route_queries");
    group.sample_size(10);
    for routers in [500usize, 2_000] {
        let net = generate_flat_network(&FlatTopologyConfig {
            routers,
            hosts: 100,
            metro_count: (routers / 12).max(8),
            ..FlatTopologyConfig::default()
        });
        let hosts = net.host_ids();
        group.bench_with_input(
            BenchmarkId::new("cold_spt_then_100_paths", routers),
            &net,
            |b, net| {
                b.iter(|| {
                    // Fresh resolver each iteration: measures SPT build +
                    // path extraction.
                    let r = FlatResolver::new(net, CostMetric::Latency);
                    let mut hops = 0usize;
                    for i in 0..100 {
                        let p = r.route(hosts[i % hosts.len()], hosts[(i * 7 + 1) % hosts.len()]);
                        hops += p.map(|p| p.len()).unwrap_or(0);
                    }
                    hops
                })
            },
        );
    }
    group.finish();
}

fn bench_bgp_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("bgp_convergence");
    group.sample_size(10);
    for ases in [50usize, 100, 200] {
        let g = AsGraph::generate(ases, 2, 0.08, 42);
        group.bench_with_input(BenchmarkId::from_parameter(ases), &g, |b, g| {
            b.iter(|| BgpRib::compute(g).rounds)
        });
    }
    group.finish();

    let g = AsGraph::generate(100, 2, 0.08, 42);
    let rib = BgpRib::compute(&g);
    eprintln!(
        "BGP(100 AS): {} rounds, reachability {:.3}",
        rib.rounds,
        rib.reachability_fraction()
    );
}

fn bench_multi_as_resolution(c: &mut Criterion) {
    let cfg = MultiAsTopologyConfig {
        as_count: 50,
        routers_per_as: 20,
        hosts: 300,
        ..MultiAsTopologyConfig::default()
    };
    let m = generate_multi_as_network(&cfg);
    let resolver = MultiAsResolver::new(&m, CostMetric::Latency, &cfg);
    let hosts = m.network.host_ids();
    let mut group = c.benchmark_group("multi_as_path_resolution");
    group.sample_size(20);
    group.bench_function("1000_host_pairs_warm_cache", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for i in 0..1_000 {
                let a = hosts[i % hosts.len()];
                let d = hosts[(i * 13 + 5) % hosts.len()];
                if a != d {
                    hops += resolver.route(a, d).map(|p| p.len()).unwrap_or(0);
                }
            }
            hops
        })
    });
    group.finish();
}

/// Thread scaling of the parallel table builds: warming a full OSPF SPT
/// table and constructing a MultiAsResolver (per-AS domain fan-out) at
/// 1, 2, and 4 worker threads. Tables are bit-identical across rows.
fn bench_routing_thread_scaling(c: &mut Criterion) {
    let net = generate_flat_network(&FlatTopologyConfig {
        routers: 1_000,
        hosts: 200,
        metro_count: 80,
        ..FlatTopologyConfig::default()
    });
    let members: Vec<_> = net.nodes.iter().map(|n| n.id).collect();
    let cfg = MultiAsTopologyConfig {
        as_count: 50,
        routers_per_as: 20,
        hosts: 300,
        ..MultiAsTopologyConfig::default()
    };
    let m = generate_multi_as_network(&cfg);

    let mut group = c.benchmark_group("routing_build_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("ospf_warm_full_table_1k", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    massf_parutil::with_threads(threads, || {
                        let d = massf_routing::OspfDomain::new(
                            &net,
                            members.clone(),
                            CostMetric::Latency,
                        );
                        d.warm_full_table();
                        d.member_count()
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("multi_as_resolver_50as", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    massf_parutil::with_threads(threads, || {
                        MultiAsResolver::new(&m, CostMetric::Latency, &cfg)
                            .rib()
                            .rounds
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ospf_spt,
    bench_bgp_convergence,
    bench_multi_as_resolution,
    bench_routing_thread_scaling
);
criterion_main!(benches);
