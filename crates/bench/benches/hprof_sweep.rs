//! Cost of the hierarchical threshold sweep (Section 3.4.3).
//!
//! The paper's argument: partitioning is fast enough "to enable us to
//! consider thousands of possible Tmll". This bench measures a full
//! HTOP sweep on a 2,000-router network, ablating the sweep step
//! (0.1 ms as in the paper vs 0.2/0.4 ms) and the graph-reduction step
//! alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use massf_core::hier::reduce_graph;
use massf_core::prelude::*;
use massf_core::{EdgeWeighting, VertexWeighting};

fn setup() -> (Network, WeightedGraph) {
    let net = generate_flat_network(&FlatTopologyConfig {
        routers: 2_000,
        hosts: 800,
        metro_count: 160,
        ..FlatTopologyConfig::default()
    });
    let graph = massf_core::build_weighted_graph(
        &net,
        VertexWeighting::Bandwidth,
        EdgeWeighting::Standard,
        None,
    );
    (net, graph)
}

fn bench_sweep(c: &mut Criterion) {
    let (net, graph) = setup();
    let mut group = c.benchmark_group("hierarchical_sweep_2k_16parts");
    group.sample_size(10);
    for step_ms in [0.1f64, 0.2, 0.4] {
        let cfg = HierConfig {
            engines: 16,
            step_ms,
            ..HierConfig::new(16)
        };
        group.bench_with_input(
            BenchmarkId::new("step_ms", format!("{step_ms}")),
            &cfg,
            |b, cfg| b.iter(|| hierarchical_partition(&net, &graph, cfg)),
        );
    }
    group.finish();

    let r = hierarchical_partition(&net, &graph, &HierConfig::new(16));
    eprintln!(
        "sweep candidates: {}, winner Tmll {} ms, MLL {:.3} ms, E {:.3}",
        r.candidates.len(),
        r.tmll_ms,
        r.evaluation.mll_ms,
        r.evaluation.e
    );
}

/// Thread scaling of the parallel sweep: identical work at 1, 2, and 4
/// worker threads (results are bit-identical by construction; only the
/// wall clock may differ). The 1-thread row is the sequential baseline
/// the ISSUE's speedup criterion compares against.
fn bench_sweep_thread_scaling(c: &mut Criterion) {
    let (net, graph) = setup();
    let cfg = HierConfig::new(16);
    let mut group = c.benchmark_group("hierarchical_sweep_2k_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    massf_parutil::with_threads(threads, || {
                        hierarchical_partition(&net, &graph, &cfg)
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let (net, graph) = setup();
    let mut group = c.benchmark_group("graph_reduction_2k");
    group.sample_size(20);
    for tmll in [0.5f64, 1.0, 3.0] {
        group.bench_with_input(
            BenchmarkId::new("tmll_ms", format!("{tmll}")),
            &tmll,
            |b, &tmll| b.iter(|| reduce_graph(&net, &graph, tmll)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sweep,
    bench_sweep_thread_scaling,
    bench_reduction
);
criterion_main!(benches);
