//! Partitioner microbenchmarks.
//!
//! The paper's feasibility argument for the HPROF sweep rests on
//! partitioner speed: "The METIS graph partitioner used in MaSSF can
//! partition a graph with 10,000 vertexes in about 10 seconds"
//! (Section 3.4.3). This bench measures our multilevel k-way
//! partitioner at 1k/5k/10k vertices, compares recursive bisection and
//! the ModelNet greedy k-cluster baseline, and ablates the KL/FM
//! refinement stage (reporting its cut-quality effect on stderr).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use massf_core::prelude::*;
use massf_core::{EdgeWeighting, VertexWeighting};
use massf_partition::{greedy_kcluster, recursive_bisection};

fn network_graph(routers: usize, seed: u64) -> WeightedGraph {
    let net = generate_flat_network(&FlatTopologyConfig {
        routers,
        hosts: routers / 2,
        metro_count: (routers / 12).max(8),
        seed,
        ..FlatTopologyConfig::default()
    });
    massf_core::build_weighted_graph(
        &net,
        VertexWeighting::Bandwidth,
        EdgeWeighting::Standard,
        None,
    )
}

fn bench_kway_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("metis_kway_90parts");
    group.sample_size(10);
    for routers in [1_000usize, 5_000, 10_000] {
        let graph = network_graph(routers, 7);
        group.bench_with_input(BenchmarkId::from_parameter(routers), &graph, |b, g| {
            b.iter(|| metis_kway(g, 90, &KwayConfig::default()))
        });
    }
    group.finish();
}

fn bench_algorithms(c: &mut Criterion) {
    let graph = network_graph(2_000, 11);
    let mut group = c.benchmark_group("partitioners_2k_16parts");
    group.sample_size(10);
    group.bench_function("metis_kway", |b| {
        b.iter(|| metis_kway(&graph, 16, &KwayConfig::default()))
    });
    group.bench_function("recursive_bisection", |b| {
        b.iter(|| recursive_bisection(&graph, 16, &KwayConfig::default()))
    });
    group.bench_function("greedy_kcluster", |b| {
        b.iter(|| greedy_kcluster(&graph, 16, 3))
    });
    group.finish();
}

fn bench_refinement_ablation(c: &mut Criterion) {
    let graph = network_graph(2_000, 13);
    let mut group = c.benchmark_group("refinement_ablation_2k_16parts");
    group.sample_size(10);
    for passes in [0usize, 2, 8] {
        let cfg = KwayConfig {
            refine_passes: passes,
            ..KwayConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("passes", passes), &cfg, |b, cfg| {
            b.iter(|| metis_kway(&graph, 16, cfg))
        });
    }
    group.finish();
    for passes in [0usize, 2, 8] {
        let cfg = KwayConfig {
            refine_passes: passes,
            ..KwayConfig::default()
        };
        let p = metis_kway(&graph, 16, &cfg);
        eprintln!(
            "refinement passes {passes}: edge-cut {}, balance {:.3}",
            p.edge_cut(&graph),
            p.balance(&graph)
        );
    }
}

criterion_group!(
    benches,
    bench_kway_sizes,
    bench_algorithms,
    bench_refinement_ablation
);
criterion_main!(benches);
