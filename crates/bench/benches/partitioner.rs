//! Partitioner microbenchmarks.
//!
//! The paper's feasibility argument for the HPROF sweep rests on
//! partitioner speed: "The METIS graph partitioner used in MaSSF can
//! partition a graph with 10,000 vertexes in about 10 seconds"
//! (Section 3.4.3). This bench measures our multilevel k-way
//! partitioner at 1k/5k/10k vertices, compares recursive bisection and
//! the ModelNet greedy k-cluster baseline, and ablates the KL/FM
//! refinement stage (reporting its cut-quality effect on stderr).

use criterion::{criterion_group, BenchmarkId, Criterion};
use massf_core::prelude::*;
use massf_core::{EdgeWeighting, VertexWeighting};
use massf_partition::{
    apply_moves, greedy_kcluster, rebalance, recursive_bisection, RebalanceParams,
};

fn network_graph(routers: usize, seed: u64) -> WeightedGraph {
    let net = generate_flat_network(&FlatTopologyConfig {
        routers,
        hosts: routers / 2,
        metro_count: (routers / 12).max(8),
        seed,
        ..FlatTopologyConfig::default()
    });
    massf_core::build_weighted_graph(
        &net,
        VertexWeighting::Bandwidth,
        EdgeWeighting::Standard,
        None,
    )
}

fn bench_kway_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("metis_kway_90parts");
    group.sample_size(10);
    for routers in [1_000usize, 5_000, 10_000] {
        let graph = network_graph(routers, 7);
        group.bench_with_input(BenchmarkId::from_parameter(routers), &graph, |b, g| {
            b.iter(|| metis_kway(g, 90, &KwayConfig::default()))
        });
    }
    group.finish();
}

fn bench_algorithms(c: &mut Criterion) {
    let graph = network_graph(2_000, 11);
    let mut group = c.benchmark_group("partitioners_2k_16parts");
    group.sample_size(10);
    group.bench_function("metis_kway", |b| {
        b.iter(|| metis_kway(&graph, 16, &KwayConfig::default()))
    });
    group.bench_function("recursive_bisection", |b| {
        b.iter(|| recursive_bisection(&graph, 16, &KwayConfig::default()))
    });
    group.bench_function("greedy_kcluster", |b| {
        b.iter(|| greedy_kcluster(&graph, 16, 3))
    });
    group.finish();
}

fn bench_refinement_ablation(c: &mut Criterion) {
    let graph = network_graph(2_000, 13);
    let mut group = c.benchmark_group("refinement_ablation_2k_16parts");
    group.sample_size(10);
    for passes in [0usize, 2, 8] {
        let cfg = KwayConfig {
            refine_passes: passes,
            ..KwayConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("passes", passes), &cfg, |b, cfg| {
            b.iter(|| metis_kway(&graph, 16, cfg))
        });
    }
    group.finish();
    for passes in [0usize, 2, 8] {
        let cfg = KwayConfig {
            refine_passes: passes,
            ..KwayConfig::default()
        };
        let p = metis_kway(&graph, 16, &cfg);
        eprintln!(
            "refinement passes {passes}: edge-cut {}, balance {:.3}",
            p.edge_cut(&graph),
            p.balance(&graph)
        );
    }
}

criterion_group!(
    benches,
    bench_kway_sizes,
    bench_algorithms,
    bench_refinement_ablation
);

/// Per-part load sums under `assignment`.
fn part_loads(assignment: &[u32], loads: &[u64], k: usize) -> Vec<u64> {
    let mut sums = vec![0u64; k];
    for (&a, &l) in assignment.iter().zip(loads) {
        sums[a as usize] += l;
    }
    sums
}

/// `--smoke`: fast self-checking correctness pass for scripts/check.sh.
/// Every measured partitioner must produce valid, deterministic
/// assignments, and the incremental `rebalance()` move search must
/// strictly improve a skewed load without violating its bounds.
fn run_smoke() {
    let graph = network_graph(300, 7);
    let n = graph.vertex_count();
    for k in [2usize, 16] {
        let p = metis_kway(&graph, k, &KwayConfig::default());
        assert_eq!(p.assignment.len(), n, "k={k}: unassigned vertices");
        assert!(
            p.assignment.iter().all(|&a| (a as usize) < k),
            "k={k}: out-of-range part id"
        );
        assert_eq!(p.used_parts(), k, "k={k}: empty parts");
        assert_eq!(
            p.assignment,
            metis_kway(&graph, k, &KwayConfig::default()).assignment,
            "k={k}: metis_kway is not deterministic"
        );
        for (name, q) in [
            (
                "recursive_bisection",
                recursive_bisection(&graph, k, &KwayConfig::default()),
            ),
            ("greedy_kcluster", greedy_kcluster(&graph, k, 3)),
        ] {
            assert_eq!(q.assignment.len(), n, "{name} k={k}: unassigned vertices");
            assert!(
                q.assignment.iter().all(|&a| (a as usize) < k),
                "{name} k={k}: out-of-range part id"
            );
        }
    }

    // Incremental rebalance: all the load on one part's vertices must
    // drain within the move budget, deterministically, without emptying
    // any part.
    let k = 8usize;
    let p = metis_kway(&graph, k, &KwayConfig::default());
    let loads: Vec<u64> = p
        .assignment
        .iter()
        .map(|&a| if a == 0 { 100 } else { 1 })
        .collect();
    let params = RebalanceParams::default();
    let moves = rebalance(&graph, k, &p.assignment, &loads, &params);
    assert!(!moves.is_empty(), "skewed load produced no moves");
    assert!(moves.len() <= params.max_moves, "move budget exceeded");
    assert_eq!(
        moves,
        rebalance(&graph, k, &p.assignment, &loads, &params),
        "rebalance is not deterministic"
    );
    let mut after = p.assignment.clone();
    apply_moves(&mut after, &moves);
    assert!(
        after.iter().all(|&a| (a as usize) < k),
        "rebalance moved a vertex out of range"
    );
    let before_max = part_loads(&p.assignment, &loads, k).into_iter().max();
    let after_parts = part_loads(&after, &loads, k);
    assert!(
        after_parts.iter().max() < before_max.as_ref(),
        "rebalance did not reduce the busiest part: {before_max:?} -> {after_parts:?}"
    );
    for part in 0..k {
        assert!(
            after.iter().any(|&a| a as usize == part),
            "rebalance emptied part {part}"
        );
    }
    println!("partitioner smoke checks passed");
}

fn main() {
    // cargo bench passes harness args like `--bench`; only `--smoke` is
    // meaningful here, everything else is ignored.
    if std::env::args().skip(1).any(|a| a == "--smoke") {
        run_smoke();
        return;
    }
    benches();
}
