//! Simulation-engine throughput: events per second of the sequential
//! reference executor, the windowed (trace-collecting) executor, and the
//! real threaded conservative executor, on a packet workload.
//!
//! The seq-vs-windowed comparison bounds the cost of the per-window
//! accounting; seq-vs-parallel shows the barrier overhead at small
//! partition counts (this host is single-core, so parallel numbers
//! measure engine overhead, not speedup).

use criterion::{criterion_group, Criterion};
use massf_core::prelude::*;
use massf_netsim::{Agent, NetSimBuilder, NoApp};
use massf_routing::{CostMetric, FlatResolver};
use std::sync::Arc;

fn builder() -> NetSimBuilder {
    let net = generate_flat_network(&FlatTopologyConfig {
        routers: 400,
        hosts: 160,
        metro_count: 16,
        ..FlatTopologyConfig::default()
    });
    let hosts = net.host_ids();
    let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
    let mut b = NetSimBuilder::new(net, resolver);
    let mut agent = Agent::new();
    for i in 0..40 {
        agent.inject_tcp(
            SimTime::from_ms(5 * i as u64),
            hosts[i],
            hosts[hosts.len() - 1 - i],
            100_000,
        );
    }
    b.add_agent(agent);
    b
}

fn bench_executors(c: &mut Criterion) {
    let b = builder();
    let shared = b.shared();
    let n = shared.lp_count();
    let end = SimTime::from_secs(2);
    let assignment: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
    let mll = shared
        .net
        .links
        .iter()
        .filter(|l| assignment[l.a.index()] != assignment[l.b.index()])
        .map(|l| l.latency_ms)
        .fold(f64::INFINITY, f64::min);
    let window = SimTime::from_ms_f64(mll);

    let mut group = c.benchmark_group("engine_executors");
    group.sample_size(10);
    group.bench_function("sequential", |bch| {
        bch.iter(|| b.run_sequential(NoApp, end).stats.total_events)
    });
    group.bench_function("sequential_windowed", |bch| {
        bch.iter(|| {
            b.run_sequential_windowed(NoApp, end, window, &assignment, 2)
                .stats
                .total_events
        })
    });
    group.bench_function("parallel_2threads", |bch| {
        bch.iter(|| {
            b.run_parallel(NoApp, end, window, &assignment, 2)
                .stats
                .total_events
        })
    });
    group.finish();

    let out = b.run_sequential(NoApp, end);
    eprintln!(
        "workload: {} events over {} virtual seconds",
        out.stats.total_events,
        end.as_secs_f64()
    );
}

criterion_group!(benches, bench_executors);

/// `--smoke`: fast self-checking correctness pass for scripts/check.sh.
/// All three measured executors must produce identical results on the
/// bench's own workload — the throughput comparison is only meaningful
/// if they answer the same question.
fn run_smoke() {
    let b = builder();
    let shared = b.shared();
    let n = shared.lp_count();
    let end = SimTime::from_secs(1);
    // simlint: allow(cast-lossy) -- partition index over a tiny smoke net
    let assignment: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
    let mll = shared
        .net
        .links
        .iter()
        .filter(|l| assignment[l.a.index()] != assignment[l.b.index()])
        .map(|l| l.latency_ms)
        .fold(f64::INFINITY, f64::min);
    let window = SimTime::from_ms_f64(mll);

    let seq = b.run_sequential(NoApp, end);
    assert!(
        seq.stats.total_events > 0,
        "smoke workload produced no events"
    );
    let win = b.run_sequential_windowed(NoApp, end, window, &assignment, 2);
    assert_eq!(
        win.stats.total_events, seq.stats.total_events,
        "windowed executor diverged from sequential"
    );
    assert_eq!(
        win.profile, seq.profile,
        "windowed profile diverged from sequential"
    );
    let par = b.run_parallel(NoApp, end, window, &assignment, 2);
    assert_eq!(
        par.stats.total_events, seq.stats.total_events,
        "parallel executor diverged from sequential"
    );
    assert_eq!(
        par.stats.lp_events, seq.stats.lp_events,
        "parallel per-LP attribution diverged from sequential"
    );
    assert_eq!(
        par.profile, seq.profile,
        "parallel profile diverged from sequential"
    );
    println!("engine_throughput smoke checks passed");
}

fn main() {
    // cargo bench passes harness args like `--bench`; only `--smoke` is
    // meaningful here, everything else is ignored.
    if std::env::args().skip(1).any(|a| a == "--smoke") {
        run_smoke();
        return;
    }
    benches();
}
