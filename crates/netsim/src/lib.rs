//! # massf-netsim
//!
//! Packet-level network simulation for the `massf-rs` reproduction of
//! *Realistic Large-Scale Online Network Simulation* (Liu & Chien,
//! SC 2004) — the MaSSF network-modeling layer.
//!
//! Every router and host of a [`massf_topology::Network`] is one logical
//! process of the [`massf_engine`] kernel. Links are modeled as
//! bandwidth-limited FIFO servers with propagation delay and drop-tail
//! buffers; packets traverse them hop by hop, so queueing and loss
//! behavior is per-hop faithful. Transport is a TCP with slow start,
//! AIMD congestion avoidance, fast retransmit, and RTO timers ([`tcp`]),
//! plus plain UDP datagrams.
//!
//! Application traffic enters through the [`world::AppLogic`] trait —
//! the stand-in for MaSSF's WrapSocket/Agent live-traffic machinery
//! ([`agent`] provides the scripted-injection agent) — and through it
//! the `massf-workloads` crate drives HTTP background traffic and the
//! Grid application models.
//!
//! Per-node and per-link packet counters ([`profiling`]) provide the
//! traffic profiles consumed by the paper's PROF/HPROF mappers.

#![forbid(unsafe_code)]

pub mod agent;
pub mod builder;
pub mod fluid;
pub mod packet;
pub mod profiling;
pub mod tcp;
pub mod world;

pub use agent::Agent;
pub use builder::{NetSimBuilder, SimOutput};
pub use fluid::{
    FluidFlowEntryState, FluidStats, FluidWorldState, FLUID_CONTROL_DELAY, FLUID_COORDINATOR,
    FLUID_EST_WINDOW, FLUID_UNBOUNDED,
};
pub use massf_faults::{FaultEvent, FaultKind, FaultScript, FaultState};
pub use massf_routing::RouteCacheStats;
pub use packet::{FlowId, NetEvent, Packet, PacketKind};
pub use profiling::ProfileData;
pub use tcp::{AbortReason, TcpSenderState, MAX_RETRIES};
pub use world::{
    validate_net_event, AppLogic, FlowEntryState, NetWorld, NoApp, ReceiverEntryState, SharedNet,
    SimApi, TransportKind, WorldState, DEFAULT_ROUTE_CACHE_CAPACITY,
};
