//! Fluid (flow-level) background traffic coexisting with packet-level
//! TCP on the same links (DESIGN.md §3 item 16).
//!
//! A fluid flow is not a packet train: it is a *rate on a path*. The
//! only events it generates are flow start, flow finish, and
//! bottleneck-rate recomputation — so a background flow that would cost
//! `2·hops` packet events per MSS round-trip costs a handful of events
//! over its whole lifetime. Rates are shared max-min fairly per
//! bottleneck link by an integer water-filling solver; all schedule-
//! ordered arithmetic is fixed-point (`u64` bytes/s rates, `u128`
//! byte-nanosecond residuals), so results are bit-identical at any
//! thread count and simlint's float-order rule (D4) stays clean.
//!
//! **Placement.** All solver state lives at one coordinator LP
//! ([`FLUID_COORDINATOR`], node 0): max-min fairness is a global fixed
//! point over every flow sharing a bottleneck, which cannot be computed
//! under the engine's LP-locality contract unless one LP owns it.
//! Every fluid control event targets (or originates at) the
//! coordinator, making sequential ↔ parallel bit-identity structural
//! rather than incidental.
//!
//! **Coupling.** The two fidelities interact in both directions:
//!
//! * fluid → packet: after each solve the coordinator reports the
//!   aggregate fluid rate per (link, direction) to the LP that
//!   serializes packets onto it ([`NetEvent::FluidCapUpdate`]). The
//!   packet path subtracts that rate from the line rate and charges the
//!   fluid share against the drop-tail buffer (see `transmit`).
//! * packet → fluid: once subscribed (first cap update seen), the
//!   transmitting LP estimates its packet load per link direction over
//!   [`FLUID_EST_WINDOW`] virtual-time windows and reports level
//!   changes back ([`NetEvent::FluidPacketLoad`]); the solver shares
//!   only the capacity packets leave behind.
//!
//! Both directions keep a `1/16` floor of the line rate for the other
//! fidelity so neither can starve the other into silence (a starved
//! side would stop generating the very events that feed the estimate).
//!
//! **Event economy.** Stored rates are always exact; completion alarms
//! are lazy. A rate *decrease* does not reschedule the armed
//! [`NetEvent::FluidFinish`] — the alarm fires early, notices the flow
//! is unfinished, and re-arms at the exact current rate. A rate
//! *increase* reschedules only past 25 % hysteresis
//! ([`REARM_NUM`]`/`[`REARM_DEN`]), bounding completion lateness to
//! the same factor (quantified by the `fluid_fidelity` bench). Flows
//! whose fair share is zero park without any pending event and are
//! re-armed by the next solve that touches their links.
//!
//! **Lookahead.** All cross-LP fluid control events use one uniform
//! delay, [`FLUID_CONTROL_DELAY`], *independent of partition
//! placement* — a placement-dependent delay would change event times
//! between sequential and parallel runs. Parallel executions of worlds
//! carrying fluid traffic must therefore use a synchronization window
//! `≤ min(MLL, FLUID_CONTROL_DELAY)`; a larger window fails with the
//! engine's structured `LookaheadViolation`, never silent divergence.

use crate::packet::{FlowId, NetEvent};
use crate::profiling::ProfileData;
use crate::world::{validate_route, SharedNet};
use massf_engine::{Emitter, LpId, SimTime};
use massf_faults::FaultKind;
use massf_topology::{MassfError, NodeId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The LP that owns all fluid solver state. Node 0 exists in every
/// non-empty topology.
pub const FLUID_COORDINATOR: NodeId = NodeId(0);

/// Uniform virtual-time delay for every cross-LP fluid control event
/// (cap updates, packet-load reports, API-initiated starts). Uniformity
/// is a determinism requirement, not a tuning knob: the delay must not
/// depend on where partition boundaries fall. Parallel windows must be
/// `≤` this value when fluid traffic is present.
pub const FLUID_CONTROL_DELAY: SimTime = SimTime::from_ms(1);

/// Virtual-time window over which transmitting LPs estimate their
/// packet load per link direction for the packet → fluid feedback.
pub const FLUID_EST_WINDOW: SimTime = SimTime::from_ms(10);

/// Demand sentinel: the flow takes whatever its bottleneck grants.
pub const FLUID_UNBOUNDED: u64 = u64::MAX;

/// Eager re-arm hysteresis: a rate increase reschedules the armed
/// finish alarm only when `new ≥ armed · REARM_NUM / REARM_DEN`.
const REARM_NUM: u64 = 5;
const REARM_DEN: u64 = 4;

/// Fraction of the line rate each fidelity keeps from the other:
/// packets never see less than `cap / PACKET_FLOOR_DIV`, and the fluid
/// solver never shares less than the same floor.
pub(crate) const PACKET_FLOOR_DIV: u64 = 16;

/// Aggregate-rate report quantum divisor: the coordinator re-reports a
/// link direction's fluid aggregate only when it moved by more than
/// `cap / CAP_REPORT_QUANTUM_DIV` (or crossed zero) since the last
/// report, keeping the fluid → packet event stream sparse.
const CAP_REPORT_QUANTUM_DIV: u64 = 64;

const NS_PER_SEC: u128 = 1_000_000_000;

/// Fluid-model profile counters, all owned by the coordinator LP (so
/// per-partition merges are plain sums with no double counting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FluidStats {
    /// Fluid flows admitted (routable at start time).
    pub started: u64,
    /// Flows that transferred all their bytes.
    pub completed: u64,
    /// Flows terminated by a fault with no surviving path.
    pub aborted: u64,
    /// Fault-driven path replacements on live flows.
    pub rerouted: u64,
    /// Start requests with no route (or `src == dst`).
    pub unroutable: u64,
    /// Per-flow rate assignments changed by the solver.
    pub rate_recomputes: u64,
    /// Link directions water-filled (closure size summed over solves).
    pub bottleneck_recomputes: u64,
    /// Finish alarms armed (initial arms plus lazy/eager re-arms).
    pub finish_arms: u64,
    /// Fluid → packet residual-capacity reports emitted.
    pub cap_updates: u64,
    /// Packet → fluid load reports received.
    pub packet_load_updates: u64,
}

impl FluidStats {
    /// Accumulate another partition's counters.
    pub fn merge(&mut self, other: &FluidStats) {
        self.started += other.started;
        self.completed += other.completed;
        self.aborted += other.aborted;
        self.rerouted += other.rerouted;
        self.unroutable += other.unroutable;
        self.rate_recomputes += other.rate_recomputes;
        self.bottleneck_recomputes += other.bottleneck_recomputes;
        self.finish_arms += other.finish_arms;
        self.cap_updates += other.cap_updates;
        self.packet_load_updates += other.packet_load_updates;
    }

    /// Flows currently in progress.
    pub fn active(&self) -> u64 {
        self.started
            .saturating_sub(self.completed)
            .saturating_sub(self.aborted)
    }
}

/// One live fluid flow in a [`FluidWorldState`]. All rates are bytes
/// per second; `remaining_bns` is byte-nanoseconds (`bytes · 10⁹`), the
/// fixed-point residual the solver decrements by `rate · Δt_ns`.
#[derive(Debug, Clone, PartialEq)]
pub struct FluidFlowEntryState {
    /// Flow id (owned by the coordinator's counter space).
    pub flow: FlowId,
    /// Resolved forward path.
    pub path: Vec<NodeId>,
    /// Demand cap, bytes/s ([`FLUID_UNBOUNDED`] = bottleneck-limited).
    pub demand_bps: u64,
    /// Current max-min rate, bytes/s.
    pub rate_bps: u64,
    /// Rate the pending finish alarm was computed at (0 = parked, no
    /// pending alarm).
    pub armed_rate_bps: u64,
    /// Residual transfer, byte-nanoseconds.
    pub remaining_bns: u128,
    /// Virtual time `remaining_bns` was last settled at.
    pub updated: SimTime,
    /// Finish-alarm epoch; stale alarms are ignored.
    pub epoch: u32,
}

/// Canonical image of all fluid state, independent of slab slot
/// recycling: flows sorted by id, coordinator-side per-slot arrays
/// (`packet_bps`, `reported_bps`) either empty (fluid never active) or
/// exactly `2·links` long. Link membership, aggregates, and the path
/// memo are derived and rebuilt on restore.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FluidWorldState {
    /// Live fluid flows, sorted by flow id.
    pub flows: Vec<FluidFlowEntryState>,
    /// Last packet-load report per (link, direction), bytes/s.
    pub packet_bps: Vec<u64>,
    /// Last aggregate fluid rate reported to the packet side per
    /// (link, direction); `u64::MAX` = never reported.
    pub reported_bps: Vec<u64>,
}

impl FluidWorldState {
    /// True when there is no fluid state to carry (the world never
    /// created a coordinator).
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty() && self.packet_bps.is_empty() && self.reported_bps.is_empty()
    }
}

/// Struct-of-arrays slab of live fluid flows (PR 6 layout pattern):
/// parallel arrays indexed by slot, freed slots recycled LIFO, and a
/// sorted id → slot index. Slot numbers never leak into events or
/// exports, so recycling order cannot affect results.
struct FluidSlab {
    flow: Vec<FlowId>,
    path: Vec<Arc<[NodeId]>>,
    /// Demand cap, bytes/s.
    demand: Vec<u64>,
    /// Current max-min rate, bytes/s.
    rate: Vec<u64>,
    /// Rate the pending finish alarm assumes (0 = parked).
    armed_rate: Vec<u64>,
    /// Residual transfer, byte-nanoseconds.
    remaining: Vec<u128>,
    /// Last settle time.
    updated: Vec<SimTime>,
    /// Finish-alarm epoch.
    epoch: Vec<u32>,
    free: Vec<u32>,
    by_id: BTreeMap<u64, u32>,
}

impl FluidSlab {
    fn new() -> Self {
        FluidSlab {
            flow: Vec::new(),
            path: Vec::new(),
            demand: Vec::new(),
            rate: Vec::new(),
            armed_rate: Vec::new(),
            remaining: Vec::new(),
            updated: Vec::new(),
            epoch: Vec::new(),
            free: Vec::new(),
            by_id: BTreeMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.flow.len()
    }
}

/// All fluid solver state; lives inside the `NodeStates` of whichever
/// world owns [`FLUID_COORDINATOR`] and is only touched while handling
/// events at that LP.
pub(crate) struct FluidState {
    slab: FluidSlab,
    /// Line rate per (link, direction), bytes/s, derived once from the
    /// topology (`≥ 1` so integer shares never divide by zero).
    cap: Vec<u64>,
    /// Last packet-load report per slot, bytes/s.
    packet_bps: Vec<u64>,
    /// Aggregate fluid rate per slot (derived; rebuilt on restore).
    agg_bps: Vec<u64>,
    /// Last aggregate reported to the packet side; `u64::MAX` = never.
    reported_bps: Vec<u64>,
    /// Member flow slots per (link, direction).
    members: Vec<Vec<u32>>,
    /// Path memo for the coordinator (the world's sharded route cache
    /// is owned per *source* LP and must not be touched from here).
    /// Cleared on fault-epoch change.
    path_memo: BTreeMap<u64, Arc<[NodeId]>>,
    memo_epoch: u32,
    /// Generation-stamped scratch marks for closure computation (no
    /// per-solve set allocation at million-flow scale).
    link_mark: Vec<u32>,
    flow_mark: Vec<u32>,
    /// Closure-local index of each marked flow slot, valid for the
    /// current `mark_gen` only.
    flow_local: Vec<u32>,
    mark_gen: u32,
    scratch_links: Vec<u32>,
    scratch_flows: Vec<u32>,
}

/// Visit the (link, direction) slot of every hop of `path`; returns
/// `false` if a hop is not an existing link (hostile input — callers
/// validate first, this is the backstop).
fn for_path_slots(shared: &SharedNet, path: &[NodeId], mut f: impl FnMut(u32)) -> bool {
    for w in path.windows(2) {
        let Some(link) = shared.link_between(w[0], w[1]) else {
            return false;
        };
        let dir = u32::from(link.a != w[0]);
        f(link.id.0 * 2 + dir);
    }
    true
}

/// The node that serializes onto slot `s` (`s = link·2 + dir`; dir 0
/// sends from `link.a`).
pub(crate) fn slot_sender(shared: &SharedNet, s: u32) -> NodeId {
    let link = &shared.net.links[(s / 2) as usize];
    if s.is_multiple_of(2) {
        link.a
    } else {
        link.b
    }
}

impl FluidState {
    pub(crate) fn new(shared: &SharedNet) -> Self {
        let slots = shared.net.links.len() * 2;
        let mut cap = Vec::with_capacity(slots);
        for &c in &shared.cap_bytes_per_sec {
            cap.push(c);
            cap.push(c);
        }
        FluidState {
            slab: FluidSlab::new(),
            cap,
            packet_bps: vec![0; slots],
            agg_bps: vec![0; slots],
            reported_bps: vec![u64::MAX; slots],
            members: vec![Vec::new(); slots],
            path_memo: BTreeMap::new(),
            memo_epoch: 0,
            link_mark: vec![0; slots],
            flow_mark: Vec::new(),
            flow_local: Vec::new(),
            mark_gen: 0,
            scratch_links: Vec::new(),
            scratch_flows: Vec::new(),
        }
    }

    /// Capacity the solver may share on slot `s`: line rate minus the
    /// reported packet load, floored at `cap / PACKET_FLOOR_DIV` so
    /// saturating packet traffic cannot park fluid flows forever (a
    /// parked link with no packet events would never be re-reported).
    fn cap_avail(&self, s: usize) -> u64 {
        self.cap[s]
            .saturating_sub(self.packet_bps[s])
            .max(self.cap[s] / PACKET_FLOOR_DIV)
    }

    /// Resolve `src → dst` against the fault epoch at `now` through the
    /// coordinator's own memo (interns one `Arc` per pair per epoch).
    fn resolve(
        &mut self,
        shared: &SharedNet,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
    ) -> Option<Arc<[NodeId]>> {
        let epoch = match &shared.faults {
            Some(f) => f.epoch_at(now) as u32,
            None => 0,
        };
        if epoch != self.memo_epoch {
            self.path_memo.clear();
            self.memo_epoch = epoch;
        }
        let key = ((src.0 as u64) << 32) | dst.0 as u64;
        if let Some(p) = self.path_memo.get(&key) {
            return Some(p.clone());
        }
        let p = shared.resolver_at(now).route_arc(src, dst)?;
        self.path_memo.insert(key, p.clone());
        Some(p)
    }

    /// Advance `remaining` to `now` at the exact stored rate.
    fn settle(&mut self, f: usize, now: SimTime) {
        let dt = now.saturating_sub(self.slab.updated[f]).as_ns();
        if dt > 0 && self.slab.rate[f] > 0 {
            let done = (self.slab.rate[f] as u128) * (dt as u128);
            self.slab.remaining[f] = self.slab.remaining[f].saturating_sub(done);
        }
        self.slab.updated[f] = now;
    }

    /// Arm the finish alarm for flow slot `f` at its current rate.
    fn arm(
        &mut self,
        f: usize,
        now: SimTime,
        profile: &mut ProfileData,
        out: &mut Emitter<'_, NetEvent>,
    ) {
        let r = self.slab.rate[f];
        debug_assert!(r > 0, "arming a rate-0 flow would never fire");
        self.slab.epoch[f] = self.slab.epoch[f].wrapping_add(1);
        self.slab.armed_rate[f] = r;
        let d = self.slab.remaining[f].div_ceil(r as u128);
        let headroom = (u64::MAX - now.as_ns()) as u128;
        let delay = SimTime::from_ns(u64::try_from(d.min(headroom)).unwrap_or(u64::MAX));
        out.emit(
            delay,
            LpId(FLUID_COORDINATOR.0),
            NetEvent::FluidFinish {
                flow: self.slab.flow[f],
                epoch: self.slab.epoch[f],
            },
        );
        profile.fluid.finish_arms += 1;
    }

    fn alloc_slot(&mut self) -> usize {
        if let Some(s) = self.slab.free.pop() {
            return s as usize;
        }
        self.slab.flow.push(FlowId(0));
        self.slab.path.push(Arc::from([]));
        self.slab.demand.push(0);
        self.slab.rate.push(0);
        self.slab.armed_rate.push(0);
        self.slab.remaining.push(0);
        self.slab.updated.push(SimTime::ZERO);
        self.slab.epoch.push(0);
        self.flow_mark.push(0);
        self.flow_local.push(0);
        self.slab.len() - 1
    }

    fn add_membership(&mut self, shared: &SharedNet, f: usize, seeds: &mut Vec<u32>) {
        let path = self.slab.path[f].clone();
        for_path_slots(shared, &path, |s| {
            self.members[s as usize].push(f as u32);
            seeds.push(s);
        });
    }

    fn remove_membership(&mut self, shared: &SharedNet, f: usize, seeds: &mut Vec<u32>) {
        let path = self.slab.path[f].clone();
        for_path_slots(shared, &path, |s| {
            self.members[s as usize].retain(|&m| m != f as u32);
            seeds.push(s);
        });
    }

    /// Handle [`NetEvent::FluidStart`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        &mut self,
        shared: &SharedNet,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        peak_bps: u64,
        counter: &mut u32,
        profile: &mut ProfileData,
        out: &mut Emitter<'_, NetEvent>,
    ) -> Option<FlowId> {
        if src == dst {
            profile.fluid.unroutable += 1;
            return None;
        }
        let Some(path) = self.resolve(shared, now, src, dst) else {
            profile.fluid.unroutable += 1;
            return None;
        };
        let flow = FlowId::new(FLUID_COORDINATOR, *counter);
        *counter += 1;
        profile.fluid.started += 1;
        let f = self.alloc_slot();
        self.slab.flow[f] = flow;
        self.slab.path[f] = path;
        // peak_bps is bits/s at the API surface (matching link
        // bandwidth); stored demand is bytes/s, floored at 1 so a
        // bounded flow can always finish.
        self.slab.demand[f] = if peak_bps == 0 {
            FLUID_UNBOUNDED
        } else {
            (peak_bps / 8).max(1)
        };
        self.slab.rate[f] = 0;
        self.slab.armed_rate[f] = 0;
        self.slab.remaining[f] = bytes as u128 * NS_PER_SEC;
        self.slab.updated[f] = now;
        self.slab.epoch[f] = 0;
        self.slab.by_id.insert(flow.0, f as u32);
        let mut seeds = Vec::new();
        self.add_membership(shared, f, &mut seeds);
        self.solve(shared, now, &seeds, profile, out);
        Some(flow)
    }

    /// Handle [`NetEvent::FluidFinish`]; returns `(src, dst)` when the
    /// flow actually completed (for the app callback).
    pub(crate) fn finish(
        &mut self,
        shared: &SharedNet,
        now: SimTime,
        flow: FlowId,
        epoch: u32,
        profile: &mut ProfileData,
        out: &mut Emitter<'_, NetEvent>,
    ) -> Option<(NodeId, NodeId)> {
        let f = *self.slab.by_id.get(&flow.0)? as usize;
        if self.slab.epoch[f] != epoch {
            return None; // stale alarm: the flow was re-armed since
        }
        self.settle(f, now);
        if self.slab.remaining[f] == 0 {
            let path = self.slab.path[f].clone();
            let (src, dst) = (path[0], *path.last().unwrap_or(&path[0]));
            let mut seeds = Vec::new();
            self.remove_membership(shared, f, &mut seeds);
            self.slab.by_id.remove(&flow.0);
            self.slab.rate[f] = 0;
            self.slab.armed_rate[f] = 0;
            self.slab.path[f] = Arc::from([]);
            self.slab.free.push(f as u32);
            profile.fluid.completed += 1;
            self.solve(shared, now, &seeds, profile, out);
            Some((src, dst))
        } else if self.slab.rate[f] > 0 {
            // Early alarm (the rate dropped since arming, lazily):
            // re-arm at the exact current rate.
            self.arm(f, now, profile, out);
            None
        } else {
            // Fair share is currently zero: park. The next solve that
            // touches this flow's links re-arms it.
            self.slab.armed_rate[f] = 0;
            None
        }
    }

    /// Handle [`NetEvent::FluidPacketLoad`].
    pub(crate) fn packet_load(
        &mut self,
        shared: &SharedNet,
        now: SimTime,
        slot: u32,
        bps: u64,
        profile: &mut ProfileData,
        out: &mut Emitter<'_, NetEvent>,
    ) {
        let s = slot as usize;
        if s >= self.packet_bps.len() {
            return; // validated on snapshot load; backstop for in-run events
        }
        profile.fluid.packet_load_updates += 1;
        if self.packet_bps[s] == bps {
            return;
        }
        self.packet_bps[s] = bps;
        if self.members[s].is_empty() {
            return;
        }
        self.solve(shared, now, &[slot], profile, out);
    }

    /// Handle [`NetEvent::FluidFault`]: reroute or terminate every
    /// fluid flow traversing the failed element, then re-share. Returns
    /// the aborted flows as `(flow, src, dst)`, in flow-id order.
    pub(crate) fn fault(
        &mut self,
        shared: &SharedNet,
        now: SimTime,
        kind: FaultKind,
        profile: &mut ProfileData,
        out: &mut Emitter<'_, NetEvent>,
    ) -> Vec<(FlowId, NodeId, NodeId)> {
        // Affected flows: members of the failed element's link
        // directions. Restores are deliberately no-ops — live flows
        // keep their (still valid) detour paths, mirroring packet TCP,
        // which also fails over only on loss. Adjacency failures cannot
        // be localized to links, so every flow re-resolves.
        let mut touched: Vec<u32> = Vec::new();
        match kind {
            FaultKind::LinkDown(l) => {
                touched.push(l.0 * 2);
                touched.push(l.0 * 2 + 1);
            }
            FaultKind::RouterCrash(n) => {
                for &l in shared.incident_links(n) {
                    touched.push(l * 2);
                    touched.push(l * 2 + 1);
                }
            }
            FaultKind::AsAdjacencyFail { .. } => {}
            FaultKind::LinkUp(_)
            | FaultKind::RouterRecover(_)
            | FaultKind::AsAdjacencyRestore { .. } => return Vec::new(),
        }
        let mut affected: Vec<(u64, u32)> = match kind {
            FaultKind::AsAdjacencyFail { .. } => self
                .slab
                .by_id
                .iter()
                .map(|(&id, &slot)| (id, slot))
                .collect(),
            _ => {
                let mut v: Vec<(u64, u32)> = Vec::new();
                for &s in &touched {
                    if let Some(m) = self.members.get(s as usize) {
                        v.extend(m.iter().map(|&f| (self.slab.flow[f as usize].0, f)));
                    }
                }
                v.sort_unstable();
                v.dedup();
                v
            }
        };
        affected.sort_unstable();
        let mut aborted = Vec::new();
        let mut seeds: Vec<u32> = touched;
        for &(_, fslot) in &affected {
            let f = fslot as usize;
            self.settle(f, now);
            let old = self.slab.path[f].clone();
            let (src, dst) = (old[0], *old.last().unwrap_or(&old[0]));
            match self.resolve(shared, now, src, dst) {
                Some(new) if new == old => {}
                Some(new) => {
                    self.remove_membership(shared, f, &mut seeds);
                    self.slab.path[f] = new;
                    self.add_membership(shared, f, &mut seeds);
                    profile.fluid.rerouted += 1;
                }
                None => {
                    self.remove_membership(shared, f, &mut seeds);
                    self.slab.by_id.remove(&self.slab.flow[f].0);
                    self.slab.rate[f] = 0;
                    self.slab.armed_rate[f] = 0;
                    self.slab.path[f] = Arc::from([]);
                    self.slab.free.push(fslot);
                    profile.fluid.aborted += 1;
                    aborted.push((self.slab.flow[f], src, dst));
                }
            }
        }
        if !seeds.is_empty() {
            self.solve(shared, now, &seeds, profile, out);
        }
        aborted
    }

    /// Recompute max-min fair rates over the closure of `seeds`:
    /// starting from the seed link directions, alternate
    /// link → member flows → their path links to a fixed point, settle
    /// every closure flow, then water-fill with a monotone integer
    /// level. Emission order is canonical (finish alarms in flow-id
    /// order, cap updates in slot order), so slab slot recycling can
    /// never reorder events.
    fn solve(
        &mut self,
        shared: &SharedNet,
        now: SimTime,
        seeds: &[u32],
        profile: &mut ProfileData,
        out: &mut Emitter<'_, NetEvent>,
    ) {
        // 1. Closure (generation-stamped marks; no per-solve sets).
        self.mark_gen = self.mark_gen.wrapping_add(1);
        if self.mark_gen == 0 {
            // Wrapped: stale marks could alias; reset and burn gen 0.
            self.link_mark.iter_mut().for_each(|m| *m = 0);
            self.flow_mark.iter_mut().for_each(|m| *m = 0);
            self.mark_gen = 1;
        }
        let gen = self.mark_gen;
        let mut links = std::mem::take(&mut self.scratch_links);
        let mut flows = std::mem::take(&mut self.scratch_flows);
        links.clear();
        flows.clear();
        for &s in seeds {
            if let Some(m) = self.link_mark.get_mut(s as usize) {
                if *m != gen {
                    *m = gen;
                    links.push(s);
                }
            }
        }
        let mut i = 0;
        while i < links.len() {
            let s = links[i] as usize;
            i += 1;
            let mut mi = 0;
            while mi < self.members[s].len() {
                let f = self.members[s][mi] as usize;
                mi += 1;
                if self.flow_mark[f] != gen {
                    self.flow_mark[f] = gen;
                    flows.push(f as u32);
                    let path = self.slab.path[f].clone();
                    for_path_slots(shared, &path, |slot| {
                        let m = &mut self.link_mark[slot as usize];
                        if *m != gen {
                            *m = gen;
                            links.push(slot);
                        }
                    });
                }
            }
        }
        links.sort_unstable();

        // 2. Canonical flow order + closure-local indices.
        let mut fl: Vec<(u64, u32)> = flows
            .iter()
            .map(|&f| (self.slab.flow[f as usize].0, f))
            .collect();
        fl.sort_unstable();
        for (li, &(_, f)) in fl.iter().enumerate() {
            self.flow_local[f as usize] = li as u32;
        }
        for &(_, f) in &fl {
            self.settle(f as usize, now);
        }

        // 3. Water-fill. `avail`/`unfixed` are indexed like `links`
        // (sorted, binary-searchable); demands ascend once, and each
        // round either fixes the globally smallest unfixed demand (it
        // is ≤ every fair share, so demand-limited) or saturates the
        // minimum-share link, fixing all its unfixed members at the
        // floor share. Every round fixes ≥ 1 flow.
        let lidx = |links: &[u32], s: u32| -> usize {
            links.partition_point(|&x| x < s) // s is always present
        };
        let mut avail: Vec<u64> = links.iter().map(|&s| self.cap_avail(s as usize)).collect();
        let mut unfixed_cnt: Vec<u64> = vec![0; links.len()];
        for &(_, f) in &fl {
            let path = self.slab.path[f as usize].clone();
            for_path_slots(shared, &path, |s| {
                unfixed_cnt[lidx(&links, s)] += 1;
            });
        }
        let mut fixed = vec![false; fl.len()];
        let mut newrate = vec![0u64; fl.len()];
        let mut by_demand: Vec<(u64, u32)> = fl
            .iter()
            .enumerate()
            .map(|(li, &(_, f))| (self.slab.demand[f as usize], li as u32))
            .collect();
        by_demand.sort_unstable();
        let mut dp = 0usize;
        let mut left = fl.len();
        while left > 0 {
            let mut min_share = u64::MAX;
            let mut min_link = usize::MAX;
            for (li, &cnt) in unfixed_cnt.iter().enumerate() {
                if let Some(share) = avail[li].checked_div(cnt) {
                    if share < min_share {
                        min_share = share;
                        min_link = li;
                    }
                }
            }
            debug_assert!(min_link != usize::MAX, "every flow traverses ≥ 1 link");
            while dp < by_demand.len() && fixed[by_demand[dp].1 as usize] {
                dp += 1;
            }
            let fix = |fi: usize,
                       r: u64,
                       fixed: &mut [bool],
                       newrate: &mut [u64],
                       avail: &mut [u64],
                       unfixed_cnt: &mut [u64],
                       left: &mut usize| {
                fixed[fi] = true;
                newrate[fi] = r;
                *left -= 1;
                let f = fl[fi].1 as usize;
                let path = self.slab.path[f].clone();
                for_path_slots(shared, &path, |s| {
                    let li = lidx(&links, s);
                    avail[li] = avail[li].saturating_sub(r);
                    unfixed_cnt[li] = unfixed_cnt[li].saturating_sub(1);
                });
            };
            if dp < by_demand.len() && by_demand[dp].0 <= min_share {
                let fi = by_demand[dp].1 as usize;
                let d = by_demand[dp].0;
                fix(
                    fi,
                    d,
                    &mut fixed,
                    &mut newrate,
                    &mut avail,
                    &mut unfixed_cnt,
                    &mut left,
                );
            } else {
                let s = links[min_link] as usize;
                let mut mi = 0;
                while mi < self.members[s].len() {
                    let f = self.members[s][mi] as usize;
                    mi += 1;
                    if self.flow_mark[f] == gen {
                        let fi = self.flow_local[f] as usize;
                        if !fixed[fi] {
                            fix(
                                fi,
                                min_share,
                                &mut fixed,
                                &mut newrate,
                                &mut avail,
                                &mut unfixed_cnt,
                                &mut left,
                            );
                        }
                    }
                }
            }
        }

        // 4. Apply rates and (re-)arm finish alarms, flow-id order.
        for (fi, &(_, f)) in fl.iter().enumerate() {
            let f = f as usize;
            let r = newrate[fi];
            if r != self.slab.rate[f] {
                self.slab.rate[f] = r;
                profile.fluid.rate_recomputes += 1;
            }
            let armed = self.slab.armed_rate[f];
            // Lazy on decreases (the pending alarm fires early and
            // re-arms exactly); eager past 25 % hysteresis on
            // increases; always on wake-from-park.
            if r > 0 && (armed == 0 || r >= (armed / REARM_DEN).saturating_mul(REARM_NUM)) {
                self.arm(f, now, profile, out);
            }
        }

        // 5. Refresh aggregates; report level changes, slot order.
        profile.fluid.bottleneck_recomputes += links.len() as u64;
        for &s in &links {
            let s = s as usize;
            let mut agg = 0u64;
            for &f in &self.members[s] {
                agg = agg.saturating_add(self.slab.rate[f as usize]);
            }
            self.agg_bps[s] = agg;
            let reported = self.reported_bps[s];
            let quantum = (self.cap[s] / CAP_REPORT_QUANTUM_DIV).max(1);
            if reported == u64::MAX
                || agg.abs_diff(reported) >= quantum
                || (agg == 0) != (reported == 0)
            {
                self.reported_bps[s] = agg;
                profile.fluid.cap_updates += 1;
                out.emit(
                    FLUID_CONTROL_DELAY,
                    // simlint: allow(cast-lossy) -- slot count bounded by 2·links, far below u32::MAX
                    LpId(slot_sender(shared, s as u32).0),
                    NetEvent::FluidCapUpdate {
                        slot: s as u32,
                        fluid_bps: agg,
                    },
                );
            }
        }
        self.scratch_links = links;
        self.scratch_flows = flows;
    }

    /// Canonical export (see [`FluidWorldState`]).
    pub(crate) fn export(&self) -> FluidWorldState {
        let mut flows = Vec::with_capacity(self.slab.by_id.len());
        for (&id, &slot) in &self.slab.by_id {
            let f = slot as usize;
            flows.push(FluidFlowEntryState {
                flow: FlowId(id),
                path: self.slab.path[f].to_vec(),
                demand_bps: self.slab.demand[f],
                rate_bps: self.slab.rate[f],
                armed_rate_bps: self.slab.armed_rate[f],
                remaining_bns: self.slab.remaining[f],
                updated: self.slab.updated[f],
                epoch: self.slab.epoch[f],
            });
        }
        FluidWorldState {
            flows,
            packet_bps: self.packet_bps.clone(),
            reported_bps: self.reported_bps.clone(),
        }
    }

    /// Rebuild from a canonical state, validated as hostile input.
    /// Slots are assigned in sorted flow-id order, so restore → export
    /// is byte-identical regardless of the original world's recycling
    /// history. `issued` is the coordinator's flow counter.
    pub(crate) fn restore(
        shared: &SharedNet,
        st: &FluidWorldState,
        issued: u32,
    ) -> Result<FluidState, MassfError> {
        let bad = |reason: String| MassfError::SnapshotCorrupt {
            section: "fluid".into(),
            reason,
        };
        let slots = shared.net.links.len() * 2;
        let mut fs = FluidState::new(shared);
        for (name, arr) in [
            ("packet_bps", &st.packet_bps),
            ("reported_bps", &st.reported_bps),
        ] {
            if !arr.is_empty() && arr.len() != slots {
                return Err(bad(format!(
                    "fluid {name} covers {} slots, network has {slots}",
                    arr.len()
                )));
            }
        }
        if !st.packet_bps.is_empty() {
            fs.packet_bps = st.packet_bps.clone();
        }
        if !st.reported_bps.is_empty() {
            fs.reported_bps = st.reported_bps.clone();
        }
        let mut prev: Option<u64> = None;
        for e in &st.flows {
            if prev.is_some_and(|p| e.flow.0 <= p) {
                return Err(bad("fluid flows are not strictly sorted by id".into()));
            }
            prev = Some(e.flow.0);
            if e.flow.source() != FLUID_COORDINATOR {
                return Err(bad(format!(
                    "fluid flow {:#x} not in the coordinator's counter space",
                    e.flow.0
                )));
            }
            let counter = (e.flow.0 & 0xFFFF_FFFF) as u32;
            if counter >= issued {
                return Err(bad(format!(
                    "fluid flow counter {counter} not yet issued by the coordinator"
                )));
            }
            validate_route(shared, &e.path, "fluid")?;
            let f = fs.alloc_slot();
            fs.slab.flow[f] = e.flow;
            fs.slab.path[f] = Arc::from(e.path.as_slice());
            fs.slab.demand[f] = e.demand_bps;
            fs.slab.rate[f] = e.rate_bps;
            fs.slab.armed_rate[f] = e.armed_rate_bps;
            fs.slab.remaining[f] = e.remaining_bns;
            fs.slab.updated[f] = e.updated;
            fs.slab.epoch[f] = e.epoch;
            fs.slab.by_id.insert(e.flow.0, f as u32);
            let mut seeds = Vec::new();
            fs.add_membership(shared, f, &mut seeds);
        }
        // Aggregates are derived: rebuild without emitting reports.
        for s in 0..slots {
            let mut agg = 0u64;
            for &f in &fs.members[s] {
                agg = agg.saturating_add(fs.slab.rate[f as usize]);
            }
            fs.agg_bps[s] = agg;
        }
        Ok(fs)
    }

    /// Max-min fairness invariants over the live state, for tests:
    /// no link direction oversubscribed beyond its shareable capacity,
    /// no flow above demand, and every below-demand flow bottlenecked
    /// at some link that cannot grant each member one more byte/s.
    pub(crate) fn check_invariants(&self) -> Result<(), String> {
        for (s, members) in self.members.iter().enumerate() {
            let mut agg = 0u64;
            for &f in members {
                agg = agg.saturating_add(self.slab.rate[f as usize]);
            }
            if agg != self.agg_bps[s] {
                return Err(format!(
                    "slot {s}: aggregate {} != cached {}",
                    agg, self.agg_bps[s]
                ));
            }
            if agg > self.cap_avail(s) {
                return Err(format!(
                    "slot {s} oversubscribed: {agg} > {}",
                    self.cap_avail(s)
                ));
            }
        }
        for (&id, &slot) in &self.slab.by_id {
            let f = slot as usize;
            let (rate, demand) = (self.slab.rate[f], self.slab.demand[f]);
            if rate > demand {
                return Err(format!("flow {id:#x}: rate {rate} above demand {demand}"));
            }
            if rate < demand {
                let mut bottlenecked = false;
                for (s, members) in self.members.iter().enumerate() {
                    if members.contains(&(f as u32))
                        && self.cap_avail(s).saturating_sub(self.agg_bps[s]) < members.len() as u64
                    {
                        bottlenecked = true;
                        break;
                    }
                }
                if !bottlenecked {
                    return Err(format!(
                        "flow {id:#x}: below demand ({rate} < {demand}) with no saturated link"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Number of live fluid flows.
    pub(crate) fn live_flows(&self) -> usize {
        self.slab.by_id.len()
    }
}

/// Per-world, per-(link, direction) coupling state on the *packet*
/// side: the fluid rate last reported by the coordinator, and the
/// packet-load estimator windows. Lazily allocated on the first
/// [`NetEvent::FluidCapUpdate`] a world receives, so packet-only runs
/// carry no extra state (and export empty arrays).
#[derive(Default)]
pub(crate) struct FluidCoupling {
    /// Fluid rate per slot, bytes/s; `u64::MAX` = slot not subscribed
    /// (no estimator, full line rate for packets).
    pub(crate) fluid_bps: Vec<u64>,
    /// Open estimator window start per slot; `SimTime::MAX` = closed.
    pub(crate) est_start: Vec<SimTime>,
    /// Bytes serialized in the open window.
    pub(crate) est_bytes: Vec<u64>,
    /// Last load level reported to the coordinator, bytes/s.
    pub(crate) est_reported: Vec<u64>,
}

impl FluidCoupling {
    fn ensure(&mut self, slots: usize) {
        if self.fluid_bps.is_empty() {
            self.fluid_bps = vec![u64::MAX; slots];
            self.est_start = vec![SimTime::MAX; slots];
            self.est_bytes = vec![0; slots];
            self.est_reported = vec![0; slots];
        }
    }

    /// Install a coordinator-reported fluid rate; first contact
    /// allocates the arrays and activates the estimator for that slot.
    pub(crate) fn subscribe(&mut self, slots: usize, slot: u32, fluid_bps: u64) {
        self.ensure(slots);
        if let Some(v) = self.fluid_bps.get_mut(slot as usize) {
            *v = fluid_bps;
        }
    }

    /// Account `bytes` serialized onto `slot` at `now`; when the
    /// estimator window rolls over, quantize the observed level and
    /// report a change to the coordinator. Integer throughout.
    pub(crate) fn observe(
        &mut self,
        cap_bytes: u64,
        slot: usize,
        bytes: u64,
        now: SimTime,
        out: &mut Emitter<'_, NetEvent>,
    ) {
        let start = self.est_start[slot];
        if start == SimTime::MAX {
            self.est_start[slot] = now;
            self.est_bytes[slot] = bytes;
            return;
        }
        let span = now.saturating_sub(start);
        if span < FLUID_EST_WINDOW {
            self.est_bytes[slot] += bytes;
            return;
        }
        // Window rolls: level over the *actual* virtual-time span, so
        // idle gaps decay the estimate naturally.
        let level = ((self.est_bytes[slot] as u128 * NS_PER_SEC) / span.as_ns().max(1) as u128)
            .min(u64::MAX as u128) as u64;
        let quantum = (cap_bytes / CAP_REPORT_QUANTUM_DIV).max(1);
        let level_q = level / quantum * quantum;
        if level_q != self.est_reported[slot] {
            self.est_reported[slot] = level_q;
            out.emit(
                FLUID_CONTROL_DELAY,
                LpId(FLUID_COORDINATOR.0),
                NetEvent::FluidPacketLoad {
                    // simlint: allow(cast-lossy) -- slot count bounded by 2·links, far below u32::MAX
                    slot: slot as u32,
                    bps: level_q,
                },
            );
        }
        self.est_start[slot] = now;
        self.est_bytes[slot] = bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::segments_for;
    use crate::world::{events_per_roundtrip, AppLogic, NetWorld, NoApp, SimApi};
    use massf_engine::run_sequential;
    use massf_routing::{CostMetric, FlatResolver};
    use massf_topology::{AsId, Network, NodeKind, Point};

    /// host A — r1 — r2 — B; the middle link is the bottleneck. With
    /// `bottleneck_bps = 8e6` the shareable capacity is exactly
    /// 1 000 000 bytes/s, which keeps expected fair shares integral.
    fn dumbbell(bottleneck_bps: f64) -> (Arc<SharedNet>, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, Point::new(0.0, 0.0), AsId(0));
        let r1 = net.add_node(NodeKind::Router, Point::new(10.0, 0.0), AsId(0));
        let r2 = net.add_node(NodeKind::Router, Point::new(20.0, 0.0), AsId(0));
        let b = net.add_node(NodeKind::Host, Point::new(30.0, 0.0), AsId(0));
        net.add_link(a, r1, 1e9, 0.1);
        net.add_link(r1, r2, bottleneck_bps, 1.0);
        net.add_link(r2, b, 1e9, 0.1);
        let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
        (SharedNet::new(net, resolver), a, b)
    }

    fn fluid_start(
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        peak_bps: u64,
    ) -> (SimTime, LpId, NetEvent) {
        (
            SimTime::ZERO,
            LpId(FLUID_COORDINATOR.0),
            NetEvent::FluidStart {
                src,
                dst,
                bytes,
                peak_bps,
            },
        )
    }

    fn run<A: AppLogic>(
        shared: Arc<SharedNet>,
        app: A,
        events: Vec<(SimTime, LpId, NetEvent)>,
        end: SimTime,
    ) -> (NetWorld<A>, massf_engine::ExecutionStats) {
        let n = shared.lp_count();
        let mut world = NetWorld::new(shared, app);
        let stats = run_sequential(&mut world, n, events, end);
        (world, stats)
    }

    #[test]
    fn unbounded_flows_share_the_bottleneck_max_min() {
        let (shared, a, b) = dumbbell(8e6); // 1_000_000 B/s shareable
        let events = (0..3)
            .map(|_| fluid_start(a, b, 1_000_000_000_000, 0))
            .collect();
        let (world, _) = run(shared, NoApp, events, SimTime::from_ms(100));
        world
            .check_fluid_invariants()
            .expect("max-min invariants must hold");
        assert_eq!(world.fluid_live_flows(), 3);
        let st = world.export_state();
        assert_eq!(st.fluid.flows.len(), 3);
        for f in &st.fluid.flows {
            assert_eq!(f.rate_bps, 333_333, "equal max-min shares of 1 MB/s");
            assert_eq!(f.demand_bps, FLUID_UNBOUNDED);
        }
        assert_eq!(world.profile().fluid.started, 3);
        assert_eq!(world.profile().fluid.completed, 0);
    }

    #[test]
    fn capped_flow_frees_share_for_the_rest() {
        let (shared, a, b) = dumbbell(8e6);
        // 800 kbit/s peak = 100_000 B/s demand; the remaining
        // 900_000 B/s splits evenly between the two unbounded flows.
        let events = vec![
            fluid_start(a, b, 1_000_000_000_000, 800_000),
            fluid_start(a, b, 1_000_000_000_000, 0),
            fluid_start(a, b, 1_000_000_000_000, 0),
        ];
        let (world, _) = run(shared, NoApp, events, SimTime::from_ms(100));
        world
            .check_fluid_invariants()
            .expect("max-min invariants must hold");
        let st = world.export_state();
        // Flow ids are issued in seed order; export is id-sorted.
        let rates: Vec<u64> = st.fluid.flows.iter().map(|f| f.rate_bps).collect();
        assert_eq!(rates, vec![100_000, 450_000, 450_000]);
    }

    #[test]
    fn completion_fires_callback_with_few_events() {
        struct Sink(Vec<(NodeId, FlowId, NodeId)>);
        impl AppLogic for Sink {
            fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
            fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi<'_, '_>) {}
            fn on_fluid_complete(
                &mut self,
                src: NodeId,
                flow: FlowId,
                dst: NodeId,
                _: &mut SimApi<'_, '_>,
            ) {
                self.0.push((src, flow, dst));
            }
        }
        let (shared, a, b) = dumbbell(8e6);
        // 1 MB at 1 MB/s: finishes at exactly t = 1 s.
        let bytes = 1_000_000u64;
        let (world, stats) = run(
            shared,
            Sink(Vec::new()),
            vec![fluid_start(a, b, bytes, 0)],
            SimTime::from_secs(2),
        );
        assert_eq!(world.profile().fluid.completed, 1);
        assert_eq!(world.fluid_live_flows(), 0);
        assert_eq!(world.app().0.len(), 1);
        let (src, flow, dst) = world.app().0[0];
        assert_eq!((src, dst), (a, b));
        assert_eq!(flow.source(), FLUID_COORDINATOR);
        // Event economy: start + finish + a handful of cap reports,
        // versus 2 events per hop per MSS segment at packet level.
        assert!(stats.total_events < 20, "got {}", stats.total_events);
        let packet_equiv = segments_for(bytes) as u64 * events_per_roundtrip(3);
        assert!(
            packet_equiv >= 50 * stats.total_events,
            "reduction only {packet_equiv}/{}",
            stats.total_events
        );
    }

    #[test]
    fn src_eq_dst_counts_unroutable() {
        let (shared, a, _) = dumbbell(8e6);
        let (world, _) = run(
            shared,
            NoApp,
            vec![fluid_start(a, a, 1_000, 0)],
            SimTime::from_ms(10),
        );
        assert_eq!(world.profile().fluid.unroutable, 1);
        assert_eq!(world.profile().fluid.started, 0);
        assert_eq!(world.fluid_live_flows(), 0);
    }

    /// A mid-run export with live flows, as hostile-restore raw material.
    fn exported_mid_run() -> (Arc<SharedNet>, crate::world::WorldState) {
        let (shared, a, b) = dumbbell(8e6);
        let events = vec![
            fluid_start(a, b, 1_000_000_000, 0),
            fluid_start(a, b, 1_000_000_000, 0),
        ];
        let (world, _) = run(shared.clone(), NoApp, events, SimTime::from_ms(50));
        assert_eq!(world.fluid_live_flows(), 2);
        (shared, world.export_state())
    }

    #[test]
    fn restore_rejects_unsorted_flows() {
        let (shared, mut st) = exported_mid_run();
        st.fluid.flows.swap(0, 1);
        assert!(NetWorld::restore(shared, NoApp, &st).is_err());
    }

    #[test]
    fn restore_rejects_foreign_counter_space() {
        let (shared, mut st) = exported_mid_run();
        st.fluid.flows[0].flow = FlowId::new(NodeId(1), 0);
        assert!(NetWorld::restore(shared, NoApp, &st).is_err());
    }

    #[test]
    fn restore_rejects_unissued_flow_ids() {
        let (shared, mut st) = exported_mid_run();
        st.flow_counter[FLUID_COORDINATOR.index()] = 0;
        assert!(NetWorld::restore(shared, NoApp, &st).is_err());
    }

    #[test]
    fn restore_rejects_non_adjacent_paths() {
        let (shared, mut st) = exported_mid_run();
        let path = st.fluid.flows[0].path.clone();
        st.fluid.flows[0].path = vec![path[0], *path.last().expect("path is non-empty")];
        assert!(NetWorld::restore(shared, NoApp, &st).is_err());
    }

    #[test]
    fn restore_rejects_wrong_slot_array_length() {
        let (shared, mut st) = exported_mid_run();
        st.fluid.packet_bps = vec![0; 1];
        assert!(NetWorld::restore(shared, NoApp, &st).is_err());
    }

    #[test]
    fn restore_export_is_idempotent_under_slot_recycling() {
        let (shared, a, b) = dumbbell(8e6);
        // Flow 0 finishes at t = 0.1 s and frees its slot; flows started
        // afterwards recycle it. The canonical export must not care.
        let mut events = vec![fluid_start(a, b, 100_000, 0)];
        for _ in 0..3 {
            events.push((
                SimTime::from_ms(200),
                LpId(FLUID_COORDINATOR.0),
                NetEvent::FluidStart {
                    src: a,
                    dst: b,
                    bytes: 1_000_000_000,
                    peak_bps: 0,
                },
            ));
        }
        let (world, _) = run(shared.clone(), NoApp, events, SimTime::from_ms(300));
        assert_eq!(world.profile().fluid.completed, 1);
        assert_eq!(world.fluid_live_flows(), 3);
        let st1 = world.export_state();
        let world2 = NetWorld::restore(shared, NoApp, &st1).expect("mid-run export must restore");
        world2
            .check_fluid_invariants()
            .expect("max-min invariants must hold");
        let st2 = world2.export_state();
        assert_eq!(st1.fluid, st2.fluid);
        assert_eq!(st1.flow_counter, st2.flow_counter);
        assert_eq!(st1.busy_until, st2.busy_until);
        assert_eq!(st1.fluid_seen_bps, st2.fluid_seen_bps);
        assert_eq!(st1.fluid_est_start, st2.fluid_est_start);
        assert_eq!(st1.fluid_est_bytes, st2.fluid_est_bytes);
        assert_eq!(st1.fluid_est_reported, st2.fluid_est_reported);
    }
}
