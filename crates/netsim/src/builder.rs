//! Simulation assembly and execution front-end.
//!
//! [`NetSimBuilder`] ties a topology, a path resolver, initial traffic
//! (from [`crate::Agent`] scripts and workload timers) and application
//! logic together, and runs the result on any of the engine's executors.

use crate::agent::Agent;
use crate::fluid::FLUID_COORDINATOR;
use crate::packet::NetEvent;
use crate::profiling::ProfileData;
use crate::world::{AppLogic, NetWorld, SharedNet, DEFAULT_ROUTE_CACHE_CAPACITY};
use massf_engine::{
    run_sequential, run_sequential_windowed, try_run_parallel_observed, BarrierObserver,
    ExecutionStats, LpId, MassfError, NoopBarrierObserver, SimTime,
};
use massf_faults::{FaultKind, FaultState};
use massf_routing::PathResolver;
use massf_topology::Network;
use massf_topology::NodeId;
use std::sync::Arc;

/// Results of one simulation run.
pub struct SimOutput<A> {
    /// Engine statistics (per-LP event counts; per-window per-partition
    /// counts for windowed runs).
    pub stats: ExecutionStats,
    /// Merged traffic profile.
    pub profile: ProfileData,
    /// Application logic instances (one for sequential runs, one per
    /// partition for parallel runs).
    pub apps: Vec<A>,
}

/// Builds and runs packet-level simulations.
pub struct NetSimBuilder {
    shared: Arc<SharedNet>,
    initial: Vec<(SimTime, LpId, NetEvent)>,
    route_cache_capacity: usize,
    max_retries: u32,
}

impl NetSimBuilder {
    /// A builder over `net` routed by `resolver`.
    pub fn new(net: Network, resolver: Arc<dyn PathResolver>) -> Self {
        NetSimBuilder {
            shared: SharedNet::new(net, resolver),
            initial: Vec::new(),
            route_cache_capacity: DEFAULT_ROUTE_CACHE_CAPACITY,
            max_retries: crate::tcp::MAX_RETRIES,
        }
    }

    /// A builder over `net` with fault injection: routing follows the
    /// fault timeline (see [`SharedNet::with_faults`]) and every scripted
    /// fault is additionally injected as a first-class
    /// [`NetEvent::Fault`] event, appended *after* all traffic events so
    /// event tags — and therefore the parallel execution order — stay
    /// deterministic regardless of when traffic was added.
    pub fn new_with_faults(net: Network, faults: Arc<FaultState>) -> Self {
        NetSimBuilder {
            shared: SharedNet::with_faults(net, faults),
            initial: Vec::new(),
            route_cache_capacity: DEFAULT_ROUTE_CACHE_CAPACITY,
            max_retries: crate::tcp::MAX_RETRIES,
        }
    }

    /// Per-source route-cache capacity for the worlds this builder
    /// runs; `0` disables route caching (every resolve goes straight to
    /// the resolver). Simulation results are bit-identical either way —
    /// only the `route_cache` profile counters and resolve cost differ.
    pub fn route_cache_capacity(&mut self, per_src: usize) -> &mut Self {
        self.route_cache_capacity = per_src;
        self
    }

    /// TCP retry budget for every flow in the worlds this builder runs:
    /// consecutive retransmission timeouts tolerated before a flow
    /// aborts. Defaults to [`crate::tcp::MAX_RETRIES`]. Lower values
    /// give up faster under long outages; higher values ride them out.
    pub fn max_retries(&mut self, retries: u32) -> &mut Self {
        self.max_retries = retries;
        self
    }

    /// The shared network handle (topology + routing + link constants).
    pub fn shared(&self) -> Arc<SharedNet> {
        self.shared.clone()
    }

    /// Append an agent's scripted traffic.
    pub fn add_agent(&mut self, agent: Agent) -> &mut Self {
        self.initial.extend(agent.into_initial_events());
        self
    }

    /// Append one raw initial event (workloads use this for their
    /// kick-off timers).
    pub fn add_initial(&mut self, at: SimTime, lp: LpId, event: NetEvent) -> &mut Self {
        self.initial.push((at, lp, event));
        self
    }

    /// Append many raw initial events.
    pub fn add_initial_events(
        &mut self,
        events: impl IntoIterator<Item = (SimTime, LpId, NetEvent)>,
    ) -> &mut Self {
        self.initial.extend(events);
        self
    }

    /// Schedule one fluid background flow (see `crate::fluid`):
    /// `bytes` from `src` to `dst` starting at `at`, demand capped at
    /// `peak_bps` bits/s (`0` = bottleneck-limited). The event targets
    /// the fluid coordinator LP directly.
    pub fn add_fluid_flow(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        peak_bps: u64,
    ) -> &mut Self {
        self.initial.push((
            at,
            LpId(FLUID_COORDINATOR.0),
            NetEvent::FluidStart {
                src,
                dst,
                bytes,
                peak_bps,
            },
        ));
        self
    }

    /// All initial events for a run: the accumulated traffic, then the
    /// fault script (if any) as `Fault` events in time-sorted order.
    /// Fault events target the LP of the faulted entity (a link's `a`
    /// endpoint, the crashed router) so the reconvergence work is
    /// attributed near the fault; adjacency events target LP 0.
    ///
    /// Public so checkpoint sessions can seed their own executors with
    /// exactly the events a builder-driven run would use.
    pub fn initial_events(&self) -> Vec<(SimTime, LpId, NetEvent)> {
        let mut events = self.initial.clone();
        if let Some(faults) = &self.shared.faults {
            for e in faults.script().sorted_events() {
                let lp = match e.kind {
                    FaultKind::LinkDown(l) | FaultKind::LinkUp(l) => {
                        LpId(self.shared.net.links[l.index()].a.0)
                    }
                    FaultKind::RouterCrash(n) | FaultKind::RouterRecover(n) => LpId(n.0),
                    FaultKind::AsAdjacencyFail { .. } | FaultKind::AsAdjacencyRestore { .. } => {
                        LpId(0)
                    }
                };
                events.push((e.at, lp, NetEvent::Fault { kind: e.kind }));
            }
        }
        // Mirror the fault script to the fluid coordinator so flows
        // traversing a failed element reroute or abort at fault time.
        // Appended only when the scenario injects fluid traffic (so
        // packet-only runs keep their exact event tags), and after the
        // `Fault` events so reconvergence precedes the fluid reaction
        // at equal timestamps.
        let any_fluid = self
            .initial
            .iter()
            .any(|(_, _, e)| matches!(e, NetEvent::FluidStart { .. }));
        if any_fluid {
            if let Some(faults) = &self.shared.faults {
                for e in faults.script().sorted_events() {
                    events.push((
                        e.at,
                        LpId(FLUID_COORDINATOR.0),
                        NetEvent::FluidFault { kind: e.kind },
                    ));
                }
            }
        }
        events
    }

    /// Run on the sequential reference executor.
    pub fn run_sequential<A: AppLogic>(&self, app: A, end: SimTime) -> SimOutput<A> {
        let mut world = NetWorld::with_config(
            self.shared.clone(),
            app,
            self.route_cache_capacity,
            self.max_retries,
        );
        let stats = run_sequential(
            &mut world,
            self.shared.lp_count(),
            self.initial_events(),
            end,
        );
        let (profile, app) = world.into_parts();
        SimOutput {
            stats,
            profile,
            apps: vec![app],
        }
    }

    /// Run sequentially while attributing events to `(window, partition)`
    /// cells — the trace-driven mode behind the cluster performance
    /// model (DESIGN.md substitution #1).
    pub fn run_sequential_windowed<A: AppLogic>(
        &self,
        app: A,
        end: SimTime,
        window: SimTime,
        assignment: &[u32],
        partitions: usize,
    ) -> SimOutput<A> {
        let mut world = NetWorld::with_config(
            self.shared.clone(),
            app,
            self.route_cache_capacity,
            self.max_retries,
        );
        let stats = run_sequential_windowed(
            &mut world,
            self.shared.lp_count(),
            self.initial_events(),
            end,
            window,
            assignment,
            partitions,
        );
        let (profile, app) = world.into_parts();
        SimOutput {
            stats,
            profile,
            apps: vec![app],
        }
    }

    /// Run on the real multi-threaded conservative executor, one thread
    /// per partition. `window` must not exceed the minimum latency of
    /// any cross-partition link (the achieved MLL).
    ///
    /// # Panics
    /// Panics on a lookahead violation (window above the achieved MLL
    /// — a caller bug here, since the caller picks both). Use
    /// [`Self::try_run_parallel`] to handle it as an error instead.
    pub fn run_parallel<A: AppLogic + Clone>(
        &self,
        app: A,
        end: SimTime,
        window: SimTime,
        assignment: &[u32],
        partitions: usize,
    ) -> SimOutput<A> {
        match self.try_run_parallel(app, end, window, assignment, partitions) {
            Ok(out) => out,
            // Deliberate facade: the caller chose both the window and the
            // cut, so a violation is a programming error;
            // try_run_parallel offers the Result form.
            // simlint: allow(unwrap-audit) -- panicking facade over try_run_parallel
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::run_parallel`], but a lookahead violation comes back as
    /// [`MassfError::LookaheadViolation`] instead of a panic.
    pub fn try_run_parallel<A: AppLogic + Clone>(
        &self,
        app: A,
        end: SimTime,
        window: SimTime,
        assignment: &[u32],
        partitions: usize,
    ) -> Result<SimOutput<A>, MassfError> {
        self.try_run_parallel_observed(
            app,
            end,
            window,
            assignment,
            partitions,
            &NoopBarrierObserver,
        )
    }

    /// [`Self::try_run_parallel`] with a [`BarrierObserver`] wrapped
    /// around every executor barrier, for bench-side measurement of
    /// wall-clock synchronization cost; the observer's totals land in
    /// [`ExecutionStats::barrier_wait_us`].
    pub fn try_run_parallel_observed<A: AppLogic + Clone, O: BarrierObserver>(
        &self,
        app: A,
        end: SimTime,
        window: SimTime,
        assignment: &[u32],
        partitions: usize,
        observer: &O,
    ) -> Result<SimOutput<A>, MassfError> {
        let shards: Vec<NetWorld<A>> = (0..partitions)
            .map(|_| {
                NetWorld::with_config(
                    self.shared.clone(),
                    app.clone(),
                    self.route_cache_capacity,
                    self.max_retries,
                )
            })
            .collect();
        let (shards, stats) = try_run_parallel_observed(
            shards,
            self.shared.lp_count(),
            assignment,
            self.initial_events(),
            end,
            window,
            observer,
        )?;
        let mut profile =
            ProfileData::new(self.shared.net.node_count(), self.shared.net.links.len());
        let mut apps = Vec::with_capacity(partitions);
        for shard in shards {
            let (p, a) = shard.into_parts();
            profile.merge(&p);
            apps.push(a);
        }
        Ok(SimOutput {
            stats,
            profile,
            apps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::NoApp;
    use massf_routing::{CostMetric, FlatResolver};
    use massf_topology::NodeId;
    use massf_topology::{generate_flat_network, FlatTopologyConfig};

    fn builder_with_traffic() -> (NetSimBuilder, Vec<NodeId>) {
        let net = generate_flat_network(&FlatTopologyConfig::tiny());
        let hosts = net.host_ids();
        let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
        let mut b = NetSimBuilder::new(net, resolver);
        let mut agent = Agent::new();
        for i in 0..10 {
            agent.inject_tcp(
                SimTime::from_ms(i as u64),
                hosts[i],
                hosts[hosts.len() - 1 - i],
                20_000,
            );
        }
        b.add_agent(agent);
        (b, hosts)
    }

    #[test]
    fn sequential_run_completes_flows() {
        let (b, _) = builder_with_traffic();
        let out = b.run_sequential(NoApp, SimTime::from_secs(30));
        assert_eq!(out.profile.completed_flows, 10);
        assert!(out.stats.total_events > 100);
    }

    #[test]
    fn windowed_matches_plain_sequential() {
        let (b, _) = builder_with_traffic();
        let n = b.shared().lp_count();
        let plain = b.run_sequential(NoApp, SimTime::from_secs(10));
        let assignment: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
        let windowed = b.run_sequential_windowed(
            NoApp,
            SimTime::from_secs(10),
            SimTime::from_ms(1),
            &assignment,
            4,
        );
        assert_eq!(plain.stats.total_events, windowed.stats.total_events);
        assert_eq!(plain.profile, windowed.profile);
        assert_eq!(plain.stats.lp_events, windowed.stats.lp_events);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let (b, _) = builder_with_traffic();
        let shared = b.shared();
        let n = shared.lp_count();
        let seq = b.run_sequential(NoApp, SimTime::from_secs(5));

        // Partition: 2 parts split by node id parity of router index —
        // any split works, but the window must respect the cut MLL.
        let assignment: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let mut mll = f64::INFINITY;
        for link in &shared.net.links {
            if assignment[link.a.index()] != assignment[link.b.index()] {
                mll = mll.min(link.latency_ms);
            }
        }
        let window = SimTime::from_ms_f64(mll);
        assert!(window > SimTime::ZERO);

        let par = b.run_parallel(NoApp, SimTime::from_secs(5), window, &assignment, 2);
        assert_eq!(seq.stats.total_events, par.stats.total_events);
        assert_eq!(seq.stats.lp_events, par.stats.lp_events);
        assert_eq!(seq.profile, par.profile);
    }

    #[test]
    fn oversized_window_is_a_structured_error() {
        let (b, _) = builder_with_traffic();
        let shared = b.shared();
        let n = shared.lp_count();
        let assignment: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let mut mll = f64::INFINITY;
        for link in &shared.net.links {
            if assignment[link.a.index()] != assignment[link.b.index()] {
                mll = mll.min(link.latency_ms);
            }
        }
        // Deliberately above the cut's MLL: conservative execution is
        // unsound and the run must abort with the structured error.
        let window = SimTime::from_ms_f64(mll * 64.0);
        let err = match b.try_run_parallel(NoApp, SimTime::from_secs(5), window, &assignment, 2) {
            Ok(_) => panic!("window far above the MLL must violate lookahead"),
            Err(e) => e,
        };
        match err {
            MassfError::LookaheadViolation {
                event_time_ns,
                window_ns,
                ..
            } => {
                assert_eq!(window_ns, window.as_ns());
                assert!(event_time_ns < SimTime::from_secs(5).as_ns());
            }
            other => panic!("expected LookaheadViolation, got {other}"),
        }
    }
}
