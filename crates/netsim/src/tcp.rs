//! TCP sender/receiver state machines.
//!
//! A Reno-family TCP sufficient for realistic traffic shaping: slow
//! start, congestion avoidance (AIMD), duplicate-ACK fast retransmit,
//! and exponential-backoff retransmission timers with Jacobson/Karels
//! RTT estimation. Packets on one flow share one path and FIFO links, so
//! reordering cannot occur; the receiver is a cumulative-ACK machine.
//!
//! The state machines are pure (no engine types) so they are unit-tested
//! exhaustively here; `world.rs` wires them to packets and timers.

use crate::packet::segments_for;
use massf_engine::SimTime;
use massf_topology::MassfError;

/// Initial congestion window, segments.
pub const INITIAL_CWND: f64 = 2.0;
/// Initial slow-start threshold, segments.
pub const INITIAL_SSTHRESH: f64 = 64.0;
/// Duplicate ACKs that trigger fast retransmit.
pub const DUPACK_THRESHOLD: u32 = 3;
/// Initial retransmission timeout.
pub const INITIAL_RTO: SimTime = SimTime(1_000_000_000);
/// Lower bound on the RTO.
pub const MIN_RTO: SimTime = SimTime(200_000_000);
/// Upper bound on the RTO.
pub const MAX_RTO: SimTime = SimTime(16_000_000_000);
/// Consecutive retransmission timeouts tolerated before a flow gives
/// up (≈ 47 s with the default RTO schedule: 1+2+4+8+16+16 s).
pub const MAX_RETRIES: u32 = 6;

/// Sender-side actions decided by the state machine; the world layer
/// turns them into packets and timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendAction {
    /// Transmit segment `seq` (fresh or retransmission).
    Transmit { seq: u32 },
    /// The flow completed (all segments acknowledged).
    Complete,
    /// The flow gave up: the retry budget is exhausted without forward
    /// progress (the loss-tolerance escape hatch — a flow across a dead
    /// path terminates instead of retransmitting forever).
    Abort,
}

/// Why a TCP flow terminated without completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// `MAX_RETRIES` consecutive retransmission timeouts elapsed with no
    /// new data acknowledged.
    RetryBudgetExhausted,
    /// Same retry exhaustion, but routing additionally reported the
    /// destination unreachable when the sender tried to fail over.
    Unroutable,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::RetryBudgetExhausted => write!(f, "retry budget exhausted"),
            AbortReason::Unroutable => write!(f, "destination unroutable"),
        }
    }
}

/// TCP sender for one flow.
#[derive(Debug, Clone)]
pub struct TcpSender {
    /// Total segments to deliver.
    pub total_segments: u32,
    /// Lowest unacknowledged segment.
    pub acked: u32,
    /// Next never-before-sent segment.
    pub next_seq: u32,
    /// Congestion window, segments (fractional during CA growth).
    pub cwnd: f64,
    /// Slow-start threshold, segments.
    pub ssthresh: f64,
    /// Duplicate-ACK counter.
    pub dup_acks: u32,
    /// Smoothed RTT (None until first sample).
    pub srtt: Option<SimTime>,
    /// RTT variance estimate.
    pub rttvar: SimTime,
    /// Current RTO.
    pub rto: SimTime,
    /// Monotone timer epoch; pending timer events carry the epoch they
    /// were armed with and are ignored if the epoch moved on.
    pub timer_epoch: u32,
    /// Send time of the segment used for RTT sampling (Karn's rule: only
    /// never-retransmitted segments are sampled).
    rtt_probe: Option<(u32, SimTime)>,
    /// True once a retransmission happened for the current `acked` value
    /// (suppresses RTT sampling per Karn).
    retransmitted_low: bool,
    /// Consecutive retransmission timeouts with no forward progress.
    pub retries: u32,
    /// Retry budget; `retries` exceeding it aborts the flow.
    pub max_retries: u32,
    /// Completed?
    pub done: bool,
    /// Gave up (retry budget exhausted)?
    pub aborted: bool,
}

/// Complete serializable image of a [`TcpSender`], including the
/// private Karn-sampling fields (`rtt_probe`, `retransmitted_low`)
/// that do not appear on the public struct. Round-tripping through
/// this state is exact: a restored sender behaves bit-identically to
/// the original on every future event.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpSenderState {
    /// Total segments to deliver.
    pub total_segments: u32,
    /// Lowest unacknowledged segment.
    pub acked: u32,
    /// Next never-before-sent segment.
    pub next_seq: u32,
    /// Congestion window, segments.
    pub cwnd: f64,
    /// Slow-start threshold, segments.
    pub ssthresh: f64,
    /// Duplicate-ACK counter.
    pub dup_acks: u32,
    /// Smoothed RTT.
    pub srtt: Option<SimTime>,
    /// RTT variance estimate.
    pub rttvar: SimTime,
    /// Current RTO.
    pub rto: SimTime,
    /// Monotone timer epoch.
    pub timer_epoch: u32,
    /// Karn RTT probe: (segment, send time).
    pub rtt_probe: Option<(u32, SimTime)>,
    /// Karn suppression flag.
    pub retransmitted_low: bool,
    /// Consecutive timeouts with no forward progress.
    pub retries: u32,
    /// Retry budget.
    pub max_retries: u32,
    /// Completed?
    pub done: bool,
    /// Aborted?
    pub aborted: bool,
}

impl TcpSender {
    /// A sender for `bytes` of payload with the default retry budget.
    pub fn new(bytes: u64) -> Self {
        Self::with_retries(bytes, MAX_RETRIES)
    }

    /// A sender for `bytes` of payload tolerating `max_retries`
    /// consecutive timeouts before aborting (see
    /// `NetSimBuilder::max_retries`).
    pub fn with_retries(bytes: u64, max_retries: u32) -> Self {
        TcpSender {
            total_segments: segments_for(bytes),
            acked: 0,
            next_seq: 0,
            cwnd: INITIAL_CWND,
            ssthresh: INITIAL_SSTHRESH,
            dup_acks: 0,
            srtt: None,
            rttvar: SimTime::ZERO,
            rto: INITIAL_RTO,
            timer_epoch: 0,
            rtt_probe: None,
            retransmitted_low: false,
            retries: 0,
            max_retries,
            done: false,
            aborted: false,
        }
    }

    /// Export the complete sender state (private Karn-sampling fields
    /// included) for checkpointing.
    pub fn export_state(&self) -> TcpSenderState {
        TcpSenderState {
            total_segments: self.total_segments,
            acked: self.acked,
            next_seq: self.next_seq,
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            dup_acks: self.dup_acks,
            srtt: self.srtt,
            rttvar: self.rttvar,
            rto: self.rto,
            timer_epoch: self.timer_epoch,
            rtt_probe: self.rtt_probe,
            retransmitted_low: self.retransmitted_low,
            retries: self.retries,
            max_retries: self.max_retries,
            done: self.done,
            aborted: self.aborted,
        }
    }

    /// Rebuild a sender from an exported state. The input may come from
    /// a snapshot file, so the sequence-number and window invariants are
    /// checked: violations yield `MassfError::SnapshotCorrupt` instead
    /// of arithmetic underflow or a stuck flow later.
    pub fn from_state(s: &TcpSenderState) -> Result<Self, MassfError> {
        let bad = |reason: String| MassfError::SnapshotCorrupt {
            section: "tcp".into(),
            reason,
        };
        if s.acked > s.next_seq || s.next_seq > s.total_segments {
            return Err(bad(format!(
                "sequence invariant violated: acked {} ≤ next_seq {} ≤ total {}",
                s.acked, s.next_seq, s.total_segments
            )));
        }
        if !(s.cwnd.is_finite() && s.cwnd >= 1.0 && s.ssthresh.is_finite() && s.ssthresh >= 0.0) {
            return Err(bad(format!(
                "window invariant violated: cwnd {}, ssthresh {}",
                s.cwnd, s.ssthresh
            )));
        }
        Ok(TcpSender {
            total_segments: s.total_segments,
            acked: s.acked,
            next_seq: s.next_seq,
            cwnd: s.cwnd,
            ssthresh: s.ssthresh,
            dup_acks: s.dup_acks,
            srtt: s.srtt,
            rttvar: s.rttvar,
            rto: s.rto,
            timer_epoch: s.timer_epoch,
            rtt_probe: s.rtt_probe,
            retransmitted_low: s.retransmitted_low,
            retries: s.retries,
            max_retries: s.max_retries,
            done: s.done,
            aborted: s.aborted,
        })
    }

    /// Segments in flight.
    pub fn in_flight(&self) -> u32 {
        self.next_seq - self.acked
    }

    /// The window currently allows sending up to this many *new*
    /// segments.
    pub fn sendable(&self) -> u32 {
        let window = self.cwnd.floor().max(1.0) as u32;
        let limit = (self.acked + window).min(self.total_segments);
        limit.saturating_sub(self.next_seq)
    }

    /// Open the flow: emit the initial window. Returns seqs to transmit.
    pub fn open(&mut self, now: SimTime, out: &mut Vec<SendAction>) {
        self.emit_new(now, out);
    }

    fn emit_new(&mut self, now: SimTime, out: &mut Vec<SendAction>) {
        for _ in 0..self.sendable() {
            let seq = self.next_seq;
            self.next_seq += 1;
            if self.rtt_probe.is_none() && !self.retransmitted_low {
                self.rtt_probe = Some((seq, now));
            }
            out.push(SendAction::Transmit { seq });
        }
    }

    /// Handle a cumulative ACK for "next expected = `ack`" at `now`.
    pub fn on_ack(&mut self, ack: u32, now: SimTime, out: &mut Vec<SendAction>) {
        if self.done || self.aborted {
            return;
        }
        if ack > self.acked {
            // New data acknowledged: forward progress resets the retry
            // budget.
            self.retries = 0;
            self.retransmitted_low = false;
            // RTT sample per Karn's algorithm.
            if let Some((probe_seq, sent_at)) = self.rtt_probe {
                if ack > probe_seq {
                    self.rtt_sample(now.saturating_sub(sent_at));
                    self.rtt_probe = None;
                }
            }
            let newly = ack - self.acked;
            self.acked = ack;
            self.dup_acks = 0;
            // Window growth.
            for _ in 0..newly {
                if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0; // slow start
                } else {
                    self.cwnd += 1.0 / self.cwnd; // congestion avoidance
                }
            }
            self.timer_epoch += 1; // restart timer (re-armed by caller)
            if self.acked >= self.total_segments {
                self.done = true;
                out.push(SendAction::Complete);
                return;
            }
            self.emit_new(now, out);
        } else if ack == self.acked {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == DUPACK_THRESHOLD {
                // Fast retransmit + multiplicative decrease.
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
                self.retransmitted_low = true;
                self.rtt_probe = None;
                self.timer_epoch += 1;
                out.push(SendAction::Transmit { seq: self.acked });
            }
        }
    }

    /// Handle an RTO firing (caller checked the epoch).
    pub fn on_timeout(&mut self, out: &mut Vec<SendAction>) {
        if self.done || self.aborted || self.in_flight() == 0 {
            return;
        }
        self.retries += 1;
        if self.retries > self.max_retries {
            self.aborted = true;
            out.push(SendAction::Abort);
            return;
        }
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = INITIAL_CWND.min(self.ssthresh);
        self.dup_acks = 0;
        self.rto = (self.rto * 2).min(MAX_RTO);
        self.retransmitted_low = true;
        self.rtt_probe = None;
        self.timer_epoch += 1;
        // Go-back-N to the hole.
        self.next_seq = self.acked + 1;
        out.push(SendAction::Transmit { seq: self.acked });
    }

    fn rtt_sample(&mut self, rtt: SimTime) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RFC 6298 with α=1/8, β=1/4 in integer ns.
                let delta = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = SimTime((3 * self.rttvar.0 + delta.0) / 4);
                self.srtt = Some(SimTime((7 * srtt.0 + rtt.0) / 8));
            }
        }
        let srtt = self.srtt.expect("just set");
        self.rto = SimTime(srtt.0 + 4 * self.rttvar.0)
            .max(MIN_RTO)
            .min(MAX_RTO);
    }

    /// Does the flow still need a running retransmission timer?
    pub fn needs_timer(&self) -> bool {
        !self.done && !self.aborted && self.in_flight() > 0
    }
}

/// TCP receiver for one flow: cumulative-ACK machine.
#[derive(Debug, Clone, Default)]
pub struct TcpReceiver {
    /// Next expected segment.
    pub rcv_next: u32,
    /// Total data segments received (including duplicates).
    pub segments_seen: u64,
}

impl TcpReceiver {
    /// Process data segment `seq`; returns the cumulative ACK to send.
    pub fn on_data(&mut self, seq: u32) -> u32 {
        self.segments_seen += 1;
        if seq == self.rcv_next {
            self.rcv_next += 1;
        }
        // In-order links: seq > rcv_next means an earlier loss; duplicate
        // ACKs for rcv_next trigger the sender's fast retransmit.
        self.rcv_next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut TcpSender, now: SimTime) -> Vec<u32> {
        let mut out = Vec::new();
        s.open(now, &mut out);
        out.iter()
            .filter_map(|a| match a {
                SendAction::Transmit { seq } => Some(*seq),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn opens_with_initial_window() {
        let mut s = TcpSender::new(100_000);
        let sent = drain(&mut s, SimTime::ZERO);
        assert_eq!(sent, vec![0, 1]);
        assert_eq!(s.in_flight(), 2);
    }

    #[test]
    fn tiny_flow_sends_single_segment_and_completes() {
        let mut s = TcpSender::new(100);
        let sent = drain(&mut s, SimTime::ZERO);
        assert_eq!(sent, vec![0]);
        let mut out = Vec::new();
        s.on_ack(1, SimTime::from_ms(50), &mut out);
        assert_eq!(out, vec![SendAction::Complete]);
        assert!(s.done);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = TcpSender::new(10_000_000);
        drain(&mut s, SimTime::ZERO);
        let mut out = Vec::new();
        // ACK both initial segments: cwnd 2 → 4, sends 4 more.
        s.on_ack(2, SimTime::from_ms(10), &mut out);
        let txs = out
            .iter()
            .filter(|a| matches!(a, SendAction::Transmit { .. }))
            .count();
        assert_eq!(s.cwnd, 4.0);
        assert_eq!(txs, 4);
    }

    #[test]
    fn congestion_avoidance_growth_is_linear() {
        let mut s = TcpSender::new(10_000_000);
        s.ssthresh = 2.0; // force CA from the start
        drain(&mut s, SimTime::ZERO);
        let mut out = Vec::new();
        s.on_ack(1, SimTime::from_ms(10), &mut out);
        // cwnd 2 → 2 + 1/2 = 2.5
        assert!((s.cwnd - 2.5).abs() < 1e-12);
    }

    #[test]
    fn triple_dupack_fast_retransmits_and_halves() {
        let mut s = TcpSender::new(10_000_000);
        s.cwnd = 8.0;
        s.ssthresh = 64.0;
        drain(&mut s, SimTime::ZERO); // sends 0..8
        let mut out = Vec::new();
        s.on_ack(1, SimTime::from_ms(5), &mut out); // ack seg 0
        out.clear();
        for _ in 0..2 {
            s.on_ack(1, SimTime::from_ms(6), &mut out);
            assert!(out.is_empty(), "no retransmit before 3 dupacks");
        }
        s.on_ack(1, SimTime::from_ms(7), &mut out);
        assert_eq!(out, vec![SendAction::Transmit { seq: 1 }]);
        assert!((s.ssthresh - 4.5).abs() < 1e-9, "ssthresh {}", s.ssthresh);
        assert_eq!(s.cwnd, s.ssthresh);
    }

    #[test]
    fn timeout_collapses_window_and_backs_off() {
        let mut s = TcpSender::new(10_000_000);
        s.cwnd = 16.0;
        drain(&mut s, SimTime::ZERO);
        let rto_before = s.rto;
        let epoch_before = s.timer_epoch;
        let mut out = Vec::new();
        s.on_timeout(&mut out);
        assert_eq!(out, vec![SendAction::Transmit { seq: 0 }]);
        assert_eq!(s.cwnd, INITIAL_CWND);
        assert_eq!(s.ssthresh, 8.0);
        assert_eq!(s.rto, rto_before * 2);
        assert!(s.timer_epoch > epoch_before);
    }

    #[test]
    fn timeout_without_outstanding_data_is_ignored() {
        let mut s = TcpSender::new(100);
        let mut out = Vec::new();
        s.on_timeout(&mut out); // nothing sent yet → nothing in flight
        assert!(out.is_empty());
    }

    #[test]
    fn rtt_estimation_updates_rto() {
        let mut s = TcpSender::new(1_000_000);
        drain(&mut s, SimTime::ZERO);
        let mut out = Vec::new();
        s.on_ack(1, SimTime::from_ms(100), &mut out);
        // First sample: srtt=100ms, rttvar=50ms, rto=100+200=300ms.
        assert_eq!(s.srtt, Some(SimTime::from_ms(100)));
        assert_eq!(s.rto, SimTime::from_ms(300));
    }

    #[test]
    fn rto_respects_min_bound() {
        let mut s = TcpSender::new(1_000_000);
        drain(&mut s, SimTime::ZERO);
        let mut out = Vec::new();
        s.on_ack(1, SimTime::from_us(100), &mut out); // 0.1 ms RTT
        assert_eq!(s.rto, MIN_RTO);
    }

    #[test]
    fn stale_acks_ignored() {
        let mut s = TcpSender::new(1_000_000);
        drain(&mut s, SimTime::ZERO);
        let mut out = Vec::new();
        s.on_ack(2, SimTime::from_ms(10), &mut out);
        out.clear();
        s.on_ack(1, SimTime::from_ms(11), &mut out); // old
        assert!(out.is_empty());
        assert_eq!(s.acked, 2);
    }

    #[test]
    fn full_transfer_without_loss_completes() {
        // Simulate an ideal network: every transmitted segment is acked
        // one RTT later, in order.
        let mut s = TcpSender::new(50_000); // 35 segments
        let mut pending: Vec<u32> = drain(&mut s, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut recv = TcpReceiver::default();
        let mut completed = false;
        let mut iterations = 0;
        while !completed {
            iterations += 1;
            assert!(iterations < 1000, "no progress");
            now += SimTime::from_ms(10);
            let mut out = Vec::new();
            for seq in std::mem::take(&mut pending) {
                let ack = recv.on_data(seq);
                s.on_ack(ack, now, &mut out);
            }
            for a in out {
                match a {
                    SendAction::Transmit { seq } => pending.push(seq),
                    SendAction::Complete => completed = true,
                    SendAction::Abort => panic!("lossless transfer cannot abort"),
                }
            }
        }
        assert_eq!(recv.rcv_next, 35);
        assert!(s.done);
    }

    #[test]
    fn receiver_dupacks_on_gap() {
        let mut r = TcpReceiver::default();
        assert_eq!(r.on_data(0), 1);
        assert_eq!(r.on_data(2), 1, "gap at 1 → duplicate ACK");
        assert_eq!(r.on_data(1), 2);
        // Segment 2 was lost from the receiver's viewpoint (go-back-N
        // retransmission will resend it).
        assert_eq!(r.on_data(2), 3);
        assert_eq!(r.segments_seen, 4);
    }

    #[test]
    fn exhausted_retry_budget_aborts() {
        let mut s = TcpSender::new(100_000);
        drain(&mut s, SimTime::ZERO);
        let mut out = Vec::new();
        for i in 0..MAX_RETRIES {
            out.clear();
            s.on_timeout(&mut out);
            assert!(
                out.contains(&SendAction::Transmit { seq: 0 }),
                "retry {i} still retransmits"
            );
            assert!(!s.aborted);
        }
        out.clear();
        s.on_timeout(&mut out);
        assert_eq!(out, vec![SendAction::Abort]);
        assert!(s.aborted);
        assert!(!s.needs_timer(), "aborted flows stop their timer");
        // Further events are inert.
        out.clear();
        s.on_timeout(&mut out);
        s.on_ack(1, SimTime::from_ms(1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn forward_progress_resets_retry_budget() {
        let mut s = TcpSender::new(100_000);
        drain(&mut s, SimTime::ZERO);
        let mut out = Vec::new();
        for _ in 0..MAX_RETRIES {
            s.on_timeout(&mut out);
        }
        assert_eq!(s.retries, MAX_RETRIES);
        out.clear();
        s.on_ack(1, SimTime::from_ms(5), &mut out); // new data acked
        assert_eq!(s.retries, 0, "an advancing ACK must reset the budget");
        assert!(!s.aborted);
        for _ in 0..MAX_RETRIES {
            out.clear();
            s.on_timeout(&mut out);
            assert!(!s.aborted, "full budget available again");
        }
    }

    #[test]
    fn custom_retry_budget_is_honored() {
        let mut s = TcpSender::with_retries(100_000, 2);
        drain(&mut s, SimTime::ZERO);
        let mut out = Vec::new();
        s.on_timeout(&mut out);
        s.on_timeout(&mut out);
        assert!(!s.aborted);
        out.clear();
        s.on_timeout(&mut out);
        assert_eq!(out, vec![SendAction::Abort]);
    }

    #[test]
    fn sender_state_round_trip_is_exact() {
        // Drive a sender through a loss episode so every field (Karn
        // probe, backoff, dup-ack counter) is in a non-default state,
        // then check restore-equivalence on future behavior.
        let mut s = TcpSender::with_retries(100_000, 9);
        drain(&mut s, SimTime::ZERO);
        let mut out = Vec::new();
        s.on_ack(1, SimTime::from_ms(30), &mut out);
        s.on_timeout(&mut out);
        let state = s.export_state();
        let mut restored = TcpSender::from_state(&state).expect("valid state");
        assert_eq!(restored.export_state(), state, "export is idempotent");
        assert_eq!(restored.max_retries, 9);
        // Identical future behavior.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        s.on_ack(3, SimTime::from_ms(95), &mut a);
        restored.on_ack(3, SimTime::from_ms(95), &mut b);
        assert_eq!(a, b);
        assert_eq!(s.export_state(), restored.export_state());
    }

    #[test]
    fn hostile_sender_states_are_rejected() {
        let good = TcpSender::new(100_000).export_state();
        let mut acked_past_sent = good.clone();
        acked_past_sent.acked = 5;
        let mut sent_past_total = good.clone();
        sent_past_total.next_seq = good.total_segments + 1;
        let mut nan_window = good.clone();
        nan_window.cwnd = f64::NAN;
        let mut zero_window = good;
        zero_window.cwnd = 0.5;
        for bad in [acked_past_sent, sent_past_total, nan_window, zero_window] {
            match TcpSender::from_state(&bad) {
                Err(MassfError::SnapshotCorrupt { section, .. }) => {
                    assert_eq!(section, "tcp");
                }
                other => panic!("expected SnapshotCorrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn sendable_respects_total() {
        let mut s = TcpSender::new(2000); // 2 segments
        s.cwnd = 100.0;
        assert_eq!(s.sendable(), 2);
        drain(&mut s, SimTime::ZERO);
        assert_eq!(s.sendable(), 0);
    }
}
