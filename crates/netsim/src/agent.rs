//! The live-traffic Agent.
//!
//! In MaSSF, application processes run for real; a `WrapSocket` library
//! intercepts their socket calls and hands the streams to an Agent that
//! injects them into the simulation (Section 2.1). Reproducing process
//! interception is out of scope (DESIGN.md substitution #2); this Agent
//! keeps the same role with a scripted interface: traffic demands are
//! registered (by workload models, trace replayers, or tests) and turned
//! into engine events at simulation start.

use crate::fluid::{FLUID_COORDINATOR, FLUID_UNBOUNDED};
use crate::packet::NetEvent;
use crate::world::TransportKind;
use massf_engine::{LpId, SimTime};
use massf_topology::NodeId;

/// One registered traffic demand.
#[derive(Debug, Clone)]
pub struct Injection {
    pub at: SimTime,
    pub src: NodeId,
    pub dst: NodeId,
    pub bytes: u64,
    pub transport: TransportKind,
}

/// One registered fluid background flow (see `crate::fluid`).
#[derive(Debug, Clone)]
pub struct FluidInjection {
    pub at: SimTime,
    pub src: NodeId,
    pub dst: NodeId,
    pub bytes: u64,
    /// Demand cap in bits/s; [`FLUID_UNBOUNDED`] = bottleneck-limited.
    pub peak_bps: u64,
}

/// Collects traffic demands and converts them to initial engine events.
#[derive(Debug, Clone, Default)]
pub struct Agent {
    injections: Vec<Injection>,
    fluids: Vec<FluidInjection>,
}

impl Agent {
    /// An empty agent.
    pub fn new() -> Self {
        Agent::default()
    }

    /// Register a TCP transfer of `bytes` from `src` to `dst` at `at`.
    pub fn inject_tcp(&mut self, at: SimTime, src: NodeId, dst: NodeId, bytes: u64) {
        self.injections.push(Injection {
            at,
            src,
            dst,
            bytes,
            transport: TransportKind::Tcp,
        });
    }

    /// Register a UDP datagram (`bytes ≤ MSS` recommended).
    pub fn inject_udp(&mut self, at: SimTime, src: NodeId, dst: NodeId, bytes: u32) {
        self.injections.push(Injection {
            at,
            src,
            dst,
            bytes: bytes as u64,
            transport: TransportKind::Udp,
        });
    }

    /// Register a bottleneck-limited fluid background flow of `bytes`
    /// from `src` to `dst` at `at` (see `crate::fluid`).
    pub fn inject_fluid(&mut self, at: SimTime, src: NodeId, dst: NodeId, bytes: u64) {
        self.fluids.push(FluidInjection {
            at,
            src,
            dst,
            bytes,
            peak_bps: FLUID_UNBOUNDED,
        });
    }

    /// Register a fluid background flow whose demand is capped at
    /// `peak_bps` bits/s (matching link bandwidth units).
    pub fn inject_fluid_capped(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        peak_bps: u64,
    ) {
        self.fluids.push(FluidInjection {
            at,
            src,
            dst,
            bytes,
            peak_bps,
        });
    }

    /// Number of registered demands (packet and fluid).
    pub fn len(&self) -> usize {
        self.injections.len() + self.fluids.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty() && self.fluids.is_empty()
    }

    /// All registered packet-level demands.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// All registered fluid demands.
    pub fn fluid_injections(&self) -> &[FluidInjection] {
        &self.fluids
    }

    /// Convert to initial events for the engine: packet demands first,
    /// then fluid demands, each block sorted by time (for readability —
    /// the engine interleaves by `(time, tag)` anyway, and keeping the
    /// blocks stable keeps packet-only scenarios' event tags unchanged
    /// by the presence of this method).
    pub fn into_initial_events(mut self) -> Vec<(SimTime, LpId, NetEvent)> {
        self.injections.sort_by_key(|i| i.at);
        self.fluids.sort_by_key(|i| i.at);
        let mut events: Vec<(SimTime, LpId, NetEvent)> = self
            .injections
            .into_iter()
            .map(|i| {
                let ev = match i.transport {
                    TransportKind::Tcp => NetEvent::StartFlow {
                        dst: i.dst,
                        bytes: i.bytes,
                    },
                    TransportKind::Udp => NetEvent::SendDatagram {
                        dst: i.dst,
                        bytes: i.bytes as u32,
                        meta: 0,
                    },
                };
                (i.at, LpId(i.src.0), ev)
            })
            .collect();
        events.extend(self.fluids.into_iter().map(|i| {
            (
                i.at,
                LpId(FLUID_COORDINATOR.0),
                NetEvent::FluidStart {
                    src: i.src,
                    dst: i.dst,
                    bytes: i.bytes,
                    // `peak_bps == 0` is the unbounded wire encoding.
                    peak_bps: if i.peak_bps == FLUID_UNBOUNDED {
                        0
                    } else {
                        i.peak_bps
                    },
                },
            )
        }));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_become_events_sorted_by_time() {
        let mut agent = Agent::new();
        agent.inject_tcp(SimTime::from_ms(5), NodeId(1), NodeId(2), 1000);
        agent.inject_udp(SimTime::from_ms(1), NodeId(3), NodeId(4), 100);
        assert_eq!(agent.len(), 2);
        let events = agent.into_initial_events();
        assert_eq!(events[0].0, SimTime::from_ms(1));
        assert_eq!(events[0].1, LpId(3));
        assert!(matches!(
            events[0].2,
            NetEvent::SendDatagram { bytes: 100, .. }
        ));
        assert_eq!(events[1].0, SimTime::from_ms(5));
        assert!(matches!(
            events[1].2,
            NetEvent::StartFlow { bytes: 1000, .. }
        ));
    }

    #[test]
    fn empty_agent() {
        let agent = Agent::new();
        assert!(agent.is_empty());
        assert!(agent.into_initial_events().is_empty());
    }
}
