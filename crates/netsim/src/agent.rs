//! The live-traffic Agent.
//!
//! In MaSSF, application processes run for real; a `WrapSocket` library
//! intercepts their socket calls and hands the streams to an Agent that
//! injects them into the simulation (Section 2.1). Reproducing process
//! interception is out of scope (DESIGN.md substitution #2); this Agent
//! keeps the same role with a scripted interface: traffic demands are
//! registered (by workload models, trace replayers, or tests) and turned
//! into engine events at simulation start.

use crate::packet::NetEvent;
use crate::world::TransportKind;
use massf_engine::{LpId, SimTime};
use massf_topology::NodeId;

/// One registered traffic demand.
#[derive(Debug, Clone)]
pub struct Injection {
    pub at: SimTime,
    pub src: NodeId,
    pub dst: NodeId,
    pub bytes: u64,
    pub transport: TransportKind,
}

/// Collects traffic demands and converts them to initial engine events.
#[derive(Debug, Clone, Default)]
pub struct Agent {
    injections: Vec<Injection>,
}

impl Agent {
    /// An empty agent.
    pub fn new() -> Self {
        Agent::default()
    }

    /// Register a TCP transfer of `bytes` from `src` to `dst` at `at`.
    pub fn inject_tcp(&mut self, at: SimTime, src: NodeId, dst: NodeId, bytes: u64) {
        self.injections.push(Injection {
            at,
            src,
            dst,
            bytes,
            transport: TransportKind::Tcp,
        });
    }

    /// Register a UDP datagram (`bytes ≤ MSS` recommended).
    pub fn inject_udp(&mut self, at: SimTime, src: NodeId, dst: NodeId, bytes: u32) {
        self.injections.push(Injection {
            at,
            src,
            dst,
            bytes: bytes as u64,
            transport: TransportKind::Udp,
        });
    }

    /// Number of registered demands.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// All registered demands.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// Convert to initial events for the engine (sorted by time for
    /// readability; the engine orders them anyway).
    pub fn into_initial_events(mut self) -> Vec<(SimTime, LpId, NetEvent)> {
        self.injections.sort_by_key(|i| i.at);
        self.injections
            .into_iter()
            .map(|i| {
                let ev = match i.transport {
                    TransportKind::Tcp => NetEvent::StartFlow {
                        dst: i.dst,
                        bytes: i.bytes,
                    },
                    TransportKind::Udp => NetEvent::SendDatagram {
                        dst: i.dst,
                        bytes: i.bytes as u32,
                        meta: 0,
                    },
                };
                (i.at, LpId(i.src.0), ev)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_become_events_sorted_by_time() {
        let mut agent = Agent::new();
        agent.inject_tcp(SimTime::from_ms(5), NodeId(1), NodeId(2), 1000);
        agent.inject_udp(SimTime::from_ms(1), NodeId(3), NodeId(4), 100);
        assert_eq!(agent.len(), 2);
        let events = agent.into_initial_events();
        assert_eq!(events[0].0, SimTime::from_ms(1));
        assert_eq!(events[0].1, LpId(3));
        assert!(matches!(
            events[0].2,
            NetEvent::SendDatagram { bytes: 100, .. }
        ));
        assert_eq!(events[1].0, SimTime::from_ms(5));
        assert!(matches!(
            events[1].2,
            NetEvent::StartFlow { bytes: 1000, .. }
        ));
    }

    #[test]
    fn empty_agent() {
        let agent = Agent::new();
        assert!(agent.is_empty());
        assert!(agent.into_initial_events().is_empty());
    }
}
